"""Seeded async load generator for the estimation service.

Answers the serving layer's two operational questions — how many
queries per second does one server sustain, and what latency do clients
see — with a fully in-process, reproducible experiment: an
:class:`~repro.service.server.EstimationServer` on an ephemeral local
port, ``clients`` concurrent :class:`~repro.service.client
.ServiceClient` connections, each issuing ``queries_per_client``
questions drawn from a per-client seeded RNG over the gallery's
non-empty use-cases.  Client-observed latencies land in a telemetry
:class:`~repro.telemetry.Histogram` (the same instrument family the
server exposes), so the latency percentiles of the report, the
``metrics`` exposition and any scrape all read one source of truth.
The report carries throughput, latency percentiles and the server-side
micro-batching/cache/shedding counters, so one run shows *why* the
throughput number is what it is.

The same harness scales to the **fleet** topology: ``shards > 1``
spawns N servers behind a :class:`~repro.service.router.ShardRouter`
front-end (clients keep speaking the ordinary protocol — to the
router), ``solver_workers > 0`` gives every shard a multiprocess
:class:`~repro.service.workers.SolverPool`, and ``connections`` caps
the *socket* count independently of the *logical client* count:
thousands of concurrent clients multiplex onto a few pipelined
connections, which is how real fleets are driven.  Open-loop arrival
processes reuse the workload generator's vocabulary
(:mod:`repro.generation.workload`): ``closed`` (back-to-back, the
default), ``poisson``, ``bursty`` (exponential gaps whose mean swings
by ``burst_factor`` every ``burst_length`` queries) and ``diurnal``
(sinusoidal rate by thinning).

Observability hooks mirror ``repro serve``: ``metrics_port`` exposes
the merged exposition over HTTP ``GET /metrics`` while the run is
live (and the report keeps the text a real scrape returned),
``trace_export`` writes the server's span timeline as Chrome-trace
JSON, ``span_log`` streams finished spans as JSON lines, and
``metrics_output`` saves the final exposition to a file.

Usage (module or CLI)::

    from repro.experiments.service_load import LoadConfig, run_load
    print(run_load(LoadConfig(clients=16)).render())

    PYTHONPATH=src python -m repro.experiments.service_load --clients 16
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import random
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError, ServiceError
from repro.experiments.reporting import render_table
from repro.runtime.service import GallerySpec
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.pool import EnginePool
from repro.service.router import ShardRouter
from repro.service.server import EstimationServer
from repro.telemetry import (
    Histogram,
    JsonLinesSpanSink,
    MetricsRegistry,
    Tracer,
    log_buckets,
    start_metrics_endpoint,
    write_chrome_trace,
)

#: Client-side latency bounds: 10 µs .. 10 s, four buckets per decade —
#: tight enough that nearest-rank quantiles off the buckets track the
#: exact-sample percentiles the report used to hand-roll.
LATENCY_BUCKETS = log_buckets(1e-5, 10.0)

#: Open-loop arrival processes (plus ``closed``, the classic
#: back-to-back loop) — same vocabulary as the workload generator.
ARRIVALS: Tuple[str, ...] = ("closed", "poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation scenario (fully deterministic per seed,
    modulo wall-clock noise in the measured latencies)."""

    clients: int = 8
    queries_per_client: int = 32
    seed: int = 7
    gallery: GallerySpec = field(default_factory=GallerySpec)
    model: str = "second_order"
    method: str = "mcr"
    batch_window: float = 0.002
    max_batch: int = 128
    max_pending: int = 1024
    shed_policy: str = "reject"
    cache_entries: int = 4096
    backend: Optional[str] = None
    shards: int = 1
    solver_workers: int = 0
    router_batch_window: float = 0.0
    replication: int = 1
    churn: bool = False
    connections: Optional[int] = None
    arrival: str = "closed"
    mean_interarrival_ms: float = 2.0
    burst_length: int = 8
    burst_factor: float = 4.0
    diurnal_period_ms: float = 250.0
    diurnal_amplitude: float = 0.8
    metrics_port: Optional[int] = None
    trace_export: Optional[str] = None
    span_log: Optional[str] = None
    metrics_output: Optional[str] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ExperimentError(f"clients must be >= 1, got {self.clients}")
        if self.queries_per_client < 1:
            raise ExperimentError(
                f"queries_per_client must be >= 1, "
                f"got {self.queries_per_client}"
            )
        if self.shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {self.shards}")
        if self.solver_workers < 0:
            raise ExperimentError(
                f"solver_workers must be >= 0, got {self.solver_workers}"
            )
        if self.connections is not None and self.connections < 1:
            raise ExperimentError(
                f"connections must be >= 1, got {self.connections}"
            )
        if self.router_batch_window < 0:
            raise ExperimentError(
                f"router_batch_window must be >= 0, "
                f"got {self.router_batch_window}"
            )
        if self.replication < 0:
            raise ExperimentError(
                f"replication must be >= 0, got {self.replication}"
            )
        if self.churn and self.shards < 2:
            raise ExperimentError(
                "churn needs a fleet: shards must be >= 2"
            )
        if self.arrival not in ARRIVALS:
            raise ExperimentError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )
        if self.mean_interarrival_ms <= 0:
            raise ExperimentError("mean_interarrival_ms must be positive")
        if self.burst_length < 1 or self.burst_factor < 1.0:
            raise ExperimentError(
                "burst_length must be >= 1 and burst_factor >= 1"
            )
        if self.diurnal_period_ms <= 0 or not (
            0.0 <= self.diurnal_amplitude < 1.0
        ):
            raise ExperimentError(
                "diurnal_period_ms must be positive and diurnal_amplitude "
                "in [0, 1)"
            )


@dataclass(frozen=True)
class LoadReport:
    """What the generator measured, client- and server-side."""

    queries: int
    errors: int
    elapsed_seconds: float
    queries_per_second: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    mean_batch: float
    max_batch: int
    cache_hits: int
    shed: int
    degraded: int
    config: LoadConfig
    telemetry: Dict[str, object] = field(default_factory=dict)
    exposition: str = ""
    scraped_exposition: Optional[str] = None
    shards: int = 1
    workers: int = 0
    retries: int = 0
    router: Optional[Dict[str, object]] = None
    churn_events: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            ["clients", self.config.clients],
            ["arrival", self.config.arrival],
            ["queries", self.queries],
            ["errors", self.errors],
            ["elapsed", f"{self.elapsed_seconds * 1e3:.0f} ms"],
            ["queries/sec", f"{self.queries_per_second:.0f}"],
            ["latency p50", f"{self.latency_p50_ms:.2f} ms"],
            ["latency p90", f"{self.latency_p90_ms:.2f} ms"],
            ["latency p99", f"{self.latency_p99_ms:.2f} ms"],
            ["mean batch", f"{self.mean_batch:.1f}"],
            ["max batch", self.max_batch],
            ["cache hits", self.cache_hits],
            ["shed", self.shed],
            ["degraded", self.degraded],
        ]
        if self.shards > 1 or self.workers > 0:
            rows.extend(
                [
                    ["shards", self.shards],
                    ["solver workers", self.workers],
                    ["router retries", self.retries],
                ]
            )
        if self.router is not None:
            rows.extend(
                [
                    ["router batches", self.router.get("batches", 0)],
                    ["replications", self.router.get("replications", 0)],
                    ["stale risk", self.router.get("stale_risk", 0)],
                ]
            )
        if self.churn_events:
            rows.append(["churn events", len(self.churn_events)])
        return render_table(
            ["metric", "value"],
            rows,
            title=(
                f"Service load ({self.config.model}, gallery "
                f"{self.config.gallery.label()}, seed "
                f"{self.config.seed})"
            ),
        )

    def to_json(self) -> Dict[str, object]:
        """The machine-readable summary CI gates assert on."""
        return {
            "gallery": self.config.gallery.label(),
            "model": self.config.model,
            "arrival": self.config.arrival,
            "clients": self.config.clients,
            "connections": self.config.connections,
            "shards": self.shards,
            "workers": self.workers,
            "queries": self.queries,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": self.queries_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "degraded": self.degraded,
            "retries": self.retries,
            "router": self.router,
            "churn_events": self.churn_events,
        }


def _client_plan(config: LoadConfig, client_index: int) -> List[Tuple[str, ...]]:
    """The seeded use-case sequence one client will ask about."""
    names = config.gallery.application_names()
    rng = random.Random(f"{config.seed}:{client_index}")
    plan: List[Tuple[str, ...]] = []
    for _ in range(config.queries_per_client):
        size = rng.randint(1, len(names))
        plan.append(tuple(sorted(rng.sample(names, size))))
    return plan


def _client_delays(config: LoadConfig, client_index: int) -> List[float]:
    """Seconds each of the client's queries waits before being sent.

    Mirrors the workload generator's arrival clock
    (:mod:`repro.generation.workload`): exponential gaps for
    ``poisson``, gap means swinging by ``burst_factor`` every
    ``burst_length`` queries for ``bursty``, and a sinusoidal rate by
    thinning for ``diurnal``.  ``closed`` is the classic closed loop —
    no think time at all.
    """
    count = config.queries_per_client
    if config.arrival == "closed":
        return [0.0] * count
    rng = random.Random(f"{config.seed}:arrival:{client_index}")
    mean = config.mean_interarrival_ms / 1e3
    delays: List[float] = []
    now = 0.0
    previous = 0.0
    burst_remaining = 0
    for _ in range(count):
        if config.arrival == "poisson":
            now += rng.expovariate(1.0 / mean)
        elif config.arrival == "bursty":
            if burst_remaining > 0:
                gap_mean = mean / config.burst_factor
                burst_remaining -= 1
            else:
                gap_mean = mean * config.burst_factor
                burst_remaining = config.burst_length - 1
            now += rng.expovariate(1.0 / gap_mean)
        else:  # diurnal, by thinning a homogeneous peak-rate process
            period = config.diurnal_period_ms / 1e3
            peak_rate = (1.0 + config.diurnal_amplitude) / mean
            while True:
                now += rng.expovariate(peak_rate)
                phase = 2.0 * math.pi * now / period
                rate = (
                    1.0 + config.diurnal_amplitude * math.sin(phase)
                ) / mean
                if rng.random() <= rate / peak_rate:
                    break
        delays.append(now - previous)
        previous = now
    return delays


async def _run_client(
    config: LoadConfig,
    client: ServiceClient,
    client_index: int,
    latency: Histogram,
    errors: List[str],
) -> None:
    """One logical client: its seeded plan over a (shared) connection."""
    gallery = {
        "kind": config.gallery.kind,
        "seed": config.gallery.seed,
        "applications": config.gallery.application_count,
    }
    plan = _client_plan(config, client_index)
    delays = _client_delays(config, client_index)
    for query_index, (use_case, delay) in enumerate(zip(plan, delays)):
        if delay > 0:
            await asyncio.sleep(delay)
        started = _time.perf_counter()
        try:
            await client.estimate(
                use_case,
                gallery=gallery,
                model=config.model,
                method=config.method,
                trace=f"load-{config.seed}-{client_index}-{query_index}",
            )
        except ServiceError as error:
            errors.append(str(error))
            continue
        latency.observe(_time.perf_counter() - started)


async def _run_churn(
    config: LoadConfig,
    router_address: Tuple[str, int],
    spare_address: Tuple[str, int],
    victim: "EstimationServer",
    victim_name: str,
    events: List[Dict[str, object]],
) -> None:
    """Drive elasticity churn through the router *while load runs*.

    The sequence is the fleet's worst day compressed: a shard joins
    (warm hand-off), the gallery is invalidated, a shard dies without
    warning (tests replication failover and the queued-invalidation
    replay), then the corpse is administratively retired.  The load
    clients must observe none of it beyond latency.
    """
    admin = await ServiceClient.connect(*router_address)
    clock = _time.perf_counter()

    def stamp(event: str, **extra: object) -> None:
        events.append(
            dict(
                {
                    "event": event,
                    "at_ms": (_time.perf_counter() - clock) * 1e3,
                },
                **extra,
            )
        )

    gallery = {
        "kind": config.gallery.kind,
        "seed": config.gallery.seed,
        "applications": config.gallery.application_count,
    }
    try:
        await asyncio.sleep(0.05)
        joined = await admin.join(f"{spare_address[0]}:{spare_address[1]}")
        stamp(
            "join",
            shard=joined.get("shard"),
            handoff=joined.get("handoff"),
        )
        await asyncio.sleep(0.05)
        await admin.invalidate(gallery)
        stamp("invalidate", gallery=config.gallery.label())
        await asyncio.sleep(0.05)
        await victim.aclose()  # unannounced death, not a graceful leave
        stamp("kill", shard=victim_name)
        await asyncio.sleep(0.1)
        left = await admin.leave(victim_name)
        stamp("leave", shard=victim_name, handoff=left.get("handoff"))
    finally:
        await admin.aclose()


async def _scrape_http(host: str, port: int) -> str:
    """One in-loop ``GET /metrics`` against the HTTP endpoint — what an
    external scraper would see, fetched without blocking the loop."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            b"GET /metrics HTTP/1.0\r\nHost: " + host.encode() + b"\r\n\r\n"
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0]
    if b"200" not in status:
        raise ExperimentError(
            f"metrics endpoint answered {status.decode(errors='replace')!r}"
        )
    return body.decode("utf-8")


def _aggregate_stats(
    snapshots: List[Dict[str, object]],
) -> Dict[str, object]:
    """Fleet-wide rollup of per-shard server snapshots.

    Counters sum; ``mean_batch`` is the batch-weighted mean (total
    batched queries over total batches, exactly what each shard
    reports locally); ``max_batch`` is the fleet maximum.
    """
    if len(snapshots) == 1:
        return snapshots[0]

    def total(key: str) -> int:
        return sum(int(s[key]) for s in snapshots)  # type: ignore[arg-type]

    batches = total("batches")
    batched = total("batched_queries")
    max_batch = max(int(s["max_batch"]) for s in snapshots)  # type: ignore[arg-type]
    return {
        "mean_batch": batched / batches if batches else 0.0,
        "max_batch": max_batch,
        "shed": total("shed"),
        "degraded": total("degraded"),
        "cache": {
            "hits": sum(
                int(s["cache"]["hits"])  # type: ignore[index]
                for s in snapshots
            )
        },
    }


async def _run(config: LoadConfig) -> LoadReport:
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer()
    span_sink = None
    if config.span_log:
        span_sink = JsonLinesSpanSink(config.span_log)
        tracer.set_sink(span_sink)
    # The client-side latency histogram lives in the *server's* registry
    # on purpose: one exposition then carries the whole story — what
    # clients saw next to what the batcher did.
    latency = registry.histogram(
        "repro_load_latency_seconds",
        "Client-observed estimate latency of the load generator",
        buckets=LATENCY_BUCKETS,
        always=True,
    )
    # Single-shard runs keep the historical shape: the one server
    # shares the front registry with the latency histogram.  Fleet
    # runs give every shard its own registry (the per-server stats
    # contract must not bleed across shards) and put the histogram and
    # router counters together on the front-end's.
    fleet = config.shards > 1
    servers: List[EstimationServer] = []
    for _ in range(config.shards):
        shard_registry = (
            MetricsRegistry(enabled=True) if fleet else registry
        )
        servers.append(
            EstimationServer(
                pool=EnginePool(
                    backend=config.backend, registry=shard_registry
                ),
                cache=ResultCache(
                    config.cache_entries, registry=shard_registry
                ),
                batch_window=config.batch_window,
                max_batch=config.max_batch,
                max_pending=config.max_pending,
                shed_policy=config.shed_policy,
                backend=config.backend,
                solver_workers=config.solver_workers,
                registry=shard_registry,
                tracer=tracer,
            )
        )
    addresses = [await server.start() for server in servers]
    # Churn runs need a spare shard standing by to join mid-load; it is
    # started but *not* handed to the router at construction.
    spare_address: Optional[Tuple[str, int]] = None
    if config.churn:
        spare_registry = MetricsRegistry(enabled=True)
        spare = EstimationServer(
            pool=EnginePool(backend=config.backend, registry=spare_registry),
            cache=ResultCache(config.cache_entries, registry=spare_registry),
            batch_window=config.batch_window,
            max_batch=config.max_batch,
            max_pending=config.max_pending,
            shed_policy=config.shed_policy,
            backend=config.backend,
            solver_workers=config.solver_workers,
            registry=spare_registry,
            tracer=tracer,
        )
        servers.append(spare)
        spare_address = await spare.start()
    router: Optional[ShardRouter] = None
    if fleet:
        router = ShardRouter(
            addresses,
            health_interval=0.25,
            batch_window=config.router_batch_window,
            replication=config.replication,
            registry=registry,
            tracer=tracer,
        )
        address = await router.start()
    else:
        address = addresses[0]
    front = router if router is not None else servers[0]
    metrics_server = None
    scraped: Optional[str] = None
    errors: List[str] = []
    connection_count = min(
        config.connections
        if config.connections is not None
        else config.clients,
        config.clients,
    )
    connections: List[ServiceClient] = []
    try:
        if config.metrics_port is not None:
            metrics_server, metrics_address = await start_metrics_endpoint(
                front.render_metrics, port=config.metrics_port
            )
        connections = [
            await ServiceClient.connect(address[0], address[1])
            for _ in range(connection_count)
        ]
        started = _time.perf_counter()
        churn_events: List[Dict[str, object]] = []
        tasks = [
            _run_client(
                config,
                connections[index % connection_count],
                index,
                latency,
                errors,
            )
            for index in range(config.clients)
        ]
        if config.churn:
            assert router is not None and router.address is not None
            assert spare_address is not None
            victim_address = addresses[0]
            tasks.append(
                _run_churn(
                    config,
                    router.address,
                    spare_address,
                    servers[0],
                    f"{victim_address[0]}:{victim_address[1]}",
                    churn_events,
                )
            )
        await asyncio.gather(*tasks)
        elapsed = _time.perf_counter() - started
        if metrics_server is not None:
            scraped = await _scrape_http(*metrics_address)
        stats = _aggregate_stats([server.snapshot() for server in servers])
        router_stats = router.snapshot() if router is not None else None
        telemetry = front.metrics_snapshot()
        exposition = front.render_metrics()
    finally:
        for connection in connections:
            await connection.aclose()
        if router is not None:
            await router.aclose()
        for server in servers:
            await server.aclose()
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()
        if config.trace_export:
            write_chrome_trace(config.trace_export, spans=tracer.spans())
        if span_sink is not None:
            span_sink.close()
    if config.metrics_output:
        Path(config.metrics_output).write_text(
            scraped if scraped is not None else exposition,
            encoding="utf-8",
        )
    queries = latency.count
    cache: Dict[str, object] = stats["cache"]  # type: ignore[assignment]

    def latency_ms(fraction: float) -> float:
        # All-error runs have no latencies; the report must still come
        # back (errors=N is the finding, not a crash).
        return latency.quantile(fraction) * 1e3 if queries else 0.0

    return LoadReport(
        queries=queries,
        errors=len(errors),
        elapsed_seconds=elapsed,
        queries_per_second=queries / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=latency_ms(0.50),
        latency_p90_ms=latency_ms(0.90),
        latency_p99_ms=latency_ms(0.99),
        mean_batch=float(stats["mean_batch"]),  # type: ignore[arg-type]
        max_batch=int(stats["max_batch"]),  # type: ignore[arg-type]
        cache_hits=int(cache["hits"]),  # type: ignore[arg-type]
        shed=int(stats["shed"]),  # type: ignore[arg-type]
        degraded=int(stats["degraded"]),  # type: ignore[arg-type]
        config=config,
        telemetry=telemetry,
        exposition=exposition,
        scraped_exposition=scraped,
        shards=config.shards,
        workers=config.solver_workers,
        retries=(
            int(router_stats["retries"])  # type: ignore[arg-type]
            if router_stats is not None
            else 0
        ),
        router=router_stats,
        churn_events=churn_events,
    )


def run_load(config: Optional[LoadConfig] = None) -> LoadReport:
    """Run one scenario end to end (spawns its own event loop)."""
    return asyncio.run(_run(config if config is not None else LoadConfig()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded async load generator for 'repro serve'"
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--applications", type=int, default=6)
    parser.add_argument("--model", default="second_order")
    parser.add_argument("--batch-window", type=float, default=2.0, metavar="MS")
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument(
        "--shed-policy",
        choices=("reject", "evict", "downgrade"),
        default="reject",
    )
    parser.add_argument("--backend", choices=("auto", "numpy", "python"), default=None)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "estimation-server shards behind a consistent-hash router "
            "(1 = the classic single-server run, no router)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="solver worker processes per shard (0 = solver thread)",
    )
    parser.add_argument(
        "--router-batch-window",
        type=float,
        default=0.0,
        metavar="MS",
        help=(
            "router micro-batching window: coalesce same-gallery "
            "queries across connections into one framed hop per shard "
            "(0 = off, forward query-by-query)"
        ),
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="N",
        help=(
            "ring-successor shards each fresh answer replicates to "
            "(0 = off; fleet runs only)"
        ),
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help=(
            "drive elasticity churn mid-load: join a spare shard, "
            "invalidate the gallery, kill a shard, retire the corpse "
            "(needs --shards >= 2)"
        ),
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sockets the logical clients multiplex onto (default: one "
            "per client; thousands of clients should share a few "
            "pipelined connections)"
        ),
    )
    parser.add_argument(
        "--arrival",
        choices=ARRIVALS,
        default="closed",
        help="arrival process (closed = back-to-back, no think time)",
    )
    parser.add_argument(
        "--mean-interarrival",
        type=float,
        default=2.0,
        metavar="MS",
        help="mean think time per client for open-loop arrivals",
    )
    parser.add_argument("--burst-length", type=int, default=8)
    parser.add_argument("--burst-factor", type=float, default=4.0)
    parser.add_argument(
        "--diurnal-period", type=float, default=250.0, metavar="MS"
    )
    parser.add_argument("--diurnal-amplitude", type=float, default=0.8)
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="PATH",
        help="save the machine-readable report summary as JSON",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose HTTP GET /metrics during the run (0 = ephemeral)",
    )
    parser.add_argument(
        "--trace-export",
        default=None,
        metavar="PATH",
        help="write the server's spans as Chrome-trace JSON",
    )
    parser.add_argument(
        "--span-log",
        default=None,
        metavar="PATH",
        help="stream finished spans to PATH as JSON lines",
    )
    parser.add_argument(
        "--metrics-output",
        default=None,
        metavar="PATH",
        help="save the final Prometheus exposition to PATH",
    )
    arguments = parser.parse_args(argv)
    report = run_load(
        LoadConfig(
            clients=arguments.clients,
            queries_per_client=arguments.queries,
            seed=arguments.seed,
            gallery=GallerySpec(
                application_count=arguments.applications
            ),
            model=arguments.model,
            batch_window=arguments.batch_window / 1e3,
            cache_entries=arguments.cache_size,
            shed_policy=arguments.shed_policy,
            backend=arguments.backend,
            shards=arguments.shards,
            solver_workers=arguments.workers,
            router_batch_window=arguments.router_batch_window / 1e3,
            replication=arguments.replication,
            churn=arguments.churn,
            connections=arguments.connections,
            arrival=arguments.arrival,
            mean_interarrival_ms=arguments.mean_interarrival,
            burst_length=arguments.burst_length,
            burst_factor=arguments.burst_factor,
            diurnal_period_ms=arguments.diurnal_period,
            diurnal_amplitude=arguments.diurnal_amplitude,
            metrics_port=arguments.metrics_port,
            trace_export=arguments.trace_export,
            span_log=arguments.span_log,
            metrics_output=arguments.metrics_output,
        )
    )
    print(report.render())
    if arguments.report_json:
        Path(arguments.report_json).write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
