"""Runtime-throughput experiment: decisions/sec and admission vs. load.

Two questions the run-time story stands on:

1. **Is the resource manager fast enough?**  Decisions per second over a
   replayed scenario trace — the paper's argument is that the
   analytical estimate is cheap enough for on-line admission control.
2. **How does admission degrade with load?**  Sweeping the workload
   generator's arrival rate produces the admission-ratio-vs-load curve:
   at light load everything is admitted; as start requests pile up the
   device saturates and the ratio falls (or, with the downgrade policy,
   quality falls first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.reporting import render_series
from repro.generation.workload import WorkloadConfig, WorkloadGenerator
from repro.platform.mapping import Mapping
from repro.runtime.manager import (
    AppSpec,
    ResourceManager,
    make_qos_policy,
)


@dataclass(frozen=True)
class LoadPoint:
    """Replay statistics at one load multiplier."""

    load: float
    mean_interarrival: float
    events: int
    admission_ratio: float
    decisions_per_second: float
    evictions: int
    downgrades: int
    mean_peak_utilization: float


@dataclass(frozen=True)
class RuntimeThroughputResult:
    """Admission-ratio-vs-load curve plus the headline decision rate."""

    policy: str
    points: Tuple[LoadPoint, ...]

    @property
    def decisions_per_second(self) -> float:
        """Decision rate pooled over every load point."""
        total_events = sum(p.events for p in self.points)
        total_seconds = sum(
            p.events / p.decisions_per_second
            for p in self.points
            if p.decisions_per_second > 0
        )
        if total_seconds == 0:
            return 0.0
        return total_events / total_seconds

    def render(self) -> str:
        loads = [p.load for p in self.points]
        series = {
            "admission ratio": [p.admission_ratio for p in self.points],
            "decisions/sec": [
                p.decisions_per_second for p in self.points
            ],
            "downgrades": [float(p.downgrades) for p in self.points],
            "evictions": [float(p.evictions) for p in self.points],
            "peak util": [
                p.mean_peak_utilization for p in self.points
            ],
        }
        table = render_series(
            "load",
            loads,
            series,
            title=(
                f"Runtime throughput ({self.policy} policy): admission "
                f"ratio vs. load"
            ),
            value_format="{:.2f}",
        )
        return (
            table
            + f"\noverall decision rate: "
            f"{self.decisions_per_second:.0f} decisions/sec"
        )


def run_runtime_throughput(
    specs: Sequence[AppSpec],
    mapping: Optional[Mapping] = None,
    loads: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    events: int = 400,
    seed: int = 7,
    policy: str = "reject",
    base_config: Optional[WorkloadConfig] = None,
) -> RuntimeThroughputResult:
    """Replay one generated trace per load multiplier.

    ``loads`` scales the arrival rate: load 2.0 halves the mean
    inter-arrival time of ``base_config``.  Each point gets a fresh
    :class:`~repro.runtime.manager.ResourceManager` (same gallery, same
    policy) and a trace derived from ``seed`` and the load index, so the
    whole experiment is reproducible.
    """
    if not loads:
        raise ExperimentError("runtime throughput needs at least one load")
    if any(load <= 0 for load in loads):
        raise ExperimentError(f"loads must be positive, got {list(loads)!r}")
    base = base_config if base_config is not None else WorkloadConfig()
    quality_levels = {
        spec.name: spec.ladder.level_names for spec in specs
    }
    points: List[LoadPoint] = []
    for index, load in enumerate(loads):
        config = WorkloadConfig(
            arrival=base.arrival,
            mean_interarrival=base.mean_interarrival / load,
            mean_holding=base.mean_holding,
            adjust_fraction=base.adjust_fraction,
            start_quality=base.start_quality,
            burst_length=base.burst_length,
            burst_factor=base.burst_factor,
            diurnal_period=base.diurnal_period,
            diurnal_amplitude=base.diurnal_amplitude,
        )
        generator = WorkloadGenerator(
            [spec.name for spec in specs],
            quality_levels=quality_levels,
            config=config,
        )
        trace = generator.generate(seed=seed + index, events=events)
        manager = ResourceManager(
            list(specs), mapping=mapping, policy=policy
        )
        log = manager.replay(trace)
        peak = [
            max(record.utilization.values(), default=0.0)
            for record in log.records
        ]
        points.append(
            LoadPoint(
                load=load,
                mean_interarrival=config.mean_interarrival,
                events=len(log.records),
                admission_ratio=log.admission_ratio,
                decisions_per_second=log.decisions_per_second,
                evictions=log.eviction_count,
                downgrades=log.downgrade_count,
                mean_peak_utilization=(
                    sum(peak) / len(peak) if peak else 0.0
                ),
            )
        )
    return RuntimeThroughputResult(
        policy=make_qos_policy(policy).name,
        points=tuple(points),
    )
