"""Table 1: measured inaccuracy of each technique vs. simulation.

The paper's Table 1 (over all use-cases)::

    Method         Throughput%   Period%   Complexity
    Worst Case         49.0       112.1       O(n)
    Composability       4.0        13.8       O(n)
    Fourth Order        0.7        13.1       O(n^4)
    Second Order        2.8        11.2       O(n^2)

The reproduction targets the *ordering*: worst-case an order of magnitude
off, the three probabilistic techniques in the low percent (throughput)
to ~10-20 percent (period) range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.waiting import make_waiting_model
from repro.experiments.accuracy import InaccuracySummary, summarize_sweep
from repro.experiments.reporting import render_table
from repro.experiments.runner import SweepConfig, SweepResult, run_sweep
from repro.experiments.setup import BenchmarkSuite

#: Paper's Table 1 values, for side-by-side display in reports.
PAPER_TABLE1: Dict[str, Tuple[float, float, str]] = {
    "worst_case": (49.0, 112.1, "O(n)"),
    "composability": (4.0, 13.8, "O(n)"),
    "fourth_order": (0.7, 13.1, "O(n^4)"),
    "second_order": (2.8, 11.2, "O(n^2)"),
}

_DISPLAY_NAMES = {
    "worst_case": "Worst Case",
    "composability": "Composability",
    "fourth_order": "Fourth Order",
    "second_order": "Second Order",
    "exact": "Exact (Eq. 4)",
}


@dataclass(frozen=True)
class Table1Result:
    """Measured inaccuracies plus the sweep they came from."""

    summaries: Tuple[InaccuracySummary, ...]
    use_case_count: int

    def summary_of(self, method: str) -> InaccuracySummary:
        for summary in self.summaries:
            if summary.method == method:
                return summary
        raise KeyError(method)

    def render(self) -> str:
        rows: List[List[object]] = []
        for summary in self.summaries:
            paper = PAPER_TABLE1.get(summary.method)
            complexity = (
                paper[2]
                if paper is not None
                else make_waiting_model(summary.method).complexity
            )
            rows.append(
                [
                    _DISPLAY_NAMES.get(summary.method, summary.method),
                    f"{summary.throughput_percent:.1f}",
                    f"{summary.period_percent:.1f}",
                    f"{paper[0]:.1f}" if paper else "-",
                    f"{paper[1]:.1f}" if paper else "-",
                    complexity,
                ]
            )
        return render_table(
            [
                "Method",
                "Thr.% (ours)",
                "Per.% (ours)",
                "Thr.% (paper)",
                "Per.% (paper)",
                "Complexity",
            ],
            rows,
            title=(
                f"Table 1 - Mean absolute inaccuracy vs. simulation over "
                f"{self.use_case_count} use-cases"
            ),
        )


def run_table1(
    suite: BenchmarkSuite,
    config: Optional[SweepConfig] = None,
    sweep: Optional[SweepResult] = None,
) -> Table1Result:
    """Reproduce Table 1 (reusing ``sweep`` when the caller has one)."""
    if sweep is None:
        sweep = run_sweep(suite, config=config)
    return Table1Result(
        summaries=tuple(summarize_sweep(sweep)),
        use_case_count=sweep.use_case_count,
    )
