"""The timing claim of Section 5.

The paper: simulating all 1024 use-cases for 500 000 cycles took 23 hours
(Pentium 4, POOSL); all four analysis techniques together took about
10 minutes, dominated by per-use-case throughput computation (~30 seconds
per technique for ~5000 throughput computations).

Absolute numbers are machine- and scale-specific; the reproduction target
is the *ratio*: analysis must be orders of magnitude faster than
simulation per use-case.  :func:`run_timing` measures both on the same
sweep and reports per-use-case means and the speedup factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ExperimentError
from repro.experiments.reporting import render_table
from repro.experiments.runner import SweepConfig, SweepResult, run_sweep
from repro.experiments.setup import BenchmarkSuite


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock comparison of simulation vs. analysis."""

    use_case_count: int
    simulation_seconds_total: float
    estimation_seconds_total: Dict[str, float]

    @property
    def simulation_seconds_per_use_case(self) -> float:
        return self.simulation_seconds_total / self.use_case_count

    def estimation_seconds_per_use_case(self, method: str) -> float:
        return self.estimation_seconds_total[method] / self.use_case_count

    def speedup(self, method: str) -> float:
        """Simulation time over analysis time (bigger = analysis wins)."""
        analysis = self.estimation_seconds_total[method]
        if analysis <= 0:
            raise ExperimentError(
                f"method {method!r} recorded no analysis time"
            )
        return self.simulation_seconds_total / analysis

    def render(self) -> str:
        rows = [
            [
                "simulation (reference)",
                f"{self.simulation_seconds_total:.2f}",
                f"{self.simulation_seconds_per_use_case * 1e3:.1f}",
                "1x",
            ]
        ]
        for method, total in self.estimation_seconds_total.items():
            rows.append(
                [
                    method,
                    f"{total:.2f}",
                    f"{total / self.use_case_count * 1e3:.1f}",
                    f"{self.speedup(method):.0f}x",
                ]
            )
        return render_table(
            ["Technique", "total s", "ms/use-case", "speedup"],
            rows,
            title=(
                f"Timing - simulation vs. analysis over "
                f"{self.use_case_count} use-cases (paper: 23 h vs. "
                f"~10 min => ~140x)"
            ),
        )


def run_timing(
    suite: BenchmarkSuite,
    config: Optional[SweepConfig] = None,
    sweep: Optional[SweepResult] = None,
) -> TimingResult:
    """Measure the simulation-vs-analysis cost ratio on a sweep."""
    if sweep is None:
        sweep = run_sweep(suite, config=config)
    return TimingResult(
        use_case_count=sweep.use_case_count,
        simulation_seconds_total=sweep.total_simulation_seconds(),
        estimation_seconds_total={
            method: sweep.total_estimation_seconds(method)
            for method in sweep.methods
        },
    )
