"""ASCII rendering of the reproduced tables and figures.

Benches print these renderings into the pytest terminal summary and save
them under ``benchmarks/results/``; EXPERIMENTS.md embeds them.  Only
plain text — the reproduction is judged on the *numbers*, so no plotting
dependency is pulled in.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with right-aligned numeric columns."""
    formatted_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append(
            " | ".join(
                cell.rjust(widths[i]) if _is_numeric(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """A figure as a table: one row per x value, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for values in series.values():
            row.append(value_format.format(values[i]))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal ASCII bars, for quick visual shape checks."""
    if not values:
        return title
    peak = max(values)
    scale = width / peak if peak > 0 else 0.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value * scale))) if value > 0 else ""
        lines.append(
            f"{label.rjust(label_width)} | "
            f"{value_format.format(value).rjust(8)} {bar}"
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
