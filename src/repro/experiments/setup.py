"""The benchmark suite of the paper's evaluation.

Section 5: "ten random SDFGs were generated with eight to ten actors each
using the SDF3 tool, mimicking DSP or a multimedia application, and [each]
was a strongly connected component.  The execution time and the rates of
actors were also set randomly."  Applications are named A through J
(Figure 5's x-axis); actor *i* of each application is bound to processor
*i* of a homogeneous ten-processor platform, generalizing the paper's
Section 3 example where ``a_i`` and ``b_i`` share ``Proc_i``.

Everything is derived deterministically from one master seed so each
bench regenerates the identical suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.platform.mapping import Mapping, index_mapping
from repro.platform.platform import Platform
from repro.sdf.analysis import period as analytical_period
from repro.sdf.graph import SDFGraph

#: Application names as used in the paper's Figure 5.
APPLICATION_NAMES: Tuple[str, ...] = tuple("ABCDEFGHIJ")

#: Master seed of the reproduction suite (the publication year).
DEFAULT_SEED = 2007

#: Generator settings calibrated so the all-applications use-case lands in
#: the paper's regime: simulated periods 3-6x the isolation period
#: (Figure 5) while the worst-case analysis reaches ~8-15x.  The paper's
#: SDF3 graphs are pipelined (period below the sequential workload), which
#: ``pipeline_depth=2`` reproduces; depth 1 would cap node utilization
#: near 1 and halve the observed contention.
DEFAULT_GENERATOR_CONFIG = GeneratorConfig(pipeline_depth=2)


@dataclass(frozen=True)
class BenchmarkSuite:
    """The full experimental setup: applications, platform, mapping."""

    graphs: Tuple[SDFGraph, ...]
    platform: Platform
    mapping: Mapping
    seed: int

    @property
    def application_names(self) -> Tuple[str, ...]:
        return tuple(g.name for g in self.graphs)

    def graph(self, name: str) -> SDFGraph:
        for graph in self.graphs:
            if graph.name == name:
                return graph
        raise KeyError(name)

    def isolation_periods(self) -> Dict[str, float]:
        """Analytical periods of every application in isolation."""
        return {g.name: analytical_period(g) for g in self.graphs}


def paper_benchmark_suite(
    seed: int = DEFAULT_SEED,
    application_count: int = 10,
    config: GeneratorConfig | None = None,
) -> BenchmarkSuite:
    """Generate the paper-style benchmark suite deterministically.

    Parameters
    ----------
    seed:
        Master seed; each application gets a derived sub-seed.
    application_count:
        Number of applications (the paper uses 10; smaller counts are
        handy in tests and scaled-down benches).
    config:
        Generator knobs; the default matches the paper (8-10 actors,
        random times and rates).
    """
    cfg = config if config is not None else DEFAULT_GENERATOR_CONFIG
    names = (
        APPLICATION_NAMES[:application_count]
        if application_count <= len(APPLICATION_NAMES)
        else tuple(
            f"A{i}" for i in range(application_count)
        )
    )
    graphs = tuple(
        random_sdf_graph(name, seed=seed * 1000 + index, config=cfg)
        for index, name in enumerate(names)
    )
    width = max(len(g) for g in graphs)
    platform = Platform.homogeneous(width)
    mapping = index_mapping(graphs, platform)
    return BenchmarkSuite(
        graphs=graphs, platform=platform, mapping=mapping, seed=seed
    )
