"""Reproduction harness for the paper's evaluation (Section 5).

One module per published artefact:

* :mod:`repro.experiments.setup` — the ten-application benchmark suite
  and platform/mapping (SDF3-generated in the paper, seeded here).
* :mod:`repro.experiments.runner` — the use-case sweep: simulate and
  estimate every (sampled) use-case with every technique.
* :mod:`repro.experiments.accuracy` — inaccuracy metrics (mean absolute
  percentage difference vs. simulation).
* :mod:`repro.experiments.figure5` — normalized periods under maximum
  contention (Figure 5).
* :mod:`repro.experiments.table1` — inaccuracy summary (Table 1).
* :mod:`repro.experiments.figure6` — inaccuracy vs. number of concurrent
  applications (Figure 6).
* :mod:`repro.experiments.timing` — analysis vs. simulation wall-clock
  (the 23-hours-vs-10-minutes claim).
* :mod:`repro.experiments.runtime_throughput` — the resource manager's
  decision rate and admission-ratio-vs-load curves.
* :mod:`repro.experiments.reporting` — ASCII rendering shared by the
  benches.
"""

from repro.experiments.accuracy import (
    InaccuracySummary,
    mean_absolute_percentage_error,
)
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.runner import (
    SweepConfig,
    SweepResult,
    UseCaseRecord,
    run_sweep,
)
from repro.experiments.setup import (
    BenchmarkSuite,
    paper_benchmark_suite,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.timing import TimingResult, run_timing


def __getattr__(name: str):
    # Lazy: runtime_throughput sits on top of repro.runtime, which in
    # turn imports repro.experiments.setup — importing it eagerly here
    # would close an import cycle through repro.generation.workload.
    if name in ("RuntimeThroughputResult", "run_runtime_throughput"):
        from repro.experiments import runtime_throughput

        return getattr(runtime_throughput, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "BenchmarkSuite",
    "Figure5Result",
    "Figure6Result",
    "InaccuracySummary",
    "RuntimeThroughputResult",
    "SweepConfig",
    "SweepResult",
    "Table1Result",
    "TimingResult",
    "UseCaseRecord",
    "mean_absolute_percentage_error",
    "paper_benchmark_suite",
    "run_figure5",
    "run_figure6",
    "run_runtime_throughput",
    "run_sweep",
    "run_table1",
    "run_timing",
]
