"""Inaccuracy metrics.

Table 1 of the paper reports, per estimation technique, "the mean
absolute difference between the estimated and measured results ...
averaged over all the use-cases", in percent, for both throughput and
period.  :func:`summarize` computes exactly that from a sweep; Figure 6
uses the same metric restricted to use-cases of one cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.runner import SweepResult, UseCaseRecord


@dataclass(frozen=True)
class InaccuracySummary:
    """Mean absolute percentage inaccuracy of one method over a record set.

    ``samples`` counts (use-case, application) pairs contributing to the
    means.
    """

    method: str
    period_percent: float
    throughput_percent: float
    samples: int


def mean_absolute_percentage_error(
    pairs: Iterable[Tuple[float, float]],
) -> float:
    """``mean(|estimated - reference| / reference) * 100``.

    ``pairs`` yields ``(estimated, reference)``; an empty input is an
    error (a silent 0.0 would read as "perfectly accurate").
    """
    total = 0.0
    count = 0
    for estimated, reference in pairs:
        if reference <= 0:
            raise ExperimentError(
                f"reference value must be positive, got {reference}"
            )
        total += abs(estimated - reference) / reference
        count += 1
    if count == 0:
        raise ExperimentError("no samples to average")
    return 100.0 * total / count


def summarize(
    records: Sequence[UseCaseRecord], method: str
) -> InaccuracySummary:
    """Inaccuracy of ``method`` over ``records`` (period and throughput)."""
    period_pairs: List[Tuple[float, float]] = []
    throughput_pairs: List[Tuple[float, float]] = []
    for record in records:
        estimates = record.estimates[method]
        for application, simulated_period in record.simulated.items():
            estimated_period = estimates[application]
            period_pairs.append((estimated_period, simulated_period))
            throughput_pairs.append(
                (1.0 / estimated_period, 1.0 / simulated_period)
            )
    return InaccuracySummary(
        method=method,
        period_percent=mean_absolute_percentage_error(period_pairs),
        throughput_percent=mean_absolute_percentage_error(throughput_pairs),
        samples=len(period_pairs),
    )


def summarize_sweep(result: SweepResult) -> List[InaccuracySummary]:
    """One :class:`InaccuracySummary` per method, over the whole sweep."""
    return [summarize(result.records, method) for method in result.methods]


def summarize_by_size(
    result: SweepResult,
) -> Dict[int, List[InaccuracySummary]]:
    """Per-cardinality inaccuracies (the series of Figure 6)."""
    sizes = sorted({r.use_case.size for r in result.records})
    return {
        size: [
            summarize(result.records_of_size(size), method)
            for method in result.methods
        ]
        for size in sizes
    }
