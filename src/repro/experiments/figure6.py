"""Figure 6: inaccuracy vs. number of concurrent applications.

The paper's Figure 6 plots the mean absolute period inaccuracy (percent,
vs. simulation) against the number of concurrently executing
applications (1..10) for the four analysis techniques.  Expected shape:

* all curves start at 0 for one application (no contention, estimates
  are exact);
* the worst-case curve climbs steeply (the paper reaches ~160% at ten
  applications);
* the probabilistic curves stay low (paper: usually within 20%), with
  second order tracking composability almost exactly and fourth order
  the least conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.accuracy import summarize_by_size
from repro.experiments.reporting import render_series
from repro.experiments.runner import SweepConfig, SweepResult, run_sweep
from repro.experiments.setup import BenchmarkSuite

_DISPLAY_NAMES = {
    "worst_case": "Analyzed Worst Case",
    "composability": "Composability-based",
    "fourth_order": "Probabilistic Fourth Order",
    "second_order": "Probabilistic Second Order",
    "exact": "Exact (Eq. 4)",
}


@dataclass(frozen=True)
class Figure6Result:
    """Per-size period inaccuracies, one series per method."""

    sizes: Tuple[int, ...]
    series: Dict[str, Tuple[float, ...]]
    samples_per_size: Dict[int, int]

    def render(self) -> str:
        display = {
            _DISPLAY_NAMES.get(method, method): list(values)
            for method, values in self.series.items()
        }
        return render_series(
            "#Apps",
            self.sizes,
            display,
            title=(
                "Figure 6 - Mean absolute period inaccuracy (%) vs. "
                "number of concurrent applications"
            ),
        )


def run_figure6(
    suite: BenchmarkSuite,
    config: Optional[SweepConfig] = None,
    sweep: Optional[SweepResult] = None,
) -> Figure6Result:
    """Reproduce Figure 6 (reusing ``sweep`` when the caller has one)."""
    if sweep is None:
        sweep = run_sweep(suite, config=config)
    by_size = summarize_by_size(sweep)
    sizes = tuple(sorted(by_size))
    series: Dict[str, List[float]] = {m: [] for m in sweep.methods}
    samples: Dict[int, int] = {}
    for size in sizes:
        summaries = {s.method: s for s in by_size[size]}
        for method in sweep.methods:
            series[method].append(summaries[method].period_percent)
        samples[size] = summaries[sweep.methods[0]].samples
    return Figure6Result(
        sizes=sizes,
        series={m: tuple(v) for m, v in series.items()},
        samples_per_size=samples,
    )
