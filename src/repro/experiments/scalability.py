"""The scalability claim (abstract and Section 5 of the paper).

"The approach scales very well with increasing number of applications"
— the analysis needs only *limited information from the other
applications* (their co-mapped actors' P and mu), so its per-use-case
cost grows polynomially in the number of co-mapped actors while
simulation cost grows with the amount of work simulated, and exhaustive
verification grows as 2^N in the number of applications.

:func:`run_scalability` measures, for growing application counts,

* the wall-clock of one maximum-contention estimate (per technique),
* the wall-clock of one maximum-contention reference simulation, and
* the number of use-cases an exhaustive sweep would have to cover,

giving the quantitative backing for the paper's "2^20 use-cases are
impossible to verify by simulation; the estimate handles each in
milliseconds" argument.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis_engine import build_engines
from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import ExperimentError
from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.mapping import index_mapping
from repro.platform.usecase import UseCase, all_use_cases
from repro.simulation.engine import SimulationConfig, Simulator


@dataclass(frozen=True)
class ScalabilityPoint:
    """Measured costs at one application count."""

    applications: int
    use_case_count: int
    estimation_ms: Dict[str, float]
    simulation_ms: float


@dataclass(frozen=True)
class ScalabilityResult:
    """One point per application count."""

    points: Tuple[ScalabilityPoint, ...]
    methods: Tuple[str, ...]

    def render(self) -> str:
        rows: List[List[object]] = []
        for point in self.points:
            row: List[object] = [
                point.applications,
                f"2^{point.applications}",
            ]
            for method in self.methods:
                row.append(f"{point.estimation_ms[method]:.1f}")
            row.append(f"{point.simulation_ms:.0f}")
            rows.append(row)
        headers = [
            "apps",
            "use-cases",
            *[f"{m} ms" for m in self.methods],
            "simulation ms",
        ]
        return render_table(
            headers,
            rows,
            title=(
                "Scalability - cost of ONE maximum-contention analysis "
                "vs. ONE reference simulation, by application count"
            ),
        )


def run_scalability(
    application_counts: Sequence[int] = (2, 5, 10, 15, 20),
    methods: Sequence[str] = ("second_order", "composability"),
    simulation_iterations: int = 40,
    repeats: int = 3,
    seed: int = 2007,
) -> ScalabilityResult:
    """Measure analysis and simulation cost as applications are added.

    All suites share one master seed, so the N-application suite is a
    prefix-extension of the (N-1)-application one.  ``repeats`` runs of
    each estimate are averaged (they are sub-millisecond at small N).
    """
    largest = max(application_counts)
    suite = paper_benchmark_suite(
        seed=seed, application_count=largest
    )
    points: List[ScalabilityPoint] = []
    for count in application_counts:
        graphs = list(suite.graphs[:count])
        use_case = UseCase(tuple(g.name for g in graphs))

        estimation_ms: Dict[str, float] = {}
        for method in methods:
            estimator = ProbabilisticEstimator(
                graphs, mapping=suite.mapping, waiting_model=method
            )
            started = _time.perf_counter()
            for _ in range(repeats):
                # Drop the response-time memo between repeats: repeated
                # estimates of one use-case would otherwise be answered
                # from cache, and this point measures the cost of a
                # *fresh* use-case (structure stays warm, as in a sweep).
                for engine in estimator.engines.values():
                    engine.cache_clear()
                estimator.estimate(use_case)
            estimation_ms[method] = (
                (_time.perf_counter() - started) / repeats * 1e3
            )

        started = _time.perf_counter()
        Simulator(
            graphs,
            mapping=suite.mapping,
            config=SimulationConfig(
                target_iterations=simulation_iterations
            ),
        ).run()
        simulation_ms = (_time.perf_counter() - started) * 1e3

        points.append(
            ScalabilityPoint(
                applications=count,
                use_case_count=2**count,
                estimation_ms=estimation_ms,
                simulation_ms=simulation_ms,
            )
        )
    return ScalabilityResult(
        points=tuple(points), methods=tuple(methods)
    )


# ----------------------------------------------------------------------
# Incremental-engine speedup on a full use-case sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpeedupResult:
    """Cold vs. incremental cost of estimating a full use-case sweep.

    ``cold_seconds`` re-expands to HSDF and cold-starts Howard for every
    period query (the original stateless implementation, obtained with
    ``incremental=False``); ``warm_seconds`` uses one shared set of
    per-application :class:`~repro.analysis_engine.AnalysisEngine` for
    all ``methods`` — both timings include estimator construction so
    structural setup is charged to the warm path.
    ``max_relative_difference`` certifies the two paths agreed.
    """

    applications: int
    use_case_count: int
    methods: Tuple[str, ...]
    cold_seconds: float
    warm_seconds: float
    max_relative_difference: float

    @property
    def speedup(self) -> float:
        return self.cold_seconds / self.warm_seconds

    @property
    def estimate_count(self) -> int:
        """Total estimates per path: every use-case under every method."""
        return self.use_case_count * len(self.methods)

    def render(self) -> str:
        rows = [
            [
                self.applications,
                self.use_case_count,
                "+".join(self.methods),
                f"{self.cold_seconds * 1e3:.1f}",
                f"{self.warm_seconds * 1e3:.1f}",
                f"{self.speedup:.2f}x",
                f"{self.max_relative_difference:.1e}",
            ]
        ]
        return render_table(
            [
                "apps",
                "use-cases",
                "methods",
                "cold ms",
                "engine ms",
                "speedup",
                "max rel diff",
            ],
            rows,
            title=(
                "Incremental engine - full use-case sweep, cold "
                "re-expansion vs. cached HSDF + warm-started Howard"
            ),
        )


def run_sweep_speedup(
    application_count: int = 8,
    methods: Sequence[str] = ("second_order",),
    seed: int = 2007,
    graphs: Optional[Sequence] = None,
    mapping=None,
) -> SweepSpeedupResult:
    """Estimate every use-case twice — cold path, then engine path.

    The exhaustive ``2^N - 1`` sweep is the workload of the paper's
    headline claim; this measures what the incremental engine buys on it
    and certifies (via ``max_relative_difference``) that caching changed
    nothing but the wall-clock.  Pass explicit ``graphs`` to measure a
    custom application set (default: the paper suite prefix; ``mapping``
    defaults to the index mapping of those graphs).  The warm path
    shares one engine set across all ``methods`` — fine here because
    only the *total* sweep cost is reported (the experiment runner, by
    contrast, keeps per-method engines so its per-method timing table
    stays fair).
    """
    if graphs is None:
        if mapping is not None:
            raise ExperimentError(
                "run_sweep_speedup got a mapping without graphs; pass "
                "the application set the mapping belongs to"
            )
        suite = paper_benchmark_suite(
            seed=seed, application_count=application_count
        )
        graphs = list(suite.graphs)
        mapping = suite.mapping
    else:
        graphs = list(graphs)
        if mapping is None:
            mapping = index_mapping(graphs)
    use_cases = all_use_cases(tuple(g.name for g in graphs))

    def sweep(incremental: bool):
        engines = build_engines(graphs) if incremental else None
        results = {}
        for method in methods:
            estimator = ProbabilisticEstimator(
                graphs,
                mapping=mapping,
                waiting_model=method,
                engines=engines,
                incremental=incremental,
            )
            results[method] = estimator.estimate_many(use_cases)
        return results

    started = _time.perf_counter()
    cold_results = sweep(incremental=False)
    cold_seconds = _time.perf_counter() - started

    started = _time.perf_counter()
    warm_results = sweep(incremental=True)
    warm_seconds = _time.perf_counter() - started

    max_rel = 0.0
    for method in methods:
        for cold_result, warm_result in zip(
            cold_results[method], warm_results[method]
        ):
            for name, cold_period in cold_result.periods.items():
                difference = abs(
                    cold_period - warm_result.periods[name]
                ) / abs(cold_period)
                max_rel = max(max_rel, difference)

    return SweepSpeedupResult(
        applications=len(graphs),
        use_case_count=len(use_cases),
        methods=tuple(methods),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        max_relative_difference=max_rel,
    )
