"""The scalability claim (abstract and Section 5 of the paper).

"The approach scales very well with increasing number of applications"
— the analysis needs only *limited information from the other
applications* (their co-mapped actors' P and mu), so its per-use-case
cost grows polynomially in the number of co-mapped actors while
simulation cost grows with the amount of work simulated, and exhaustive
verification grows as 2^N in the number of applications.

:func:`run_scalability` measures, for growing application counts,

* the wall-clock of one maximum-contention estimate (per technique),
* the wall-clock of one maximum-contention reference simulation, and
* the number of use-cases an exhaustive sweep would have to cover,

giving the quantitative backing for the paper's "2^20 use-cases are
impossible to verify by simulation; the estimate handles each in
milliseconds" argument.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite
from repro.generation.random_sdf import GeneratorConfig
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator


@dataclass(frozen=True)
class ScalabilityPoint:
    """Measured costs at one application count."""

    applications: int
    use_case_count: int
    estimation_ms: Dict[str, float]
    simulation_ms: float


@dataclass(frozen=True)
class ScalabilityResult:
    """One point per application count."""

    points: Tuple[ScalabilityPoint, ...]
    methods: Tuple[str, ...]

    def render(self) -> str:
        rows: List[List[object]] = []
        for point in self.points:
            row: List[object] = [
                point.applications,
                f"2^{point.applications}",
            ]
            for method in self.methods:
                row.append(f"{point.estimation_ms[method]:.1f}")
            row.append(f"{point.simulation_ms:.0f}")
            rows.append(row)
        headers = [
            "apps",
            "use-cases",
            *[f"{m} ms" for m in self.methods],
            "simulation ms",
        ]
        return render_table(
            headers,
            rows,
            title=(
                "Scalability - cost of ONE maximum-contention analysis "
                "vs. ONE reference simulation, by application count"
            ),
        )


def run_scalability(
    application_counts: Sequence[int] = (2, 5, 10, 15, 20),
    methods: Sequence[str] = ("second_order", "composability"),
    simulation_iterations: int = 40,
    repeats: int = 3,
    seed: int = 2007,
) -> ScalabilityResult:
    """Measure analysis and simulation cost as applications are added.

    All suites share one master seed, so the N-application suite is a
    prefix-extension of the (N-1)-application one.  ``repeats`` runs of
    each estimate are averaged (they are sub-millisecond at small N).
    """
    largest = max(application_counts)
    suite = paper_benchmark_suite(
        seed=seed, application_count=largest
    )
    points: List[ScalabilityPoint] = []
    for count in application_counts:
        graphs = list(suite.graphs[:count])
        use_case = UseCase(tuple(g.name for g in graphs))

        estimation_ms: Dict[str, float] = {}
        for method in methods:
            estimator = ProbabilisticEstimator(
                graphs, mapping=suite.mapping, waiting_model=method
            )
            started = _time.perf_counter()
            for _ in range(repeats):
                estimator.estimate(use_case)
            estimation_ms[method] = (
                (_time.perf_counter() - started) / repeats * 1e3
            )

        started = _time.perf_counter()
        Simulator(
            graphs,
            mapping=suite.mapping,
            config=SimulationConfig(
                target_iterations=simulation_iterations
            ),
        ).run()
        simulation_ms = (_time.perf_counter() - started) * 1e3

        points.append(
            ScalabilityPoint(
                applications=count,
                use_case_count=2**count,
                estimation_ms=estimation_ms,
                simulation_ms=simulation_ms,
            )
        )
    return ScalabilityResult(
        points=tuple(points), methods=tuple(methods)
    )
