"""Placement-frontier experiment: feasibility vs slack, per strategy.

The placement search answers "what configuration meets the QoS
targets?"; this experiment maps *when* such a configuration exists at
all.  Sweeping the slack factor (target = slack × isolation period)
over a gallery produces the feasibility frontier of the WRR contention
bound: at tight slack no mapping/weight combination is feasible, and
the frontier slack grows with the number of co-resident applications
because every application's waiting time grows with its contenders.

Each sweep point also contrasts the strategies' *efficiency*: the
exhaustive scan evaluates the whole space, while greedy typically
needs an order of magnitude fewer candidate evaluations to reach the
same feasibility verdict — the argument for greedy being the default
``repro place`` strategy.

Run as a script::

    python -m repro.experiments.placement --applications 4
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite
from repro.search import (
    CandidateEvaluator,
    Constraint,
    Objective,
    SearchSpace,
    StrategyOptions,
    derive_targets,
    run_strategy,
)

DEFAULT_SLACKS = (2.0, 2.5, 3.5, 4.5, 6.0)
DEFAULT_STRATEGIES = ("exhaustive", "greedy")


@dataclass(frozen=True)
class FrontierPoint:
    """One (slack, strategy) cell of the sweep."""

    slack: float
    strategy: str
    feasible: bool
    objective_value: Optional[float]
    evaluated: int
    space_size: int


@dataclass(frozen=True)
class PlacementFrontierResult:
    """The full sweep plus the frontier slack it reveals."""

    applications: int
    objective: str
    points: Tuple[FrontierPoint, ...]

    @property
    def frontier_slack(self) -> Optional[float]:
        """Smallest swept slack with any feasible configuration
        (``None`` when even the loosest slack is infeasible)."""
        feasible = sorted(
            point.slack for point in self.points if point.feasible
        )
        return feasible[0] if feasible else None

    def strategies_agree(self) -> bool:
        """Whether every strategy reached the same verdict per slack."""
        verdicts: Dict[float, set] = {}
        for point in self.points:
            verdicts.setdefault(point.slack, set()).add(point.feasible)
        return all(len(seen) == 1 for seen in verdicts.values())

    def render(self) -> str:
        rows: List[Sequence[object]] = []
        for point in self.points:
            rows.append(
                (
                    f"{point.slack:.1f}",
                    point.strategy,
                    "yes" if point.feasible else "no",
                    (
                        f"{point.objective_value:.1f}"
                        if point.objective_value is not None
                        else "-"
                    ),
                    f"{point.evaluated}/{point.space_size}",
                )
            )
        title = (
            f"placement frontier — {self.applications} applications, "
            f"objective {self.objective}"
        )
        table = render_table(
            ("slack", "strategy", "feasible", "objective", "evaluated"),
            rows,
            title=title,
        )
        frontier = (
            f"{self.frontier_slack:.1f}"
            if self.frontier_slack is not None
            else "beyond the sweep"
        )
        return f"{table}\nfrontier slack: {frontier}"


def run_placement_frontier(
    applications: int = 4,
    slacks: Sequence[float] = DEFAULT_SLACKS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    objective: str = "total_period",
    model: str = "wrr",
    weight_choices: Tuple[int, ...] = (1, 2),
    seed: int = 0,
) -> PlacementFrontierResult:
    """Sweep slack × strategy over one paper-suite gallery.

    The search space (and its warm evaluator engines) is rebuilt per
    sweep point deliberately: each point must reproduce exactly what a
    standalone ``repro place`` run would report.
    """
    suite = paper_benchmark_suite(application_count=applications)
    points: List[FrontierPoint] = []
    for slack in slacks:
        for strategy in strategies:
            space = SearchSpace(
                list(suite.graphs),
                platform=suite.platform,
                model=model,
                weight_choices=weight_choices,
            )
            targets = derive_targets(list(space.graphs), slack=slack)
            evaluator = CandidateEvaluator(
                space,
                objective=Objective(objective),
                constraint=Constraint(targets),
            )
            outcome = run_strategy(
                strategy, space, evaluator, StrategyOptions(seed=seed)
            )
            best = outcome.best
            points.append(
                FrontierPoint(
                    slack=slack,
                    strategy=strategy,
                    feasible=bool(best is not None and best.feasible),
                    objective_value=(
                        best.objective_value
                        if best is not None and best.feasible
                        else None
                    ),
                    evaluated=outcome.evaluated,
                    space_size=space.size,
                )
            )
    return PlacementFrontierResult(
        applications=applications,
        objective=objective,
        points=tuple(points),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="feasibility frontier of the placement search"
    )
    parser.add_argument("--applications", type=int, default=4)
    parser.add_argument(
        "--slacks",
        default=",".join(str(s) for s in DEFAULT_SLACKS),
        help="comma-separated slack factors to sweep",
    )
    parser.add_argument(
        "--strategies",
        default=",".join(DEFAULT_STRATEGIES),
        help="comma-separated strategies to contrast",
    )
    parser.add_argument("--objective", default="total_period")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args(argv)
    result = run_placement_frontier(
        applications=arguments.applications,
        slacks=tuple(
            float(part) for part in arguments.slacks.split(",") if part
        ),
        strategies=tuple(
            part.strip()
            for part in arguments.strategies.split(",")
            if part.strip()
        ),
        objective=arguments.objective,
        seed=arguments.seed,
    )
    print(result.render())
    if not result.strategies_agree():
        print("WARNING: strategies disagree on feasibility")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
