"""Figure 5: per-application periods under maximum contention.

The paper's Figure 5 plots, for every application A-J with *all ten
applications running concurrently*, the period normalized to the
application's isolation period, as computed by:

* the worst-case-response-time analysis ("Analyzed Worst Case"),
* the fourth-order and second-order probabilistic approximations,
* the composability-based approach,
* simulation (mean, the reference) and the worst case observed in
  simulation, and
* the original period (identically 1 after normalization).

The reproduction target is the *shape*: the worst-case estimate towers
over everything (the paper shows up to ~12x while simulation sits at
3-6x), the three probabilistic estimates hug the simulated series, and
the second order is the most conservative of the three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_series
from repro.experiments.setup import BenchmarkSuite
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator

#: Order of the series in the rendered table (mirrors the paper legend).
SERIES_ORDER: Tuple[str, ...] = (
    "Analyzed Worst Case",
    "Probabilistic Fourth Order",
    "Probabilistic Second Order",
    "Composability-based",
    "Simulated",
    "Simulated Worst Case",
    "Original",
)

_METHOD_TO_SERIES = {
    "worst_case": "Analyzed Worst Case",
    "fourth_order": "Probabilistic Fourth Order",
    "second_order": "Probabilistic Second Order",
    "composability": "Composability-based",
}


@dataclass(frozen=True)
class Figure5Result:
    """Normalized period per application per series."""

    applications: Tuple[str, ...]
    series: Dict[str, Tuple[float, ...]]
    simulation_iterations: int

    def render(self) -> str:
        ordered = {
            name: self.series[name]
            for name in SERIES_ORDER
            if name in self.series
        }
        return render_series(
            "App",
            self.applications,
            {k: list(v) for k, v in ordered.items()},
            title=(
                "Figure 5 - Period normalized to isolation period "
                "(all applications concurrent)"
            ),
            value_format="{:.2f}",
        )


def run_figure5(
    suite: BenchmarkSuite,
    target_iterations: int = 150,
    arbitration: str = "fcfs",
) -> Figure5Result:
    """Reproduce Figure 5 on ``suite``.

    ``target_iterations`` controls the simulation length of the
    all-applications use-case (the paper's is one 500 000-cycle run).
    """
    use_case = UseCase(suite.application_names)
    isolation = suite.isolation_periods()

    series: Dict[str, List[float]] = {name: [] for name in SERIES_ORDER}

    estimates: Dict[str, Dict[str, float]] = {}
    for method, series_name in _METHOD_TO_SERIES.items():
        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model=method,
        )
        estimates[series_name] = estimator.estimate(use_case).periods

    result = Simulator(
        list(suite.graphs),
        mapping=suite.mapping,
        config=SimulationConfig(
            arbitration=arbitration,
            target_iterations=target_iterations,
        ),
    ).run()

    for name in suite.application_names:
        base = isolation[name]
        for series_name in _METHOD_TO_SERIES.values():
            series[series_name].append(estimates[series_name][name] / base)
        series["Simulated"].append(result.period_of(name) / base)
        series["Simulated Worst Case"].append(
            result.worst_period_of(name) / base
        )
        series["Original"].append(1.0)

    return Figure5Result(
        applications=suite.application_names,
        series={k: tuple(v) for k, v in series.items()},
        simulation_iterations=target_iterations,
    )
