#!/usr/bin/env python3
"""A multi-featured media device — the paper's title scenario.

Five media applications (H.263 video, MP3 audio, JPEG viewer, data
modem, sample-rate converter) can run in any combination on a shared
five-processor SoC.  Verifying all 2^5 - 1 = 31 use-cases by simulation
is what the paper calls infeasible at scale; this example does both on
the small scale — estimates every use-case probabilistically *and*
simulates it — and prints the worst-case-vs-probabilistic accuracy per
use-case size, i.e. a miniature Figure 6 on realistic application
graphs.

Run with::

    python examples/media_device.py
"""

from __future__ import annotations

from collections import defaultdict

import os


from repro import (
    ProbabilisticEstimator,
    SimulationConfig,
    all_use_cases,
    index_mapping,
    simulate,
)
from repro.generation.gallery import media_device_suite

#: CI's examples-bitrot job sets REPRO_EXAMPLES_FAST=1 so every example
#: still executes end to end, just on a shrunken workload.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") == "1"


def main() -> None:
    graphs = media_device_suite()
    mapping = index_mapping(graphs)
    names = tuple(g.name for g in graphs)

    print("Applications on the device:")
    for graph in graphs:
        print(
            f"  {graph.name:>6s}: {len(graph)} actors, "
            f"{len(graph.channels)} channels"
        )

    estimators = {
        model: ProbabilisticEstimator(
            graphs, mapping=mapping, waiting_model=model
        )
        for model in ("second_order", "worst_case")
    }

    errors = {model: defaultdict(list) for model in estimators}
    use_cases = all_use_cases(names)
    print(f"\nSweeping all {len(use_cases)} use-cases ...")
    for use_case in use_cases:
        active = use_case.select(graphs)
        reference = simulate(
            active,
            mapping=mapping,
            config=SimulationConfig(target_iterations=10 if FAST else 60),
        )
        for model, estimator in estimators.items():
            estimate = estimator.estimate(use_case)
            for name in use_case:
                simulated = reference.period_of(name)
                estimated = estimate.periods[name]
                errors[model][use_case.size].append(
                    100 * abs(estimated - simulated) / simulated
                )

    print("\nMean period inaccuracy vs. simulation (percent):")
    print(f"  {'apps':>6s} {'probabilistic':>14s} {'worst case':>11s}")
    for size in sorted(errors["second_order"]):
        probabilistic = errors["second_order"][size]
        worst = errors["worst_case"][size]
        print(
            f"  {size:>6d} "
            f"{sum(probabilistic) / len(probabilistic):>14.1f} "
            f"{sum(worst) / len(worst):>11.1f}"
        )

    print(
        "\nEven on real application structures the probabilistic estimate"
        "\nstays within a few tens of percent while the worst-case bound"
        "\nexplodes with the number of concurrent features."
    )


if __name__ == "__main__":
    main()
