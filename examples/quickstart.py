#!/usr/bin/env python3
"""Quickstart: estimate contention for two applications sharing a CPU.

Builds the two SDF applications from the paper's Figure 2, maps actor i
of each application onto processor i (so a_i and b_i contend), and
compares:

* the isolation period of each application (no contention),
* the probabilistic estimates (exact formula, second/fourth order,
  composability),
* the worst-case response-time bound, and
* the period measured by the cycle-accurate reference simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import (
    GraphBuilder,
    ProbabilisticEstimator,
    SimulationConfig,
    index_mapping,
    period,
    simulate,
)

#: CI's examples-bitrot job sets REPRO_EXAMPLES_FAST=1 so every example
#: still executes end to end, just on a shrunken workload.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") == "1"


def build_applications():
    """The paper's Figure 2: two three-actor ring applications."""
    app_a = (
        GraphBuilder("A")
        .actor("a0", 100)
        .actor("a1", 50)
        .actor("a2", 100)
        .channel("a0", "a1", production=2, consumption=1)
        .channel("a1", "a2", production=1, consumption=2)
        .channel("a2", "a0", initial_tokens=1)
        .build()
    )
    app_b = (
        GraphBuilder("B")
        .actor("b0", 50)
        .actor("b1", 100)
        .actor("b2", 100)
        .channel("b0", "b1", production=1, consumption=2)
        .channel("b1", "b2", production=1, consumption=1)
        .channel("b2", "b0", production=2, consumption=1, initial_tokens=2)
        .build()
    )
    return app_a, app_b


def main() -> None:
    app_a, app_b = build_applications()
    graphs = [app_a, app_b]
    mapping = index_mapping(graphs)

    print("Isolation periods (Definition 3):")
    for graph in graphs:
        print(f"  Per({graph.name}) = {period(graph):.1f}")

    print("\nEstimated periods under contention (a_i, b_i share proc_i):")
    for model in ("exact", "second_order", "fourth_order",
                  "composability", "worst_case"):
        estimator = ProbabilisticEstimator(
            graphs, mapping=mapping, waiting_model=model
        )
        result = estimator.estimate()
        periods = ", ".join(
            f"Per({name}) = {value:.1f}"
            for name, value in result.periods.items()
        )
        print(f"  {model:>15s}: {periods}")

    print("\nReference simulation (non-preemptive FCFS):")
    reference = simulate(
        graphs,
        mapping=mapping,
        config=SimulationConfig(target_iterations=20 if FAST else 200),
    )
    for graph in graphs:
        metrics = reference.metrics[graph.name]
        print(
            f"  Per({graph.name}) = {metrics.average_period:.1f} "
            f"(worst iteration {metrics.worst_period:.1f})"
        )

    print(
        "\nThe probabilistic estimate (~358) is a conservative ~20% above"
        "\nthe simulated 300 here; the worst-case bound (650) is more than"
        "\ndouble it.  Section 3.1 of the paper walks through these exact"
        "\nnumbers."
    )


if __name__ == "__main__":
    main()
