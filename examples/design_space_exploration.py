#!/usr/bin/env python3
"""Design-space exploration: how many processors does the device need?

An architect sizing a platform cannot simulate every candidate: this
example sweeps the processor count for a six-application device and
uses the probabilistic estimate to find the narrowest platform on which
every application still meets a 2x-of-isolation period budget — then
validates only the chosen design point with the reference simulator
(the workflow the paper's speed advantage enables).

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import os

from repro import (
    Platform,
    ProbabilisticEstimator,
    SimulationConfig,
    UseCase,
    build_engines,
    simulate,
)
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.mapping import spread_mapping

#: CI's examples-bitrot job sets REPRO_EXAMPLES_FAST=1 so every example
#: still executes end to end, just on a shrunken workload.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") == "1"

BUDGET = 2.5  # tolerated period inflation over isolation


def main() -> None:
    suite = paper_benchmark_suite(application_count=6)
    graphs = list(suite.graphs)
    use_case = UseCase(tuple(g.name for g in graphs))
    widest = max(len(g) for g in graphs)

    # The analysis engines depend only on the graphs, not the mapping:
    # build them once and every candidate width reuses the cached HSDF
    # expansions and warm Howard policies.
    engines = build_engines(graphs)

    print(
        f"Sizing a platform for {len(graphs)} applications "
        f"(budget: {BUDGET:.1f}x isolation period).\n"
    )
    print(f"{'procs':>6s} {'max inflation (est.)':>21s}  verdict")

    chosen = None
    chosen_mapping = None
    for width in range(6, 2 * widest + 1):
        platform = Platform.homogeneous(width)
        mapping = spread_mapping(graphs, platform)
        estimator = ProbabilisticEstimator(
            graphs,
            mapping=mapping,
            waiting_model="second_order",
            engines=engines,
        )
        result = estimator.estimate(use_case)
        inflation = max(
            result.normalized_period_of(g.name) for g in graphs
        )
        verdict = "ok" if inflation <= BUDGET else "too slow"
        print(f"{width:>6d} {inflation:>21.2f}  {verdict}")
        if inflation <= BUDGET and chosen is None:
            chosen = width
            chosen_mapping = mapping

    if chosen is None:
        print("\nNo feasible width found within the sweep.")
        return

    print(
        f"\nEstimate picks {chosen} processors; validating that single "
        "design point by simulation:"
    )
    reference = simulate(
        graphs,
        mapping=chosen_mapping,
        config=SimulationConfig(target_iterations=15 if FAST else 120),
    )
    worst = 0.0
    isolation_periods = {
        name: engine.isolation_period for name, engine in engines.items()
    }
    for graph in graphs:
        inflation = reference.period_of(graph.name) / isolation_periods[
            graph.name
        ]
        worst = max(worst, inflation)
        print(f"  {graph.name}: simulated inflation {inflation:.2f}x")
    print(
        f"\nSimulated worst inflation {worst:.2f}x vs. budget "
        f"{BUDGET:.1f}x — one simulation instead of "
        f"{2 * widest - 5} candidate widths."
    )


if __name__ == "__main__":
    main()
