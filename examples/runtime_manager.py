"""Run-time resource management of a multi-featured media device.

The scenario of the paper's title, end to end: media applications
(H.263 video, MP3 audio, JPEG viewing, a data modem) start, stop and
change quality at unpredictable times; the resource manager predicts
contended periods with the probabilistic estimate and decides each
request on the fly — degrading quality gracefully instead of rejecting
outright.

Run with ``PYTHONPATH=src python examples/runtime_manager.py``.
"""

from __future__ import annotations

import os

from repro.generation.gallery import (
    h263_decoder,
    jpeg_decoder,
    modem,
    mp3_decoder,
)
from repro.generation.workload import WorkloadConfig, WorkloadGenerator
from repro.runtime import ResourceManager, gallery_from_graphs
from repro.runtime.validation import validate_log

#: CI's examples-bitrot job sets REPRO_EXAMPLES_FAST=1 so every example
#: still executes end to end, just on a shrunken workload.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") == "1"


def main() -> None:
    graphs = [h263_decoder(), mp3_decoder(), jpeg_decoder(), modem()]
    # Quality ladders + throughput requirements; earlier graphs get
    # higher priority (the video call outranks the photo viewer).
    specs = gallery_from_graphs(graphs, slack=1.4)
    manager = ResourceManager(specs, policy="downgrade")

    generator = WorkloadGenerator(
        [spec.name for spec in specs],
        quality_levels={
            spec.name: spec.ladder.level_names for spec in specs
        },
        config=WorkloadConfig(arrival="bursty", mean_interarrival=60.0),
    )
    trace = generator.generate(seed=2007, events=200 if FAST else 2000)
    log = manager.replay(trace)

    counts = log.counts_by_outcome()
    print(f"events        : {len(log)}")
    print(f"admitted      : {counts['admitted']}")
    print(f"rejected      : {counts['rejected']}")
    print(f"downgrades    : {log.downgrade_count}")
    print(f"admission     : {log.admission_ratio:.1%}")
    print(f"decision rate : {log.decisions_per_second:,.0f} /sec")

    # Spot-check the predictions against the discrete-event simulator.
    for point in validate_log(
        specs, manager.mapping, log, max_points=2
    ):
        label = "+".join(app for app, _ in point.residents)
        for app, ratio in sorted(point.ratios.items()):
            print(
                f"record {point.record_index:4d} [{label}] {app}: "
                f"predicted/simulated = {ratio:.2f}"
            )


if __name__ == "__main__":
    main()
