#!/usr/bin/env python3
"""Varying execution times — the paper's future-work extension, working.

Media workloads are data dependent: an I-frame decodes slower than a
B-frame.  This example gives every actor of the paper's Figure-2
applications a distribution instead of a constant:

* ``mu(a)`` generalizes from ``tau/2`` to the mean residual life
  ``E[X^2] / (2 E[X])`` (longer executions are likelier to be hit —
  the inspection paradox), and
* the reference simulator draws each firing's duration from the same
  distribution,

so estimate and measurement stay comparable.

Run with::

    python examples/stochastic_times.py
"""

from __future__ import annotations

import os

from repro import (
    ProbabilisticEstimator,
    SimulationConfig,
    index_mapping,
    simulate,
)
from repro.core.distributions import (
    DiscreteTime,
    DistributionTimeModel,
    UniformTime,
)
from repro.generation.gallery import paper_two_apps

#: CI's examples-bitrot job sets REPRO_EXAMPLES_FAST=1 so every example
#: still executes end to end, just on a shrunken workload.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") == "1"


def main() -> None:
    app_a, app_b = paper_two_apps()
    graphs = [app_a, app_b]
    mapping = index_mapping(graphs)

    # a0 is frame-type dependent (discrete), everything else jitters
    # uniformly +/-30% around its nominal time.
    distributions = {
        ("A", "a0"): DiscreteTime.of([(140, 0.2), (100, 0.5), (70, 0.3)]),
    }
    for graph in graphs:
        for actor in graph.actors:
            key = (graph.name, actor.name)
            if key in distributions:
                continue
            nominal = actor.execution_time
            distributions[key] = UniformTime(0.7 * nominal, 1.3 * nominal)
    time_model = DistributionTimeModel(distributions)

    print("Per-actor mu: constant-time tau/2 vs. mean residual life:")
    for (app, actor), dist in sorted(distributions.items()):
        nominal = next(
            g.execution_time(actor) for g in graphs if g.name == app
        )
        print(
            f"  {app}.{actor}: tau/2 = {nominal / 2:6.1f}   "
            f"E[X^2]/2E[X] = {dist.mean_residual():6.1f}"
        )

    estimator = ProbabilisticEstimator(
        graphs,
        mapping=mapping,
        waiting_model="exact",
        mus=time_model.mus(),
    )
    estimate = estimator.estimate()

    reference = simulate(
        graphs,
        mapping=mapping,
        config=SimulationConfig(
            target_iterations=40 if FAST else 400,
            time_model=time_model,
            seed=7,
        ),
    )

    print("\nContended periods (stochastic execution times):")
    for name in ("A", "B"):
        estimated = estimate.periods[name]
        simulated = reference.period_of(name)
        error = 100 * abs(estimated - simulated) / simulated
        print(
            f"  {name}: estimated {estimated:6.1f}   "
            f"simulated {simulated:6.1f}   error {error:4.1f}%"
        )

    print(
        "\nThe same two-moment summary (P, mu) carries the analysis —"
        "\nno change to the estimator was needed, exactly as the paper"
        "\nclaims in its conclusions."
    )


if __name__ == "__main__":
    main()
