#!/usr/bin/env python3
"""Buffer sizing for a media pipeline.

SDF channels are conceptually unbounded; silicon is not.  This example
sizes the FIFOs of the gallery's media decoders using the classic
reverse-channel capacity model (references [16]/[20] of the paper):

1. measure each channel's reservation footprint under self-timed
   execution (a sufficient, period-preserving capacity),
2. greedily shrink capacities while the period is provably unchanged,
3. show what happens when a budget cuts below the feasible point.

Run with::

    python examples/buffer_sizing.py
"""

from __future__ import annotations

from repro import period
from repro.generation.gallery import h263_decoder, mp3_decoder
from repro.sdf.buffers import (
    buffer_reservation_footprint,
    minimal_capacities_preserving_period,
    with_buffer_capacities,
)
from repro.sdf.liveness import is_live


def size_application(graph) -> None:
    print(f"\n=== {graph.name} (isolation period {period(graph):.0f}) ===")
    footprint = buffer_reservation_footprint(graph)
    minimal = minimal_capacities_preserving_period(graph)

    print(f"{'channel':>14s} {'sufficient':>11s} {'minimal':>8s}")
    for name in sorted(footprint):
        print(f"{name:>14s} {footprint[name]:>11d} {minimal[name]:>8d}")

    total_before = sum(footprint.values())
    total_after = sum(minimal.values())
    print(
        f"total buffer slots: {total_before} -> {total_after} "
        f"({100 * (total_before - total_after) / total_before:.0f}% saved)"
    )

    bounded = with_buffer_capacities(graph, minimal)
    print(
        f"bounded graph period: {period(bounded):.0f} "
        f"(unchanged: {abs(period(bounded) - period(graph)) < 1e-9})"
    )

    # Squeeze one channel below the minimal point to show the cost.
    victim = max(minimal, key=minimal.get)
    if minimal[victim] > 1:
        squeezed = dict(minimal)
        squeezed[victim] -= 1
        candidate = with_buffer_capacities(graph, squeezed)
        if not is_live(candidate):
            print(
                f"shrinking {victim} to {squeezed[victim]} deadlocks "
                "the graph"
            )
        else:
            print(
                f"shrinking {victim} to {squeezed[victim]} slows the "
                f"period to {period(candidate):.0f}"
            )


def main() -> None:
    print(
        "Sizing channel FIFOs so each decoder keeps its throughput "
        "with the least memory."
    )
    for graph in (h263_decoder(), mp3_decoder()):
        size_application(graph)
    print(
        "\nThe reverse-channel ('space token') model turns buffer limits"
        "\ninto ordinary SDF edges, so the same MCR analysis that powers"
        "\nthe contention estimator verifies every sizing decision."
    )


if __name__ == "__main__":
    main()
