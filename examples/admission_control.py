#!/usr/bin/env python3
"""Run-time admission control with the composability algebra.

The paper's Sections 1 and 6: because the analysis is cheap and
incremental (Eq. 6-9), it can gate application starts at run time.  This
example boots a media device, starts features one by one with
throughput requirements, and shows the controller rejecting a feature
that would break an admitted application's guarantee — then admitting
it after the user stops another feature.

Run with::

    python examples/admission_control.py
"""

from __future__ import annotations

from repro import AdmissionController, index_mapping, period
from repro.generation.gallery import media_device_suite


def show(decision, name: str) -> None:
    verdict = "ADMITTED" if decision.admitted else "REJECTED"
    print(f"  {name:>6s}: {verdict} — {decision.reason}")
    for app, estimated in sorted(decision.estimated_periods.items()):
        requirement = decision.required_periods.get(app)
        bound = (
            f" (required <= {requirement:.0f})"
            if requirement is not None
            else ""
        )
        print(f"          Per({app}) ~= {estimated:.0f}{bound}")


def main() -> None:
    graphs = {g.name: g for g in media_device_suite()}
    mapping = index_mapping(list(graphs.values()))
    controller = AdmissionController(mapping)

    print("Isolation periods:")
    for name, graph in graphs.items():
        print(f"  Per({name}) = {period(graph):.0f}")

    # Requirements: each feature tolerates some slowdown over isolation.
    slack = {"h263": 1.8, "mp3": 2.0, "jpeg": 2.5, "modem": 1.6}

    print("\nUser starts video playback (h263), music (mp3), and a "
          "photo viewer (jpeg):")
    for name in ("h263", "mp3", "jpeg"):
        graph = graphs[name]
        decision = controller.request_admission(
            graph, max_period=slack[name] * period(graph)
        )
        show(decision, name)

    print("\nUser starts the data modem — its requirement is tight:")
    modem = graphs["modem"]
    decision = controller.request_admission(
        modem, max_period=slack["modem"] * period(modem)
    )
    show(decision, "modem")

    if not decision.admitted:
        print("\nUser closes the photo viewer and retries the modem:")
        controller.withdraw("jpeg")
        decision = controller.request_admission(
            modem, max_period=slack["modem"] * period(modem)
        )
        show(decision, "modem")

    print(
        f"\nRunning now: {', '.join(controller.admitted_applications)}"
    )
    print(
        "\nEach admission updates one aggregate per processor (Eq. 6/7);"
        "\neach estimate removes one actor from an aggregate (Eq. 8/9) —"
        "\nno resident application is ever re-analysed from scratch."
    )


if __name__ == "__main__":
    main()
