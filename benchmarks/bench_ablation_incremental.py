"""Ablation — incremental strategies vs. full recomputation.

Two independent incrementality levers are measured here:

* the paper's Section 4.2 complexity argument: with the inverse
  operators (Eq. 8/9) an application entering the system costs O(n)
  aggregate updates instead of the O(n^2) full re-analysis the
  second-order approach needs.  The first three benches measure both
  workflows doing the same job — admit the ten applications one by one,
  re-estimating all resident periods after each admission — and check
  they agree on the result.
* the analysis engine's structural caching (cached HSDF expansion,
  warm-started Howard, response-time memo): the last bench runs the same
  multi-model use-case sweep with the engines enabled and with the cold
  stateless path and asserts the engines win by >= 3x without changing a
  single period.
"""

from __future__ import annotations


from conftest import MIN_SPEEDUP, report
from repro.admission.controller import AdmissionController
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.experiments.scalability import run_sweep_speedup
from repro.platform.usecase import UseCase


def _admit_incrementally(suite):
    controller = AdmissionController(suite.mapping)
    periods = {}
    for graph in suite.graphs:
        decision = controller.request_admission(graph)
        assert decision.admitted
        periods = decision.estimated_periods
    return periods


def _recompute_from_scratch(suite):
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model="composability",
    )
    periods = {}
    names = []
    for graph in suite.graphs:
        names.append(graph.name)
        periods = estimator.estimate(UseCase(tuple(names))).periods
    return periods


def test_incremental_admission(benchmark, suite):
    periods = benchmark(lambda: _admit_incrementally(suite))
    assert set(periods) == set(suite.application_names)
    benchmark.extra_info["mean_period"] = round(
        sum(periods.values()) / len(periods), 1
    )


def test_full_recompute_admission(benchmark, suite):
    periods = benchmark(lambda: _recompute_from_scratch(suite))
    assert set(periods) == set(suite.application_names)


def test_incremental_matches_batch(benchmark, suite):
    """The two workflows must agree (up to the (x)-operator's
    second-order associativity error)."""
    def run():
        incremental = _admit_incrementally(suite)
        batch = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="composability",
        ).estimate(UseCase(suite.application_names)).periods
        return incremental, batch

    incremental, batch = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in suite.application_names:
        difference = 100 * abs(
            incremental[name] - batch[name]
        ) / batch[name]
        rows.append(
            [name, f"{incremental[name]:.1f}", f"{batch[name]:.1f}",
             f"{difference:.3f}"]
        )
        assert difference < 2.0, name
    report(
        "ablation_incremental",
        render_table(
            ["App", "Incremental (Eq. 8/9)", "Batch (Eq. 6/7)", "diff %"],
            rows,
            title=(
                "Ablation - incremental admission vs. batch "
                "composability estimate"
            ),
        ),
    )


def test_engine_vs_cold_sweep(benchmark, suite):
    """Analysis-engine ablation on a multi-model use-case sweep.

    Estimates every use-case of the first six applications with two
    waiting models sharing one engine set, and again on the cold
    stateless path (the shared :func:`run_sweep_speedup` harness).  The
    engines must agree to <= 1e-9 relative and clear the speedup
    target — the structural work (expansion, SCCs, cold Howard)
    dominates the cold path and is paid once per sweep here.
    """
    result = benchmark.pedantic(
        lambda: run_sweep_speedup(
            graphs=list(suite.graphs[:6]),
            mapping=suite.mapping,
            methods=("second_order", "composability"),
        ),
        rounds=1,
        iterations=1,
    )

    assert result.max_relative_difference <= 1e-9
    assert result.speedup >= MIN_SPEEDUP, (
        f"engine speedup {result.speedup:.2f}x below {MIN_SPEEDUP}x"
    )
    benchmark.extra_info["cold_ms"] = round(result.cold_seconds * 1e3, 1)
    benchmark.extra_info["engine_ms"] = round(result.warm_seconds * 1e3, 1)
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    benchmark.extra_info["use_cases"] = result.use_case_count
    benchmark.extra_info["estimates"] = result.estimate_count
    report("ablation_engine_sweep", result.render())
