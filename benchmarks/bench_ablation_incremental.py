"""Ablation — incremental composability vs. full recomputation.

Section 4.2's complexity argument: with the inverse operators (Eq. 8/9)
an application entering the system costs O(n) aggregate updates instead
of the O(n^2) full re-analysis the second-order approach needs.  This
bench measures both workflows doing the same job — admit the ten
applications one by one, re-estimating all resident periods after each
admission — and checks they agree on the result.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.admission.controller import AdmissionController
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.platform.usecase import UseCase


def _admit_incrementally(suite):
    controller = AdmissionController(suite.mapping)
    periods = {}
    for graph in suite.graphs:
        decision = controller.request_admission(graph)
        assert decision.admitted
        periods = decision.estimated_periods
    return periods


def _recompute_from_scratch(suite):
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model="composability",
    )
    periods = {}
    names = []
    for graph in suite.graphs:
        names.append(graph.name)
        periods = estimator.estimate(UseCase(tuple(names))).periods
    return periods


def test_incremental_admission(benchmark, suite):
    periods = benchmark(lambda: _admit_incrementally(suite))
    assert set(periods) == set(suite.application_names)
    benchmark.extra_info["mean_period"] = round(
        sum(periods.values()) / len(periods), 1
    )


def test_full_recompute_admission(benchmark, suite):
    periods = benchmark(lambda: _recompute_from_scratch(suite))
    assert set(periods) == set(suite.application_names)


def test_incremental_matches_batch(benchmark, suite):
    """The two workflows must agree (up to the (x)-operator's
    second-order associativity error)."""
    def run():
        incremental = _admit_incrementally(suite)
        batch = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="composability",
        ).estimate(UseCase(suite.application_names)).periods
        return incremental, batch

    incremental, batch = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in suite.application_names:
        difference = 100 * abs(
            incremental[name] - batch[name]
        ) / batch[name]
        rows.append(
            [name, f"{incremental[name]:.1f}", f"{batch[name]:.1f}",
             f"{difference:.3f}"]
        )
        assert difference < 2.0, name
    report(
        "ablation_incremental",
        render_table(
            ["App", "Incremental (Eq. 8/9)", "Batch (Eq. 6/7)", "diff %"],
            rows,
            title=(
                "Ablation - incremental admission vs. batch "
                "composability estimate"
            ),
        ),
    )
