"""Scalability — the paper's headline claim.

Abstract: "The approach scales very well with increasing number of
applications, and can also be applied at run-time for admission
control."  Section 1 motivates it with future platforms running 20
applications (2^20 use-cases).

This bench grows the suite from 2 to 20 applications and measures the
cost of one maximum-contention estimate against one reference
simulation.  Assertions: the estimate stays in the low-millisecond
range even at 20 applications (where exhaustive simulation of 2^20
use-cases would be hopeless), and analysis cost grows far slower than
simulation cost.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.experiments.scalability import run_scalability


def test_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: run_scalability(), rounds=1, iterations=1
    )
    report("scalability", result.render())

    first, last = result.points[0], result.points[-1]
    assert last.applications == 20
    # One analysis of a 20-application use-case stays interactive.
    for method in result.methods:
        assert last.estimation_ms[method] < 500.0, method
    # Analysis cost grows slower than simulation cost as apps pile up.
    for method in result.methods:
        analysis_growth = (
            last.estimation_ms[method] / first.estimation_ms[method]
        )
        simulation_growth = last.simulation_ms / first.simulation_ms
        assert analysis_growth < simulation_growth * 2.0
        benchmark.extra_info[f"{method}_ms_at_20_apps"] = round(
            last.estimation_ms[method], 1
        )
    benchmark.extra_info["simulation_ms_at_20_apps"] = round(
        last.simulation_ms, 1
    )
