"""Scalability — the paper's headline claim.

Abstract: "The approach scales very well with increasing number of
applications, and can also be applied at run-time for admission
control."  Section 1 motivates it with future platforms running 20
applications (2^20 use-cases).

This bench grows the suite from 2 to 20 applications and measures the
cost of one maximum-contention estimate against one reference
simulation.  Assertions: the estimate stays in the low-millisecond
range even at 20 applications (where exhaustive simulation of 2^20
use-cases would be hopeless), and analysis cost grows far slower than
simulation cost.
"""

from __future__ import annotations


from conftest import MIN_SPEEDUP, report
from repro.experiments.scalability import run_scalability, run_sweep_speedup


def test_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: run_scalability(), rounds=1, iterations=1
    )
    report("scalability", result.render())

    last = result.points[-1]
    assert last.applications == 20
    # One analysis of a 20-application use-case stays interactive.
    for method in result.methods:
        assert last.estimation_ms[method] < 500.0, method
    # Analysis stays far cheaper than even ONE reference simulation as
    # apps pile up (the paper's 2^20 argument).  The former ratio-of-
    # growth-rates assertion became meaningless once the incremental
    # engine collapsed the small-N baseline to fractions of a
    # millisecond.
    for method in result.methods:
        assert last.estimation_ms[method] < last.simulation_ms
        benchmark.extra_info[f"{method}_ms_at_20_apps"] = round(
            last.estimation_ms[method], 1
        )
    benchmark.extra_info["simulation_ms_at_20_apps"] = round(
        last.simulation_ms, 1
    )


def test_sweep_speedup(benchmark):
    """The incremental engine on the paper's headline workload.

    Estimating *every* use-case of a device is the claim that justifies
    the probabilistic approach; the analysis engine (cached HSDF
    expansion + warm-started Howard + response-time memo) must make the
    full 2^8-1 sweep at least 3x faster than the seed's cold
    re-expansion path while changing none of the results.
    """
    result = benchmark.pedantic(
        lambda: run_sweep_speedup(application_count=8),
        rounds=1,
        iterations=1,
    )
    report("sweep_speedup", result.render())

    assert result.max_relative_difference <= 1e-9
    assert result.speedup >= MIN_SPEEDUP, (
        f"incremental engine speedup {result.speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x target"
    )
    benchmark.extra_info["cold_ms"] = round(result.cold_seconds * 1e3, 1)
    benchmark.extra_info["engine_ms"] = round(result.warm_seconds * 1e3, 1)
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    benchmark.extra_info["use_cases"] = result.use_case_count
    benchmark.extra_info["max_rel_diff"] = result.max_relative_difference
