"""Array-backend speedup: the vectorized sweep vs. the scalar engines.

The acceptance bar of the backend layer: on the exhaustive 2^8 - 1
use-case sweep of the eight-application paper suite, the NumPy backend
must beat the scalar incremental path (per-use-case Python loops on the
same warm engines — the fastest pre-backend configuration) by
>= ``REPRO_BENCH_MIN_SPEEDUP`` (3x by default) while agreeing to
<= 1e-9 relative on every period and every waiting time.

The vectorized pipeline wins twice: the waiting kernels evaluate whole
``(use-case, actor)`` arrays per processor, and the MCR layer certifies
candidate critical cycles for the entire batch with one Bellman-Ford
pass per application (scalar Howard only runs for the handful of
vectors whose critical cycle was not seen before — the reported
``accepted``/``fallback`` split shows the ratio).
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import MIN_SPEEDUP, SMOKE, report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite

pytest.importorskip("numpy")

#: Exhaustive sweep width: 2^8 - 1 = 255 use-cases (the acceptance
#: configuration); smoke mode shrinks to 2^5 - 1 so CI only proves the
#: bench still runs.
APPLICATIONS = 5 if SMOKE else 8

#: The default waiting model plus the paper's heaviest technique.
MODELS = ("second_order",) if SMOKE else ("second_order", "exact")

#: The registry-shipped contention models (PR 5), benched with seeded
#: priorities/weights so the priority kernel has real work.  Their
#: scalar paths are cheaper than the Eq. 4/5 series (the WRR bound is
#: a plain weighted sum), so the batched win comes mostly from the
#: shared period solver — the bar is 2x by default instead of 3x.
NEW_MODELS = (
    ("priority_preemptive", "priority_preemptive"),
    ("weighted_rr", "weighted_round_robin:A=2,C=3"),
)
NEW_MODEL_MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_NEW_MODELS", "2.0")
)


def _sweep_seconds(
    suite, model: str, backend: str, mapping=None, iterations: int = 1
):
    """Best-of-two exhaustive sweep on a fresh estimator set."""
    best = float("inf")
    results = None
    estimator = None
    for _ in range(1 if SMOKE else 2):
        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=mapping if mapping is not None else suite.mapping,
            waiting_model=model,
            backend=backend,
        )
        started = time.perf_counter()
        results = estimator.sweep_all_sizes(
            samples_per_size=None, iterations=iterations
        )
        best = min(best, time.perf_counter() - started)
    return best, results, estimator


def _max_relative_difference(scalar_results, vector_results) -> float:
    # The 1e-12 denominator floor only absorbs noise around exact
    # zeros (idle actors' waiting times); everywhere else the measure
    # is genuinely relative, even for sub-unit waiting times.
    worst = 0.0
    for scalar, vector in zip(scalar_results, vector_results):
        assert scalar.use_case == vector.use_case
        for app, period in scalar.periods.items():
            worst = max(
                worst,
                abs(period - vector.periods[app]) / abs(period),
            )
        for key, waiting in scalar.waiting_times.items():
            worst = max(
                worst,
                abs(waiting - vector.waiting_times[key])
                / (abs(waiting) + 1e-12),
            )
    return worst


@pytest.mark.parametrize("model", MODELS)
def test_backend_sweep_speedup(benchmark, model):
    """NumPy backend >= 3x over the scalar incremental sweep."""
    suite = paper_benchmark_suite(application_count=APPLICATIONS)

    def run():
        scalar_seconds, scalar_results, _ = _sweep_seconds(
            suite, model, "python"
        )
        vector_seconds, vector_results, estimator = _sweep_seconds(
            suite, model, "numpy"
        )
        return (
            scalar_seconds,
            vector_seconds,
            scalar_results,
            vector_results,
            estimator,
        )

    (
        scalar_seconds,
        vector_seconds,
        scalar_results,
        vector_results,
        estimator,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    assert len(scalar_results) == 2**APPLICATIONS - 1
    worst = _max_relative_difference(scalar_results, vector_results)
    assert worst <= 1e-9, (
        f"backend parity violated: worst relative difference {worst:.3e}"
    )
    speedup = scalar_seconds / vector_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"numpy backend speedup {speedup:.2f}x below {MIN_SPEEDUP}x "
        f"(scalar {scalar_seconds * 1e3:.1f} ms, "
        f"numpy {vector_seconds * 1e3:.1f} ms)"
    )

    accepted = sum(
        engine._solver.batch_accepted
        for engine in estimator.engines.values()
    )
    fallbacks = sum(
        engine._solver.batch_fallbacks
        for engine in estimator.engines.values()
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["use_cases"] = len(scalar_results)
    benchmark.extra_info["certified"] = accepted
    benchmark.extra_info["scalar_fallbacks"] = fallbacks
    report(
        f"backend_speedup_{model}",
        render_table(
            ["quantity", "value"],
            [
                ["use-cases (2^N - 1)", len(scalar_results)],
                ["scalar incremental", f"{scalar_seconds * 1e3:.1f} ms"],
                ["numpy backend", f"{vector_seconds * 1e3:.1f} ms"],
                ["speedup", f"{speedup:.2f}x"],
                ["worst relative difference", f"{worst:.2e}"],
                ["batch-certified solves", accepted],
                ["scalar fallback solves", fallbacks],
            ],
            title=(
                f"Array backend - exhaustive {APPLICATIONS}-app sweep "
                f"({model})"
            ),
        ),
    )


@pytest.mark.parametrize("label,model", NEW_MODELS)
def test_new_model_backend_speedup(benchmark, label, model):
    """The PR-5 contention models ride the batched pipeline too.

    Parity <= 1e-9 against the scalar loops (the waiting kernels are
    bit-identical by construction; the period solver contributes the
    only float drift) and >= 2x end-to-end on the exhaustive sweep.
    """
    suite = paper_benchmark_suite(application_count=APPLICATIONS)
    mapping = suite.mapping.with_priorities(
        {
            name: index % 3
            for index, name in enumerate(suite.application_names)
        }
    )

    def run():
        scalar_seconds, scalar_results, _ = _sweep_seconds(
            suite, model, "python", mapping=mapping
        )
        vector_seconds, vector_results, _ = _sweep_seconds(
            suite, model, "numpy", mapping=mapping
        )
        return (
            scalar_seconds,
            vector_seconds,
            scalar_results,
            vector_results,
        )

    scalar_seconds, vector_seconds, scalar_results, vector_results = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    worst = _max_relative_difference(scalar_results, vector_results)
    assert worst <= 1e-9, (
        f"backend parity violated for {model}: worst relative "
        f"difference {worst:.3e}"
    )
    bar = NEW_MODEL_MIN_SPEEDUP
    speedup = scalar_seconds / vector_seconds
    assert speedup >= bar, (
        f"{model} numpy speedup {speedup:.2f}x below {bar}x "
        f"(scalar {scalar_seconds * 1e3:.1f} ms, "
        f"numpy {vector_seconds * 1e3:.1f} ms)"
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    report(
        f"backend_speedup_{label}",
        render_table(
            ["quantity", "value"],
            [
                ["use-cases (2^N - 1)", len(scalar_results)],
                ["scalar incremental", f"{scalar_seconds * 1e3:.1f} ms"],
                ["numpy backend", f"{vector_seconds * 1e3:.1f} ms"],
                ["speedup", f"{speedup:.2f}x"],
                ["worst relative difference", f"{worst:.2e}"],
            ],
            title=(
                f"Array backend - exhaustive {APPLICATIONS}-app sweep "
                f"({model})"
            ),
        ),
    )


def test_batch_certification_dominates(benchmark):
    """Most period queries are answered by batch certification.

    The candidate-cycle set saturates after a handful of scalar solves;
    from then on every use-case's period is one certified candidate.
    The bench pins that behaviour: scalar fallbacks stay below 20% of
    the total queries on the default model.
    """
    suite = paper_benchmark_suite(application_count=APPLICATIONS)

    def run():
        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="second_order",
            backend="numpy",
        )
        estimator.sweep_all_sizes(samples_per_size=None)
        return estimator

    estimator = benchmark.pedantic(run, rounds=1, iterations=1)
    accepted = sum(
        engine._solver.batch_accepted
        for engine in estimator.engines.values()
    )
    fallbacks = sum(
        engine._solver.batch_fallbacks
        for engine in estimator.engines.values()
    )
    assert accepted + fallbacks > 0
    fallback_share = fallbacks / (accepted + fallbacks)
    assert fallback_share <= 0.2, (
        f"scalar fallbacks {fallbacks}/{accepted + fallbacks} "
        f"({fallback_share:.0%}) exceed 20%"
    )
    benchmark.extra_info["certified"] = accepted
    benchmark.extra_info["scalar_fallbacks"] = fallbacks


#: Batched fixed-point workload: the refinement loop multiplies the
#: scalar cost by the pass count, while the batched mask pays only for
#: still-moving rows — the win grows with the batch, so the bench uses
#: a 2^6 - 1 sweep (2^4 - 1 in smoke mode).
FIXED_POINT_APPLICATIONS = 4 if SMOKE else 6
FIXED_POINT_ITERATIONS = 3 if SMOKE else 4


def test_batched_fixed_point_speedup(benchmark):
    """Fixed-point refinement (iterations > 1) stays batched.

    Before this optimisation ``estimate_many(iterations > 1)`` fell
    back to the scalar per-use-case loop; now the whole batch iterates
    under a per-row convergence mask (converged rows freeze, active
    rows refine).  The bar is the backend-layer acceptance speedup
    (>= 3x by default) at <= 1e-9 relative parity — including the
    per-row ``iterations_used``, which must match the scalar early
    break exactly.
    """
    suite = paper_benchmark_suite(
        application_count=FIXED_POINT_APPLICATIONS
    )

    def run():
        scalar_seconds, scalar_results, _ = _sweep_seconds(
            suite, "second_order", "python",
            iterations=FIXED_POINT_ITERATIONS,
        )
        vector_seconds, vector_results, _ = _sweep_seconds(
            suite, "second_order", "numpy",
            iterations=FIXED_POINT_ITERATIONS,
        )
        return (
            scalar_seconds,
            vector_seconds,
            scalar_results,
            vector_results,
        )

    scalar_seconds, vector_seconds, scalar_results, vector_results = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    assert len(scalar_results) == 2**FIXED_POINT_APPLICATIONS - 1
    assert [r.iterations_used for r in scalar_results] == [
        r.iterations_used for r in vector_results
    ], "per-row iteration counts diverged from the scalar early break"
    worst = _max_relative_difference(scalar_results, vector_results)
    assert worst <= 1e-9, (
        f"fixed-point parity violated: worst relative difference "
        f"{worst:.3e}"
    )
    speedup = scalar_seconds / vector_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"batched fixed-point speedup {speedup:.2f}x below "
        f"{MIN_SPEEDUP}x (scalar {scalar_seconds * 1e3:.1f} ms, "
        f"numpy {vector_seconds * 1e3:.1f} ms)"
    )
    refined = sum(
        1 for r in vector_results if r.iterations_used > 2
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["use_cases"] = len(scalar_results)
    benchmark.extra_info["iterations"] = FIXED_POINT_ITERATIONS
    report(
        "backend_fixed_point_speedup",
        render_table(
            ["quantity", "value"],
            [
                ["use-cases (2^N - 1)", len(scalar_results)],
                ["fixed-point passes", FIXED_POINT_ITERATIONS],
                ["rows refining past pass 2", refined],
                ["scalar loop", f"{scalar_seconds * 1e3:.1f} ms"],
                ["batched mask", f"{vector_seconds * 1e3:.1f} ms"],
                ["speedup", f"{speedup:.2f}x"],
                ["worst relative difference", f"{worst:.2e}"],
            ],
            title=(
                f"Batched fixed-point - exhaustive "
                f"{FIXED_POINT_APPLICATIONS}-app sweep, "
                f"{FIXED_POINT_ITERATIONS} passes (second_order)"
            ),
        ),
    )


MAX_TELEMETRY_OVERHEAD_PERCENT = float(
    os.environ.get("REPRO_BENCH_MAX_TELEMETRY_OVERHEAD_PERCENT", "2.0")
)


def test_telemetry_overhead(benchmark):
    """Telemetry adds < 2% to the exhaustive sweep when enabled.

    The instrumentation's true cost (a handful of counter increments
    and one span per batched solve) is far below the noise of a shared
    machine, so the measurement is built to reject noise rather than
    average it:

    * instruments bind at construction, so each arm uses an estimator
      built under the mode it measures;
    * arms interleave per size-batch (milliseconds apart) so slow
      host epochs hit both arms alike, with the arm order flipped on
      every batch;
    * the whole comparison repeats in independent trials and the
      *minimum* overhead across trials is asserted — a floor estimate
      that stays near zero under heavy-tailed scheduler noise yet
      rises with any systematic instrumentation cost;
    * the enabled arm must actually have recorded metrics, so a
      regression that silently drops instrumentation cannot pass as
      zero overhead.
    """
    from repro.platform.usecase import all_use_cases
    from repro.telemetry import (
        get_registry,
        get_tracer,
        set_enabled,
        telemetry_enabled,
    )

    suite = paper_benchmark_suite(application_count=APPLICATIONS)
    by_size = {}
    for use_case in all_use_cases(suite.application_names):
        by_size.setdefault(len(use_case.applications), []).append(use_case)
    batches = [by_size[size] for size in sorted(by_size)]
    registry = get_registry()
    tracer = get_tracer()
    trials = 1 if SMOKE else 5
    reps = 2 if SMOKE else 4

    def fresh():
        return ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="second_order",
            backend="numpy",
        )

    def trial() -> float:
        import gc

        total = {False: 0.0, True: 0.0}
        for rep in range(reps):
            estimators = {}
            for mode in (False, True):
                set_enabled(mode)
                estimators[mode] = fresh()
            # Collector cycles are deterministic in when they fire, and
            # the enabled arm allocates more — left running, whole gen2
            # pauses land inside its timed regions and read as a fake
            # 10-20% overhead.  Pay GC outside the timed windows.
            gc.collect()
            gc.disable()
            try:
                for index, batch in enumerate(batches):
                    order = (
                        (False, True)
                        if (index + rep) % 2 == 0
                        else (True, False)
                    )
                    for mode in order:
                        set_enabled(mode)
                        started = time.perf_counter()
                        estimators[mode].estimate_many(batch)
                        total[mode] += time.perf_counter() - started
            finally:
                gc.enable()
            tracer.clear()
        return 100.0 * (total[True] / total[False] - 1.0)

    def run():
        try:
            set_enabled(False)
            warm = fresh()
            for batch in batches:  # untimed warmup: caches, lazy imports
                warm.estimate_many(batch)
            overheads = [trial() for _ in range(trials)]
            set_enabled(True)
            recorded = registry.value("repro_estimator_use_cases_total")
        finally:
            set_enabled(telemetry_enabled())
        return overheads, recorded

    overheads, recorded = benchmark.pedantic(run, rounds=1, iterations=1)

    use_cases = 2**APPLICATIONS - 1
    assert recorded and recorded >= use_cases, (
        "enabled mode recorded no estimator metrics - the overhead "
        "comparison would be vacuous"
    )
    overhead = min(overheads)
    assert overhead < MAX_TELEMETRY_OVERHEAD_PERCENT, (
        f"telemetry overhead floor {overhead:.2f}% above "
        f"{MAX_TELEMETRY_OVERHEAD_PERCENT}% across {trials} trials "
        f"({', '.join(f'{value:+.2f}%' for value in overheads)})"
    )
    benchmark.extra_info["overhead_percent"] = round(overhead, 2)
    report(
        "telemetry_overhead",
        render_table(
            ["quantity", "value"],
            [
                ["use-cases (2^N - 1)", use_cases],
                ["trials x reps", f"{trials} x {reps}"],
                ["per-trial overhead", " ".join(f"{v:+.2f}%" for v in overheads)],
                ["overhead floor", f"{overhead:+.2f}%"],
                ["estimator use-cases recorded", int(recorded)],
            ],
            title=(
                f"Telemetry overhead - exhaustive {APPLICATIONS}-app "
                "sweep (second_order, numpy)"
            ),
        ),
    )
