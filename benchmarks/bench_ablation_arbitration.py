"""Ablation — arbitration policy of the shared processors.

The paper's waiting model assumes arrival-order service with random
arrival phases (its queue analysis puts every present actor at the head
with equal probability).  The reference simulator implements that as
FCFS; this ablation re-simulates the maximum-contention use-case under
round-robin and static-priority arbitration.

Findings encoded in the assertions:

* FCFS and round-robin are fair — the FCFS-calibrated estimate stays in
  its usual accuracy band for both;
* static priority is *not starvation-free* on non-preemptive shared
  processors: high-priority applications can ping-pong a node so a
  low-priority actor is never granted, the starved application stops
  making progress, and the run only ends at its horizon.  This is why
  the paper analyses policies with fairness guarantees — naive static
  order is not a usable baseline at maximum contention.
"""

from __future__ import annotations


from conftest import report
from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import AnalysisError
from repro.experiments.reporting import render_table
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator


def _simulate(suite, config: SimulationConfig):
    return Simulator(
        list(suite.graphs), mapping=suite.mapping, config=config
    ).run()


def test_ablation_arbitration(benchmark, suite):
    use_case = UseCase(suite.application_names)
    estimate = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model="second_order",
    ).estimate(use_case)

    def run():
        measurements = {}
        fcfs_result = _simulate(
            suite,
            SimulationConfig(target_iterations=100, arbitration="fcfs"),
        )
        measurements["fcfs"] = {
            name: fcfs_result.period_of(name)
            for name in suite.application_names
        }
        rr_result = _simulate(
            suite,
            SimulationConfig(
                target_iterations=100, arbitration="round_robin"
            ),
        )
        measurements["round_robin"] = {
            name: rr_result.period_of(name)
            for name in suite.application_names
        }
        # Static priority may starve low-priority applications, so it
        # runs against a horizon; a starved application then has too
        # few iterations to measure and surfaces as an AnalysisError.
        starved = False
        try:
            priority_result = _simulate(
                suite,
                SimulationConfig(
                    target_iterations=None,
                    horizon=20.0 * fcfs_result.end_time,
                    arbitration="priority",
                ),
            )
            measurements["priority"] = {
                name: priority_result.period_of(name)
                for name in suite.application_names
            }
        except AnalysisError:
            starved = True
        return measurements, starved

    measurements, priority_starved = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    summary = {}
    for policy, periods in measurements.items():
        errors = [
            100
            * abs(estimate.periods[name] - periods[name])
            / periods[name]
            for name in suite.application_names
        ]
        mean_error = sum(errors) / len(errors)
        summary[policy] = mean_error
        rows.append([policy, f"{mean_error:.1f}", f"{max(errors):.1f}"])
    if priority_starved:
        rows.append(["priority", "starved", "starved"])
    report(
        "ablation_arbitration",
        render_table(
            ["Arbitration", "mean err %", "max err %"],
            rows,
            title=(
                "Ablation - estimate accuracy vs. simulated arbitration "
                "policy (all 10 applications; 'starved' = a low-priority "
                "application made no measurable progress)"
            ),
        ),
    )

    assert summary["fcfs"] < 40.0
    assert summary["round_robin"] < 40.0
    benchmark.extra_info["priority_starved"] = priority_starved
    for policy, mean_error in summary.items():
        benchmark.extra_info[f"{policy}_mean_err_pct"] = round(
            mean_error, 1
        )
