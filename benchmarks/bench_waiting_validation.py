"""Waiting-time validation — estimated vs. observed queueing delay.

The paper validates *periods*; the library's simulator additionally
records every actor's actual queueing delay, so the intermediate
quantity — the expected waiting time the whole method revolves around —
can be validated directly.  This bench compares, for the
maximum-contention use-case, each actor's estimated waiting (exact
Eq. 4) with its observed mean waiting, and reports the most contended
actors.

The per-actor agreement is *not* expected to be tight: resource
contention couples the supposedly independent arrivals (the paper's own
Section 3.1 caveat), and FCFS service correlates queue states across
actors.  The assertions therefore target aggregate mass and rank
correlation rather than pointwise errors.
"""

from __future__ import annotations


from conftest import report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator


def test_waiting_validation(benchmark, suite):
    use_case = UseCase(suite.application_names)

    def run():
        simulation = Simulator(
            list(suite.graphs),
            mapping=suite.mapping,
            config=SimulationConfig(target_iterations=150),
        ).run()
        estimate = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="exact",
        ).estimate(use_case)
        return simulation, estimate

    simulation, estimate = benchmark.pedantic(run, rounds=1, iterations=1)

    records = []
    for key, statistics in simulation.waiting.items():
        records.append(
            (
                key,
                estimate.waiting_times[key],
                statistics.mean,
                statistics.maximum,
            )
        )
    records.sort(key=lambda r: -r[2])

    rows = [
        [
            f"{app}.{actor}",
            f"{estimated:.1f}",
            f"{observed_mean:.1f}",
            f"{observed_max:.1f}",
        ]
        for (app, actor), estimated, observed_mean, observed_max in records[
            :12
        ]
    ]
    report(
        "waiting_validation",
        render_table(
            ["actor", "estimated E[wait]", "observed mean", "observed max"],
            rows,
            title=(
                "Waiting-time validation - twelve most contended actors "
                "(all 10 applications)"
            ),
        ),
    )

    estimated_total = sum(r[1] for r in records)
    observed_total = sum(r[2] for r in records)
    ratio = estimated_total / observed_total
    assert 1 / 3 < ratio < 3, (estimated_total, observed_total)

    # Rank agreement: of the ten actors with the highest observed
    # waiting, a clear majority must also rank in the estimated top 15.
    top_observed = {r[0] for r in records[:10]}
    by_estimate = sorted(records, key=lambda r: -r[1])
    top_estimated = {r[0] for r in by_estimate[:15]}
    overlap = len(top_observed & top_estimated)
    assert overlap >= 6, overlap

    benchmark.extra_info["estimated_over_observed"] = round(ratio, 2)
    benchmark.extra_info["top10_overlap"] = overlap
