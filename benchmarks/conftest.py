"""Shared infrastructure for the reproduction benches.

* One session-scoped use-case sweep feeds Table 1, Figure 6 and the
  timing comparison (the paper derives all three from the same runs).
* Every bench registers its rendered table through ``report``; a
  ``pytest_terminal_summary`` hook prints them after the benchmark
  results (so ``pytest benchmarks/ --benchmark-only`` output contains
  the reproduced artefacts verbatim) and persists them under
  ``benchmarks/results/``.
* Set ``REPRO_BENCH_EXHAUSTIVE=1`` to sweep all 2^10 use-cases like the
  paper (minutes instead of seconds).
* Set ``REPRO_BENCH_SMOKE=1`` to shrink the shared suite and sweep to
  CI-smoke size (4 applications, 2 samples per size, short
  simulations); the ``run_smoke.py`` driver uses this to catch bench
  bitrot on every PR without paying for full reproductions.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.experiments.runner import SweepConfig, SweepResult, run_sweep
from repro.experiments.setup import BenchmarkSuite, paper_benchmark_suite

RESULTS_DIR = Path(__file__).parent / "results"

#: Cold-vs-engine speedup the incremental-analysis benches must clear.
#: 3x locally (the acceptance target); CI smoke runs override via the
#: environment because one-shot wall-clock ratios are noisy on shared
#: runners.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Multiprocess-solver-pool throughput bar: worker-mode serving must
#: beat the single-solver-thread server by this factor on the
#: exhaustive query set.  2x locally (the acceptance target); CI
#: overrides — shared 2-vCPU runners cannot promise real parallelism.
MIN_SPEEDUP_POOL = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP_POOL", "2.0"))

#: Router micro-batching bar: coalescing same-gallery queries into one
#: framed ``estimate_batch`` per shard hop must lift fleet throughput
#: by this factor on the fan-in storm.  1.3x locally (the acceptance
#: target); CI overrides for shared-runner noise.
MIN_SPEEDUP_ROUTER_BATCH = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_ROUTER_BATCH", "1.3")
)

#: CI smoke mode: one fast case per bench file on a scaled-down setup.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

_REPORTS: List[Tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Register a rendered artefact for terminal summary + persistence."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def suite() -> BenchmarkSuite:
    """The paper-scale ten-application benchmark suite."""
    return paper_benchmark_suite(
        application_count=4 if SMOKE else 10
    )


@pytest.fixture(scope="session")
def sweep_config() -> SweepConfig:
    exhaustive = os.environ.get("REPRO_BENCH_EXHAUSTIVE", "") == "1"
    return SweepConfig(
        methods=(
            "worst_case",
            "composability",
            "fourth_order",
            "second_order",
        ),
        target_iterations=20 if SMOKE else 100,
        samples_per_size=2 if SMOKE else (None if exhaustive else 20),
        seed=1,
    )


@pytest.fixture(scope="session")
def sweep(suite: BenchmarkSuite, sweep_config: SweepConfig) -> SweepResult:
    """The shared simulate-and-estimate sweep (runs once per session)."""
    return run_sweep(suite, config=sweep_config)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artefacts")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
