"""Figure 6 — period inaccuracy vs. number of concurrent applications.

Regenerates the paper's Figure 6 from the shared sweep: mean absolute
period inaccuracy per use-case cardinality (1..10), one series per
technique.

Shape assertions:
* every technique is exact with one application (no contention);
* the worst-case curve deteriorates with application count and ends far
  above every probabilistic curve (paper: ~160% vs ~14%);
* composability tracks second order closely (the paper observes they
  are "almost exactly equal").
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.experiments.figure6 import run_figure6


def test_figure6(benchmark, suite, sweep):
    result = benchmark.pedantic(
        lambda: run_figure6(suite, sweep=sweep),
        rounds=1,
        iterations=1,
    )
    report("figure6", result.render())

    assert result.sizes[0] == 1
    for method, series in result.series.items():
        assert series[0] == pytest.approx(0.0, abs=1e-6), method

    worst = result.series["worst_case"]
    second = result.series["second_order"]
    fourth = result.series["fourth_order"]
    composed = result.series["composability"]

    # Worst case deteriorates: the final point dominates its start and
    # every probabilistic technique's final point by a wide margin.
    assert worst[-1] > 3.0 * max(second[-1], fourth[-1], composed[-1])
    assert worst[-1] > worst[1]
    # Composability hugs second order.  The paper calls them "almost
    # exactly equal"; they differ only in +P^2/4 cross terms, which at
    # our (hotter) operating point open up a few percentage points.
    for a, b in zip(composed, second):
        assert abs(a - b) < 10.0
    # Probabilistic techniques stay in the low tens of percent.
    for series in (second, fourth, composed):
        assert max(series) < 40.0

    benchmark.extra_info["worst_case_at_10_apps_pct"] = round(worst[-1], 1)
    benchmark.extra_info["second_order_at_10_apps_pct"] = round(
        second[-1], 1
    )
    benchmark.extra_info["fourth_order_at_10_apps_pct"] = round(
        fourth[-1], 1
    )
