#!/usr/bin/env python
"""Bench bitrot smoke: collect every bench file, run one fast case each.

CI cannot afford the full reproductions, but bench files rot silently
when APIs drift — imports break, fixtures disappear, renamed helpers
linger.  This driver catches that on every PR:

1. ``pytest --collect-only`` on each ``bench_*.py`` (import/fixture
   bitrot fails the collection);
2. one fast case per file — the first collected test, unless the file
   has a designated fast case in :data:`FAST_CASE` — executed with
   ``--benchmark-disable`` under ``REPRO_BENCH_SMOKE=1`` (the conftest
   shrinks the shared suite/sweep fixtures accordingly).

Usage::

    REPRO_BENCH_SMOKE=1 python benchmarks/run_smoke.py
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).parent

#: Files whose *first* collected test is expensive even at smoke scale
#: (e.g. it builds its own 20-application suite): run this case instead.
FAST_CASE = {
    "bench_scalability.py": "test_sweep_speedup",
    "bench_runtime.py": "test_stored_sweep_is_pure_cache_hits",
    # One-shot client/server wall-clock ratios are pure noise at smoke
    # scale; the cache-storm case is deterministic and fast.
    "bench_service.py": "test_service_cache_turns_repeats_into_hits",
}


def main() -> int:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if not files:
        print("no bench files found", file=sys.stderr)
        return 1

    selected: list[str] = []
    for path in files:
        collected = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(path),
                "--collect-only",
                "-q",
            ],
            capture_output=True,
            text=True,
            cwd=BENCH_DIR.parent,
        )
        if collected.returncode != 0:
            sys.stdout.write(collected.stdout)
            sys.stderr.write(collected.stderr)
            print(f"collection failed for {path.name}", file=sys.stderr)
            return 1
        test_ids = [
            line.strip()
            for line in collected.stdout.splitlines()
            if "::" in line
        ]
        if not test_ids:
            print(f"no tests collected in {path.name}", file=sys.stderr)
            return 1
        wanted = FAST_CASE.get(path.name)
        if wanted is not None:
            matches = [t for t in test_ids if wanted in t]
            if not matches:
                print(
                    f"{path.name}: fast case {wanted!r} not found",
                    file=sys.stderr,
                )
                return 1
            selected.append(matches[0])
        else:
            selected.append(test_ids[0])
        print(f"{path.name}: collected {len(test_ids)}, "
              f"running {selected[-1]}")

    return subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            *selected,
            "-q",
            "--benchmark-disable",
        ],
        cwd=BENCH_DIR.parent,
    )


if __name__ == "__main__":
    sys.exit(main())
