"""Timing — the 23-hours-vs-10-minutes claim of Section 5.

Two measurements:

* ``test_timing_sweep_ratio`` — aggregates the wall-clock recorded in
  the shared sweep: total simulation seconds vs. total analysis seconds
  per technique, and asserts analysis wins by a wide margin.
* ``test_estimation_full_use_case`` / ``test_simulation_full_use_case``
  — pytest-benchmark timings of one maximum-contention use-case for
  direct comparison in the benchmark table.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.timing import run_timing
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator


def test_timing_sweep_ratio(benchmark, suite, sweep):
    result = benchmark.pedantic(
        lambda: run_timing(suite, sweep=sweep), rounds=1, iterations=1
    )
    report("timing", result.render())

    for method in sweep.methods:
        speedup = result.speedup(method)
        # The paper reports ~140x (23 h vs 10 min) on 500k-cycle
        # simulations; our scaled-down simulations are shorter, so the
        # ratio is smaller but analysis must still win clearly.
        assert speedup > 5.0, (method, speedup)
        benchmark.extra_info[f"speedup_{method}"] = round(speedup, 1)
    benchmark.extra_info["simulation_s_per_use_case"] = round(
        result.simulation_seconds_per_use_case, 4
    )


def test_estimation_full_use_case(benchmark, suite):
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model="second_order",
    )
    use_case = UseCase(suite.application_names)
    result = benchmark(lambda: estimator.estimate(use_case))
    assert result.periods


def test_simulation_full_use_case(benchmark, suite):
    def run():
        return Simulator(
            list(suite.graphs),
            mapping=suite.mapping,
            config=SimulationConfig(target_iterations=100),
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.metrics
