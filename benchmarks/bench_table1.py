"""Table 1 — mean absolute inaccuracy of each technique vs. simulation.

Regenerates the paper's Table 1 from the shared use-case sweep.  The
benchmarked quantity is the summarization itself (the sweep is shared
session state); the reproduced numbers are attached as extra_info and
rendered side by side with the paper's values.

Shape assertions:
* the worst-case approach is the clear loser on both metrics (the paper
  reports 49%/112% against <5%/<14% for the probabilistic family);
* every probabilistic technique keeps throughput inaccuracy under 25%
  and period inaccuracy under 35%;
* throughput and period inaccuracies are positive (estimates are not
  magically exact).
"""

from __future__ import annotations


from conftest import report
from repro.experiments.table1 import run_table1


def test_table1(benchmark, suite, sweep):
    result = benchmark.pedantic(
        lambda: run_table1(suite, sweep=sweep),
        rounds=1,
        iterations=1,
    )
    report("table1", result.render())

    worst = result.summary_of("worst_case")
    probabilistic = [
        result.summary_of(m)
        for m in ("composability", "fourth_order", "second_order")
    ]

    for summary in probabilistic:
        assert worst.period_percent > 2.0 * summary.period_percent, (
            summary.method
        )
        assert worst.throughput_percent > 2.0 * summary.throughput_percent
        assert summary.throughput_percent < 25.0
        assert summary.period_percent < 35.0

    for summary in (worst, *probabilistic):
        benchmark.extra_info[f"{summary.method}_period_pct"] = round(
            summary.period_percent, 2
        )
        benchmark.extra_info[f"{summary.method}_throughput_pct"] = round(
            summary.throughput_percent, 2
        )
    benchmark.extra_info["use_cases"] = result.use_case_count
