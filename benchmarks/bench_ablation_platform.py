"""Ablation — platform width (contention density).

The paper's setup gives every application's i-th actor its own
processor (ten processors for 8-10-actor applications).  Narrowing the
platform with a modulo mapping stacks more actors per node, raising
blocking probabilities and testing the estimator deeper into
saturation.  This bench sweeps the processor count and reports the
simulated period inflation and the estimation error at each width.

Expected shape: inflation grows as the platform narrows; the estimator
degrades gracefully (errors grow with saturation but stay bounded).
"""

from __future__ import annotations


from conftest import report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.mapping import modulo_mapping
from repro.platform.platform import Platform
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator

_WIDTHS = (10, 8, 6, 5)
_APPLICATIONS = 5


def _run_width(graphs, width: int):
    platform = Platform.homogeneous(width)
    mapping = modulo_mapping(graphs, platform)
    use_case = UseCase(tuple(g.name for g in graphs))
    simulation = Simulator(
        graphs,
        mapping=mapping,
        config=SimulationConfig(target_iterations=100),
    ).run()
    estimate = ProbabilisticEstimator(
        graphs, mapping=mapping, waiting_model="second_order"
    ).estimate(use_case)
    errors = []
    inflations = []
    for graph in graphs:
        simulated = simulation.period_of(graph.name)
        estimated = estimate.periods[graph.name]
        errors.append(100 * abs(estimated - simulated) / simulated)
        inflations.append(
            simulated / estimate.isolation_periods[graph.name]
        )
    return (
        sum(errors) / len(errors),
        sum(inflations) / len(inflations),
    )


def test_ablation_platform_width(benchmark):
    suite = paper_benchmark_suite(application_count=_APPLICATIONS)
    graphs = list(suite.graphs)

    def run():
        return {width: _run_width(graphs, width) for width in _WIDTHS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [str(width), f"{inflation:.2f}", f"{error:.1f}"]
        for width, (error, inflation) in results.items()
    ]
    report(
        "ablation_platform",
        render_table(
            ["Processors", "Mean period inflation", "Mean est. error %"],
            rows,
            title=(
                "Ablation - platform width (5 applications, modulo "
                "mapping, maximum contention)"
            ),
        ),
    )

    # Narrower platforms contend more: inflation at the narrowest width
    # exceeds the paper-style ten-processor configuration.
    assert results[_WIDTHS[-1]][1] > results[_WIDTHS[0]][1]
    for width, (error, inflation) in results.items():
        benchmark.extra_info[f"width{width}_error_pct"] = round(error, 1)
        benchmark.extra_info[f"width{width}_inflation"] = round(
            inflation, 2
        )
