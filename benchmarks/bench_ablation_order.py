"""Ablation — approximation order of Eq. 5.

The paper evaluates m = 2 and m = 4 and argues higher orders trade
complexity for accuracy.  This bench sweeps m = 1..6 plus the exact
formula over the shared sweep's use-cases (estimation only; simulation
references are reused) and reports the accuracy/latency frontier.

Expected shape: period inaccuracy decreases (weakly) from m=1 to the
exact formula and saturates quickly — m=2 already captures most of the
benefit, which is the paper's justification for shipping the cheap
variants.
"""

from __future__ import annotations

from typing import Dict, List


from conftest import report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.accuracy import mean_absolute_percentage_error
from repro.experiments.reporting import render_table

_ORDERS = ["order:1", "order:2", "order:3", "order:4", "order:6", "exact"]


def _inaccuracy_of_model(suite, sweep, model: str) -> float:
    estimator = ProbabilisticEstimator(
        list(suite.graphs), mapping=suite.mapping, waiting_model=model
    )
    pairs = []
    for record in sweep.records:
        estimate = estimator.estimate(record.use_case)
        for name, simulated in record.simulated.items():
            pairs.append((estimate.periods[name], simulated))
    return mean_absolute_percentage_error(pairs)


def test_ablation_approximation_order(benchmark, suite, sweep):
    def run() -> Dict[str, float]:
        return {
            model: _inaccuracy_of_model(suite, sweep, model)
            for model in _ORDERS
        }

    inaccuracies = benchmark.pedantic(run, rounds=1, iterations=1)

    rows: List[List[object]] = [
        [model, f"{value:.2f}"] for model, value in inaccuracies.items()
    ]
    report(
        "ablation_order",
        render_table(
            ["Waiting model", "Period inaccuracy %"],
            rows,
            title="Ablation - Eq. 5 truncation order (vs. simulation)",
        ),
    )

    # Order 1 ignores queueing entirely and must be the worst of the
    # family; the exact formula must not lose to order 2 by more than
    # noise; everything past order 2 sits within a tight band.
    assert inaccuracies["order:1"] >= inaccuracies["order:2"] - 0.5
    assert inaccuracies["exact"] <= inaccuracies["order:2"] + 1.0
    spread = max(
        inaccuracies[m] for m in ("order:2", "order:3", "order:4", "order:6")
    ) - min(
        inaccuracies[m] for m in ("order:2", "order:3", "order:4", "order:6")
    )
    assert spread < 10.0
    for model, value in inaccuracies.items():
        benchmark.extra_info[f"{model}_period_pct"] = round(value, 2)
