"""Ablation — single-pass Fig. 4 vs. fixed-point iteration.

The paper runs its algorithm once, deriving blocking probabilities from
*isolation* periods.  A natural "improvement" is iterating to a fixed
point: re-derive P from the estimated contended periods and repeat.

The ablation shows why the paper does not do that: contended periods
are longer, so re-derived utilizations (and with them the predicted
waiting) collapse, and the fixed point lands far *below* simulation —
a strongly optimistic estimate (signed bias around -25% on the
benchmark suite versus +2% for the single pass).  Isolation-period
probabilities are the right operating point: while an actor waits it
still *occupies the queue*, so its pressure on the node does not drop
the way the post-contention utilization suggests.

Assertions encode that finding: the single pass has the lowest absolute
inaccuracy and a small positive (conservative) bias, while every
iterated variant is biased optimistic.
"""

from __future__ import annotations

from typing import Dict


from conftest import report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.accuracy import mean_absolute_percentage_error
from repro.experiments.reporting import render_table

_PASSES = (1, 2, 5, 10)


def _inaccuracy(suite, sweep, iterations: int) -> Dict[str, float]:
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model="second_order",
    )
    pairs = []
    signed_total = 0.0
    count = 0
    for record in sweep.records:
        estimate = estimator.estimate(
            record.use_case, iterations=iterations
        )
        for name, simulated in record.simulated.items():
            estimated = estimate.periods[name]
            pairs.append((estimated, simulated))
            signed_total += (estimated - simulated) / simulated
            count += 1
    return {
        "absolute": mean_absolute_percentage_error(pairs),
        "signed": 100.0 * signed_total / count,
    }


def test_ablation_fixed_point(benchmark, suite, sweep):
    def run():
        return {
            passes: _inaccuracy(suite, sweep, passes) for passes in _PASSES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            str(passes),
            f"{values['absolute']:.2f}",
            f"{values['signed']:+.2f}",
        ]
        for passes, values in results.items()
    ]
    report(
        "ablation_fixpoint",
        render_table(
            ["Fig.-4 passes", "abs inaccuracy %", "signed bias %"],
            rows,
            title=(
                "Ablation - single-pass vs. fixed-point estimation "
                "(single pass wins: iterating collapses utilizations "
                "and turns the estimate optimistic)"
            ),
        ),
    )

    single = results[1]
    # The paper's single pass is the best-calibrated variant...
    for passes in _PASSES[1:]:
        assert single["absolute"] <= results[passes]["absolute"] + 1e-6
        # ...and the iterated variants under-estimate (optimistic bias).
        assert results[passes]["signed"] < 0.0
    # The single pass errs on the conservative side, mildly.
    assert -5.0 < single["signed"] < 15.0
    for passes, values in results.items():
        benchmark.extra_info[f"pass{passes}_abs_pct"] = round(
            values["absolute"], 2
        )
        benchmark.extra_info[f"pass{passes}_signed_pct"] = round(
            values["signed"], 2
        )
