"""Ablation — the stochastic execution-time extension.

The paper claims the approach "can be easily extended to varying
execution times ... [that] follow a probabilistic distribution".  This
bench puts that to the test: every actor's execution time becomes a
uniform distribution around its nominal value, mu generalizes to the
mean residual life E[X^2]/(2 E[X]), and the estimate is compared with a
stochastic simulation of the maximum-contention use-case.
"""

from __future__ import annotations


from conftest import report
from repro.core.distributions import DistributionTimeModel, UniformTime
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator

_SPREAD = 0.4  # +/- 40% around the nominal execution time


def _time_model(suite) -> DistributionTimeModel:
    distributions = {}
    for graph in suite.graphs:
        for actor in graph.actors:
            nominal = actor.execution_time
            distributions[(graph.name, actor.name)] = UniformTime(
                nominal * (1 - _SPREAD), nominal * (1 + _SPREAD)
            )
    return DistributionTimeModel(distributions)


def test_ablation_stochastic_times(benchmark, suite):
    time_model = _time_model(suite)

    def run():
        simulation = Simulator(
            list(suite.graphs),
            mapping=suite.mapping,
            config=SimulationConfig(
                target_iterations=150,
                time_model=time_model,
                seed=29,
            ),
        ).run()
        estimate = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="second_order",
            mus=time_model.mus(),
        ).estimate(UseCase(suite.application_names))
        return simulation, estimate

    simulation, estimate = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    errors = []
    for name in suite.application_names:
        simulated = simulation.period_of(name)
        estimated = estimate.periods[name]
        error = 100 * abs(estimated - simulated) / simulated
        errors.append(error)
        rows.append(
            [name, f"{simulated:.1f}", f"{estimated:.1f}", f"{error:.1f}"]
        )
    report(
        "ablation_stochastic",
        render_table(
            ["App", "Simulated period", "Estimated period", "error %"],
            rows,
            title=(
                "Ablation - stochastic execution times "
                f"(uniform +/-{int(_SPREAD * 100)}%, "
                "mu = mean residual life)"
            ),
        ),
    )

    mean_error = sum(errors) / len(errors)
    # The deterministic case lands ~10-20% off simulation; the
    # stochastic extension must stay in the same band.
    assert mean_error < 35.0
    benchmark.extra_info["mean_error_pct"] = round(mean_error, 1)
