"""DES engine speedup: the SoA fast core vs. the reference loop.

The acceptance bar of the event-batched simulation core: on a seeded
conformance-style workload (the same scenario recipe ``repro
conformance`` checks models against) the ``numpy`` flavour must beat
the ``python`` reference loop by >= ``REPRO_BENCH_MIN_SPEEDUP``
(3x by default) *blended across all five arbitration policies*, while
staying byte-identical — the flavours are one simulator, not two
approximations of each other, so parity is ``==`` on every metric,
waiting statistic and utilization figure, not a tolerance band.
"""

from __future__ import annotations

import time

import pytest

from conftest import MIN_SPEEDUP, SMOKE, report
from repro.conformance import generate_scenarios
from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite
from repro.simulation.engine import SimulationConfig, Simulator

pytest.importorskip("numpy")

POLICIES = (
    "fcfs",
    "round_robin",
    "weighted_round_robin",
    "priority",
    "priority_preemptive",
)

#: Conformance-recipe scenarios and per-run iteration target.  The
#: speedup is setup-amortized at a few hundred iterations; smoke mode
#: only proves the bench still runs.
SCENARIOS = 3 if SMOKE else 6
TARGET = 120 if SMOKE else 500
ROUNDS = 1 if SMOKE else 3


def _simulators(scenarios, suites, policy, backend):
    built = []
    for scenario in scenarios:
        suite = suites[scenario.gallery_seed]
        graphs = [suite.graph(name) for name in scenario.use_case]
        mapping = suite.mapping.with_priorities(
            dict(scenario.priorities)
        )
        params = (
            {"weights": dict(scenario.weights)}
            if policy == "weighted_round_robin"
            else None
        )
        built.append(
            Simulator(
                graphs,
                mapping=mapping,
                config=SimulationConfig(
                    target_iterations=TARGET,
                    arbitration=policy,
                    arbitration_params=params,
                ),
                backend=backend,
            )
        )
    return built


def _measure(scenarios, suites, policy, backend):
    """Best-of-``ROUNDS`` total seconds over the scenario batch.

    Simulators are rebuilt every round so no round benefits from warm
    per-instance state; the results of the last round come along for
    the parity check (runs are deterministic, any round's agree).
    """
    best = float("inf")
    results = None
    for _ in range(ROUNDS):
        simulators = _simulators(scenarios, suites, policy, backend)
        started = time.perf_counter()
        results = [simulator.run() for simulator in simulators]
        best = min(best, time.perf_counter() - started)
    return best, results


def _assert_identical(reference, fast, label):
    assert fast.end_time == reference.end_time, label
    assert fast.events_processed == reference.events_processed, label
    assert fast.metrics == reference.metrics, label
    assert (
        fast.processor_utilization == reference.processor_utilization
    ), label
    assert fast.waiting == reference.waiting, label


def test_simulation_fastcore_speedup(benchmark):
    """SoA fast core >= 3x blended over the five policies, byte-equal."""
    scenarios = generate_scenarios(
        application_count=4, count=SCENARIOS
    )
    suites = {
        seed: paper_benchmark_suite(seed=seed, application_count=4)
        for seed in {s.gallery_seed for s in scenarios}
    }

    def run():
        timings = {}
        for policy in POLICIES:
            reference_seconds, reference_results = _measure(
                scenarios, suites, policy, "python"
            )
            fast_seconds, fast_results = _measure(
                scenarios, suites, policy, "numpy"
            )
            for index, (reference, fast) in enumerate(
                zip(reference_results, fast_results)
            ):
                _assert_identical(
                    reference, fast, (policy, scenarios[index].label())
                )
            timings[policy] = (reference_seconds, fast_seconds)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    reference_total = sum(r for r, _ in timings.values())
    fast_total = sum(f for _, f in timings.values())
    blended = reference_total / fast_total
    assert blended >= MIN_SPEEDUP, (
        f"fast-core blended speedup {blended:.2f}x below "
        f"{MIN_SPEEDUP}x (reference {reference_total * 1e3:.1f} ms, "
        f"fast {fast_total * 1e3:.1f} ms)"
    )

    benchmark.extra_info["speedup"] = round(blended, 2)
    benchmark.extra_info["scenarios"] = len(scenarios)
    benchmark.extra_info["target_iterations"] = TARGET
    rows = [
        [
            policy,
            f"{reference_seconds * 1e3:.1f} ms",
            f"{fast_seconds * 1e3:.1f} ms",
            f"{reference_seconds / fast_seconds:.2f}x",
        ]
        for policy, (reference_seconds, fast_seconds) in timings.items()
    ]
    rows.append(
        [
            "BLENDED",
            f"{reference_total * 1e3:.1f} ms",
            f"{fast_total * 1e3:.1f} ms",
            f"{blended:.2f}x",
        ]
    )
    report(
        "simulation_fastcore_speedup",
        render_table(
            ["policy", "reference", "fast core", "speedup"],
            rows,
            title=(
                f"DES fast core - {len(scenarios)} conformance "
                f"scenarios x {TARGET} iterations"
            ),
        ),
    )
