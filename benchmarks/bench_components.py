"""Micro-benchmarks of the analysis building blocks.

Backs the complexity claims of Sections 3.2 and 4 with wall-clock data:

* waiting-time formula cost as the number of co-mapped actors grows
  (exact vs. second order vs. fourth order vs. composability);
* maximum-cycle-ratio engines on a paper-scale HSDF (Howard vs. Lawler);
* one self-timed state-space period extraction;
* the composability operators themselves (the O(1) claim).
"""

from __future__ import annotations

import pytest

from repro.core.approximation import waiting_time_order_m
from repro.core.blocking import build_profile
from repro.core.composability import (
    Composite,
    compose,
    compose_all,
    decompose,
    CompositionWaitingModel,
)
from repro.core.exact import waiting_time_exact
from repro.experiments.setup import paper_benchmark_suite
from repro.sdf.hsdf import to_hsdf
from repro.sdf.mcm import max_cycle_ratio
from repro.sdf.statespace import self_timed_period


def _profiles(count: int):
    return [
        build_profile(
            "A",
            f"x{i}",
            tau=10.0 + 7 * (i % 5),
            repetitions=1 + (i % 3),
            period=400.0 + 13 * i,
        )
        for i in range(count)
    ]


@pytest.mark.parametrize("actors", [5, 10, 20])
def test_waiting_exact(benchmark, actors):
    others = _profiles(actors)
    benchmark(lambda: waiting_time_exact(others))


@pytest.mark.parametrize("actors", [5, 10, 20])
def test_waiting_second_order(benchmark, actors):
    others = _profiles(actors)
    benchmark(lambda: waiting_time_order_m(others, 2))


@pytest.mark.parametrize("actors", [5, 10, 20])
def test_waiting_fourth_order(benchmark, actors):
    others = _profiles(actors)
    benchmark(lambda: waiting_time_order_m(others, 4))


@pytest.mark.parametrize("actors", [5, 10, 20])
def test_waiting_composability(benchmark, actors):
    others = _profiles(actors)
    model = CompositionWaitingModel()
    own = _profiles(1)[0]
    benchmark(lambda: model.waiting_time(own, others))


def test_compose_decompose_roundtrip(benchmark):
    a = Composite.of_profile(_profiles(1)[0])
    total = compose_all(_profiles(12))
    benchmark(lambda: decompose(compose(total, a), a))


def test_mcr_howard_paper_scale(benchmark, suite=None):
    graph = paper_benchmark_suite(application_count=1).graphs[0]
    hsdf = to_hsdf(graph)
    benchmark(lambda: max_cycle_ratio(hsdf, method="howard"))


def test_mcr_lawler_paper_scale(benchmark):
    graph = paper_benchmark_suite(application_count=1).graphs[0]
    hsdf = to_hsdf(graph)
    benchmark(lambda: max_cycle_ratio(hsdf, method="lawler"))


def test_statespace_period_paper_scale(benchmark):
    graph = paper_benchmark_suite(application_count=1).graphs[0]
    benchmark(lambda: self_timed_period(graph))
