#!/usr/bin/env python
"""Record one point of the performance trajectory as ``BENCH_<n>.json``.

The repository asserts its speedups in benches but never *kept* them;
this recorder runs the headline measurements programmatically and
writes one machine-readable snapshot so CI (nightly + on demand, see
``.github/workflows/perf.yml``) accumulates a history that can be
plotted and diffed across PRs:

* ``incremental_sweep`` — cold re-expansion vs. warm engines on the
  exhaustive use-case sweep (PR 1's claim);
* ``vectorized_sweep`` — scalar incremental vs. NumPy-batched pipeline
  on the same sweep (PR 3's claim; ``null`` without numpy);
* ``runtime.decisions_per_second`` — resource-manager decision rate
  over a replayed scenario trace (PR 2's claim);
* ``service`` — queries/sec and latency percentiles of the
  micro-batching estimation server under the seeded load generator
  (PR 4's claim).

Usage::

    PYTHONPATH=src python benchmarks/record.py             # auto index
    PYTHONPATH=src python benchmarks/record.py --fast      # CI smoke
    PYTHONPATH=src python benchmarks/record.py --index 123 \
        --output-dir bench-history
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence


def _collect(fast: bool) -> Dict[str, object]:
    from repro.backend import get_backend
    from repro.core.estimator import ProbabilisticEstimator
    from repro.experiments.runtime_throughput import (
        run_runtime_throughput,
    )
    from repro.experiments.scalability import run_sweep_speedup
    from repro.experiments.service_load import LoadConfig, run_load
    from repro.experiments.setup import paper_benchmark_suite
    from repro.runtime.manager import gallery_from_graphs
    from repro.runtime.service import GallerySpec

    applications = 4 if fast else 8

    sweep = run_sweep_speedup(application_count=applications)

    vectorized: Optional[float] = None
    contention_models: Dict[str, Optional[float]] = {
        "priority_preemptive": None,
        "weighted_round_robin": None,
    }
    try:
        import numpy  # noqa: F401  (probe only)
    except ImportError:
        pass
    else:
        suite = paper_benchmark_suite(application_count=applications)
        priority_mapping = suite.mapping.with_priorities(
            {
                name: index % 3
                for index, name in enumerate(suite.application_names)
            }
        )

        def sweep_seconds(
            backend: str, model: str = "second_order", mapping=None
        ) -> float:
            estimator = ProbabilisticEstimator(
                list(suite.graphs),
                mapping=(
                    mapping if mapping is not None else suite.mapping
                ),
                waiting_model=model,
                backend=backend,
            )
            started = time.perf_counter()
            estimator.sweep_all_sizes(samples_per_size=None)
            return time.perf_counter() - started

        vectorized = sweep_seconds("python") / sweep_seconds("numpy")
        for model in contention_models:
            contention_models[model] = round(
                sweep_seconds(
                    "python", model, priority_mapping
                )
                / sweep_seconds("numpy", model, priority_mapping),
                3,
            )

    runtime_suite = paper_benchmark_suite(application_count=4)
    throughput = run_runtime_throughput(
        gallery_from_graphs(list(runtime_suite.graphs)),
        mapping=runtime_suite.mapping,
        loads=(1.0, 2.0) if fast else (0.5, 1.0, 2.0, 4.0),
        events=120 if fast else 400,
        policy="downgrade-greedy",
    )

    load = run_load(
        LoadConfig(
            clients=4 if fast else 16,
            queries_per_client=8 if fast else 32,
            gallery=GallerySpec(application_count=4 if fast else 8),
            cache_entries=0,
        )
    )

    return {
        "schema": 1,
        "fast": fast,
        "python": platform.python_version(),
        "backend": get_backend().name,
        "speedups": {
            "incremental_sweep": round(sweep.speedup, 3),
            "vectorized_sweep": (
                round(vectorized, 3) if vectorized is not None else None
            ),
            # PR 5: the registry-shipped contention models on the same
            # exhaustive sweep (None without numpy).
            "vectorized_sweep_contention_models": contention_models,
        },
        "runtime": {
            "decisions_per_second": round(
                throughput.decisions_per_second, 1
            ),
            "admission_ratio_at_max_load": round(
                throughput.points[-1].admission_ratio, 4
            ),
        },
        "service": {
            "queries_per_second": round(load.queries_per_second, 1),
            "latency_p50_ms": round(load.latency_p50_ms, 3),
            "latency_p90_ms": round(load.latency_p90_ms, 3),
            "latency_p99_ms": round(load.latency_p99_ms, 3),
            "mean_batch": round(load.mean_batch, 2),
            "errors": load.errors,
        },
    }


def _next_index(directory: Path) -> int:
    """1 + the largest recorded index (0 for an empty history)."""
    best = -1
    for path in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            best = max(best, int(match.group(1)))
    return best + 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="record one BENCH_<n>.json perf-trajectory point"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="where BENCH_<n>.json lands (default: the repo root)",
    )
    parser.add_argument(
        "--index",
        type=int,
        default=None,
        help=(
            "trajectory index n (default: 1 + the largest index "
            "already recorded in --output-dir; CI passes its run "
            "number)"
        ),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke scale: smaller galleries, fewer events/queries",
    )
    arguments = parser.parse_args(argv)

    record = _collect(fast=arguments.fast)
    directory = arguments.output_dir
    directory.mkdir(parents=True, exist_ok=True)
    index = (arguments.index if arguments.index is not None else _next_index(directory))
    record["index"] = index
    path = directory / f"BENCH_{index}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"recorded {path}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
