#!/usr/bin/env python
"""Record one point of the performance trajectory as ``BENCH_<n>.json``.

The repository asserts its speedups in benches but never *kept* them;
this recorder runs the headline measurements programmatically and
writes one machine-readable snapshot so CI (nightly + on demand, see
``.github/workflows/perf.yml``) accumulates a history that can be
plotted and diffed across PRs:

* ``incremental_sweep`` — cold re-expansion vs. warm engines on the
  exhaustive use-case sweep (PR 1's claim);
* ``vectorized_sweep`` — scalar incremental vs. NumPy-batched pipeline
  on the same sweep (PR 3's claim; ``null`` without numpy);
* ``batched_fixed_point_sweep`` — scalar vs. mask-batched fixed-point
  refinement (``iterations > 1``) on the same sweep (PR 6's claim);
* ``runtime.decisions_per_second`` — resource-manager decision rate
  over a replayed scenario trace (PR 2's claim);
* ``service`` — queries/sec and latency percentiles of the
  micro-batching estimation server under the seeded load generator
  (PR 4's claim);
* ``fleet`` — queries/sec and latency percentiles of the sharded
  serving topology: 2 estimation-server shards behind the
  consistent-hash router, each shard running a multiprocess solver
  pool, driven by a bursty open-loop storm of multiplexed clients
  (PR 8's claim);
* ``search`` — placement-search exhaustive scan: batched candidate
  evaluation vs the per-candidate scalar baseline, plus the greedy
  walk's evaluated-candidate count (PR 9's claim);
* ``simulation.fastcore_speedup`` — the SoA fast stepping loop vs. the
  reference event loop, blended across arbitration policies on
  conformance-recipe scenarios (PR 6's claim);
* ``telemetry`` — registry-derived observability counters of a cached
  service run: result-cache hit rate, micro-batch size histogram,
  engine fallback counters, and the full merged metrics snapshot
  (PR 7's layer).

Every snapshot leads with a ``header`` block carrying the schema
version, so downstream tooling can dispatch on ``header.schema``
instead of sniffing keys.  Measurement sections are independent:
a bench that cannot run (missing optional dependency, perturbed
runner) records ``null`` and an entry in ``header.errors`` rather
than losing the whole trajectory point.

Usage::

    PYTHONPATH=src python benchmarks/record.py             # auto index
    PYTHONPATH=src python benchmarks/record.py --fast      # CI smoke
    PYTHONPATH=src python benchmarks/record.py --index 123 \
        --output-dir bench-history
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

#: Bump when the JSON layout changes shape (not when a new optional
#: section is added — absent/null sections are part of the contract).
#: 1: flat ``schema`` field, all sections mandatory.
#: 2: ``header`` block (schema/python/backend/fast/errors), sections
#:    individually fault-tolerant, ``simulation`` section and
#:    ``speedups.batched_fixed_point_sweep`` added.
#: 3: ``telemetry`` section — registry-derived result-cache hit rate,
#:    micro-batch size histogram, engine fallback/fixed-point counters,
#:    plus the full merged metrics snapshot of a cached service run.
#: 4: ``fleet`` section — qps and latency percentiles of the sharded
#:    topology (2 shards behind the consistent-hash router, each with
#:    a multiprocess solver pool) under a bursty open-loop storm.
#: 5: ``search`` section — placement-search exhaustive-scan timings:
#:    batched candidate evaluation vs the per-candidate scalar
#:    baseline, plus the greedy walk's evaluated-candidate count.
#: 6: ``fleet.router_batching`` — the same fan-in storm through the
#:    router with micro-batching off vs. on (one framed
#:    ``estimate_batch`` per shard hop), recording qps / p99 for both
#:    runs plus the speedup and p99 reduction.
SCHEMA_VERSION = 6


def _measure_sweeps(fast: bool) -> Dict[str, object]:
    from repro.core.estimator import ProbabilisticEstimator
    from repro.experiments.scalability import run_sweep_speedup
    from repro.experiments.setup import paper_benchmark_suite

    applications = 4 if fast else 8
    sweep = run_sweep_speedup(application_count=applications)

    vectorized: Optional[float] = None
    batched_fixed_point: Optional[float] = None
    contention_models: Dict[str, Optional[float]] = {
        "priority_preemptive": None,
        "weighted_round_robin": None,
    }
    try:
        import numpy  # noqa: F401  (probe only)
    except ImportError:
        pass
    else:
        suite = paper_benchmark_suite(application_count=applications)
        priority_mapping = suite.mapping.with_priorities(
            {
                name: index % 3
                for index, name in enumerate(suite.application_names)
            }
        )

        def sweep_seconds(
            backend: str,
            model: str = "second_order",
            mapping=None,
            iterations: int = 1,
        ) -> float:
            estimator = ProbabilisticEstimator(
                list(suite.graphs),
                mapping=(
                    mapping if mapping is not None else suite.mapping
                ),
                waiting_model=model,
                backend=backend,
            )
            started = time.perf_counter()
            estimator.sweep_all_sizes(
                samples_per_size=None, iterations=iterations
            )
            return time.perf_counter() - started

        vectorized = round(
            sweep_seconds("python") / sweep_seconds("numpy"), 3
        )
        # PR 6: fixed-point refinement batched across the whole
        # use-case batch with a per-row convergence mask.
        refinements = 3 if fast else 4
        batched_fixed_point = round(
            sweep_seconds("python", iterations=refinements)
            / sweep_seconds("numpy", iterations=refinements),
            3,
        )
        for model in contention_models:
            contention_models[model] = round(
                sweep_seconds("python", model, priority_mapping)
                / sweep_seconds("numpy", model, priority_mapping),
                3,
            )

    return {
        "incremental_sweep": round(sweep.speedup, 3),
        "vectorized_sweep": vectorized,
        "batched_fixed_point_sweep": batched_fixed_point,
        # PR 5: the registry-shipped contention models on the same
        # exhaustive sweep (None without numpy).
        "vectorized_sweep_contention_models": contention_models,
    }


def _measure_simulation(fast: bool) -> Optional[Dict[str, object]]:
    """Blended SoA fast-core speedup on conformance-recipe scenarios.

    ``None`` without numpy — the fast flavour needs the vectorized
    backend, so there is nothing to compare against.
    """
    try:
        import numpy  # noqa: F401  (probe only)
    except ImportError:
        return None

    from repro.conformance import generate_scenarios
    from repro.experiments.setup import paper_benchmark_suite
    from repro.simulation.engine import SimulationConfig, Simulator

    policies = (
        "fcfs",
        "round_robin",
        "weighted_round_robin",
        "priority",
        "priority_preemptive",
    )
    scenarios = generate_scenarios(
        application_count=4, count=2 if fast else 5
    )
    suites = {
        seed: paper_benchmark_suite(seed=seed, application_count=4)
        for seed in {s.gallery_seed for s in scenarios}
    }
    target = 150 if fast else 400

    def batch_seconds(policy: str, backend: str) -> float:
        simulators = []
        for scenario in scenarios:
            suite = suites[scenario.gallery_seed]
            graphs = [suite.graph(name) for name in scenario.use_case]
            mapping = suite.mapping.with_priorities(
                dict(scenario.priorities)
            )
            params = (
                {"weights": dict(scenario.weights)}
                if policy == "weighted_round_robin"
                else None
            )
            simulators.append(
                Simulator(
                    graphs,
                    mapping=mapping,
                    config=SimulationConfig(
                        target_iterations=target,
                        arbitration=policy,
                        arbitration_params=params,
                    ),
                    backend=backend,
                )
            )
        started = time.perf_counter()
        for simulator in simulators:
            simulator.run()
        return time.perf_counter() - started

    reference_total = 0.0
    fast_total = 0.0
    per_policy = {}
    for policy in policies:
        reference = batch_seconds(policy, "python")
        quick = batch_seconds(policy, "numpy")
        reference_total += reference
        fast_total += quick
        per_policy[policy] = round(reference / quick, 3)

    return {
        "fastcore_speedup": round(reference_total / fast_total, 3),
        "fastcore_speedup_per_policy": per_policy,
        "scenarios": len(scenarios),
        "target_iterations": target,
    }


def _measure_runtime(fast: bool) -> Dict[str, object]:
    from repro.experiments.runtime_throughput import (
        run_runtime_throughput,
    )
    from repro.experiments.setup import paper_benchmark_suite
    from repro.runtime.manager import gallery_from_graphs

    runtime_suite = paper_benchmark_suite(application_count=4)
    throughput = run_runtime_throughput(
        gallery_from_graphs(list(runtime_suite.graphs)),
        mapping=runtime_suite.mapping,
        loads=(1.0, 2.0) if fast else (0.5, 1.0, 2.0, 4.0),
        events=120 if fast else 400,
        policy="downgrade-greedy",
    )
    return {
        "decisions_per_second": round(
            throughput.decisions_per_second, 1
        ),
        "admission_ratio_at_max_load": round(
            throughput.points[-1].admission_ratio, 4
        ),
    }


def _measure_service(fast: bool) -> Dict[str, object]:
    from repro.experiments.service_load import LoadConfig, run_load
    from repro.runtime.service import GallerySpec

    load = run_load(
        LoadConfig(
            clients=4 if fast else 16,
            queries_per_client=8 if fast else 32,
            gallery=GallerySpec(application_count=4 if fast else 8),
            cache_entries=0,
        )
    )
    return {
        "queries_per_second": round(load.queries_per_second, 1),
        "latency_p50_ms": round(load.latency_p50_ms, 3),
        "latency_p90_ms": round(load.latency_p90_ms, 3),
        "latency_p99_ms": round(load.latency_p99_ms, 3),
        "mean_batch": round(load.mean_batch, 2),
        "errors": load.errors,
    }


def _measure_fleet(fast: bool) -> Dict[str, object]:
    """The sharded topology end to end: router + per-shard pools.

    Open-loop (bursty) so the rate probes the fleet rather than the
    clients' round-trip; many logical clients multiplex over a few
    pipelined sockets, the pattern real frontends produce.
    """
    import os

    from repro.experiments.service_load import LoadConfig, run_load
    from repro.runtime.service import GallerySpec

    load = run_load(
        LoadConfig(
            clients=64 if fast else 1024,
            queries_per_client=2 if fast else 4,
            connections=8 if fast else 32,
            shards=2,
            solver_workers=min(os.cpu_count() or 1, 2),
            arrival="bursty",
            mean_interarrival_ms=1.0,
            gallery=GallerySpec(application_count=4 if fast else 8),
        )
    )
    # PR 10: the router micro-batcher on the fan-in pattern it was
    # built for — many logical clients over a few sockets hammering a
    # small gallery set, so same-gallery queries coalesce into one
    # framed ``estimate_batch`` per shard hop.  Off vs. on, same storm.
    def fan_in(window: float):
        report = run_load(
            LoadConfig(
                clients=64 if fast else 256,
                queries_per_client=2 if fast else 4,
                connections=8,
                shards=2,
                arrival="bursty",
                mean_interarrival_ms=0.5,
                gallery=GallerySpec(application_count=4),
                router_batch_window=window,
            )
        )
        return {
            "queries_per_second": round(report.queries_per_second, 1),
            "latency_p99_ms": round(report.latency_p99_ms, 3),
            "errors": report.errors,
        }

    window = 0.002
    unbatched = fan_in(0.0)
    batched = fan_in(window)
    return {
        "shards": load.shards,
        "solver_workers_per_shard": load.workers,
        "clients": load.config.clients,
        "connections": load.config.connections,
        "arrival": load.config.arrival,
        "queries_per_second": round(load.queries_per_second, 1),
        "latency_p50_ms": round(load.latency_p50_ms, 3),
        "latency_p90_ms": round(load.latency_p90_ms, 3),
        "latency_p99_ms": round(load.latency_p99_ms, 3),
        "mean_batch": round(load.mean_batch, 2),
        "errors": load.errors,
        "shed": load.shed,
        "router_retries": load.retries,
        "router_batching": {
            "batch_window_ms": window * 1e3,
            "unbatched": unbatched,
            "batched": batched,
            "qps_speedup": round(
                batched["queries_per_second"]
                / unbatched["queries_per_second"],
                3,
            ),
            "p99_reduction": round(
                1.0
                - batched["latency_p99_ms"] / unbatched["latency_p99_ms"],
                3,
            ),
        },
    }


def _measure_search(fast: bool) -> Dict[str, object]:
    """Placement search: batched scan vs per-candidate scalar.

    The exhaustive strategy evaluates the whole candidate space in
    batches through the array pipeline; the baseline composes one
    scalar :class:`ProbabilisticEstimator` per candidate.  Also records
    how few candidates the greedy walk needs on the same space, since
    that is the default ``repro place`` path.
    """
    from repro.core.estimator import ProbabilisticEstimator
    from repro.experiments.setup import paper_benchmark_suite
    from repro.search import (
        CandidateEvaluator,
        Constraint,
        Objective,
        SearchSpace,
        StrategyOptions,
        derive_targets,
        run_strategy,
    )

    applications = 3 if fast else 5
    suite = paper_benchmark_suite(application_count=applications)
    space = SearchSpace(
        list(suite.graphs),
        platform=suite.platform,
        model="wrr",
        weight_choices=(1, 2),
    )
    targets = derive_targets(list(space.graphs), slack=6.0)
    objective = Objective("total_period")
    constraint = Constraint(targets)
    candidates = list(space.candidates())

    started = time.perf_counter()
    for candidate in candidates:
        ProbabilisticEstimator(
            list(space.graphs),
            mapping=space.mapping_of(candidate),
            waiting_model=space.model_of(candidate),
            backend="python",
        ).estimate()
    scalar_seconds = time.perf_counter() - started

    evaluator = CandidateEvaluator(
        space, objective=objective, constraint=constraint
    )
    started = time.perf_counter()
    evaluator.evaluate(candidates)
    batched_seconds = time.perf_counter() - started

    greedy = run_strategy(
        "greedy",
        space,
        CandidateEvaluator(
            space, objective=objective, constraint=constraint
        ),
        StrategyOptions(seed=0),
    )
    return {
        "applications": applications,
        "candidates": space.size,
        "scalar_scan_seconds": round(scalar_seconds, 4),
        "batched_scan_seconds": round(batched_seconds, 4),
        "batched_scan_speedup": round(scalar_seconds / batched_seconds, 2),
        "greedy_evaluated": greedy.evaluated,
        "greedy_feasible": bool(
            greedy.best is not None and greedy.best.feasible
        ),
    }


def _sum_samples(
    snapshot: Dict[str, object], name: str, key: str = "value"
) -> float:
    """Sum one field over every sample of a snapshot family (0 when the
    family never came to life in this process)."""
    entry = snapshot.get(name)
    if not isinstance(entry, dict):
        return 0.0
    total = 0.0
    for sample in entry.get("samples", ()):  # type: ignore[union-attr]
        total += float(sample.get(key, 0.0))
    return total


def _measure_telemetry(fast: bool) -> Dict[str, object]:
    """Registry-derived counters of one cached service run.

    Unlike the throughput-oriented ``service`` section (which disables
    the result cache to measure raw solve rate), this run keeps the
    cache on so the snapshot shows the hit rates and batch shapes an
    operator would scrape in production.  The merged snapshot also
    carries the process-global engine/estimator counters accumulated by
    the sections that ran before it — the point of a trajectory record.
    """
    from repro.experiments.service_load import LoadConfig, run_load
    from repro.runtime.service import GallerySpec

    load = run_load(
        LoadConfig(
            clients=4,
            queries_per_client=8,
            gallery=GallerySpec(application_count=4),
        )
    )
    snapshot = load.telemetry
    hits = _sum_samples(snapshot, "repro_result_cache_hits_total")
    misses = _sum_samples(snapshot, "repro_result_cache_misses_total")
    lookups = hits + misses
    batch_entry = snapshot.get("repro_service_batch_size", {})
    batch_samples = (
        batch_entry.get("samples", [])  # type: ignore[union-attr]
        if isinstance(batch_entry, dict)
        else []
    )
    batch_size = dict(batch_samples[0]) if batch_samples else None
    if batch_size is not None:
        batch_size.pop("labels", None)
    return {
        "result_cache": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": round(hits / lookups, 4) if lookups else None,
        },
        "batch_size": batch_size,
        "fallbacks": {
            "engine_batch_fallbacks": int(
                _sum_samples(snapshot, "repro_engine_batch_fallbacks_total")
            ),
            "estimator_fixed_point_passes": int(
                _sum_samples(
                    snapshot, "repro_estimator_fixed_point_passes_total"
                )
            ),
        },
        "snapshot": snapshot,
    }


#: Section name -> measurement callable.  Sections run independently;
#: one failing (or an optional dependency missing deeper than its own
#: probe) must not cost the rest of the snapshot.
SECTIONS: Dict[str, Callable[[bool], object]] = {
    "speedups": _measure_sweeps,
    "simulation": _measure_simulation,
    "runtime": _measure_runtime,
    "service": _measure_service,
    "fleet": _measure_fleet,
    "search": _measure_search,
    "telemetry": _measure_telemetry,
}


def _collect(fast: bool) -> Dict[str, object]:
    from repro.backend import get_backend

    errors: Dict[str, str] = {}
    record: Dict[str, object] = {
        "header": {
            "schema": SCHEMA_VERSION,
            "tool": "benchmarks/record.py",
            "fast": fast,
            "python": platform.python_version(),
            "backend": get_backend().name,
            "errors": errors,
        },
    }
    for name, measure in SECTIONS.items():
        try:
            record[name] = measure(fast)
        except Exception as error:  # noqa: BLE001 — tolerance is the point
            record[name] = None
            errors[name] = f"{type(error).__name__}: {error}"
            print(
                f"warning: section {name!r} failed: {errors[name]}",
                file=sys.stderr,
            )
    return record


def _next_index(directory: Path) -> int:
    """1 + the largest recorded index (0 for an empty history)."""
    best = -1
    for path in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            best = max(best, int(match.group(1)))
    return best + 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="record one BENCH_<n>.json perf-trajectory point"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="where BENCH_<n>.json lands (default: the repo root)",
    )
    parser.add_argument(
        "--index",
        type=int,
        default=None,
        help=(
            "trajectory index n (default: 1 + the largest index "
            "already recorded in --output-dir; CI passes its run "
            "number)"
        ),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke scale: smaller galleries, fewer events/queries",
    )
    arguments = parser.parse_args(argv)

    record = _collect(fast=arguments.fast)
    directory = arguments.output_dir
    directory.mkdir(parents=True, exist_ok=True)
    index = (arguments.index if arguments.index is not None else _next_index(directory))
    record["header"]["index"] = index
    path = directory / f"BENCH_{index}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"recorded {path}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
