"""Placement-search bench: batched evaluation must pay for itself.

The search layer's whole premise is that one strategy step evaluates a
*batch* of candidates through the array pipeline — one waiting-kernel
pass per processor and one :meth:`AnalysisEngine.period_for` call per
application spanning the batch — instead of composing a fresh
per-candidate :class:`ProbabilisticEstimator` and solving candidates
one by one.  This bench measures exactly that ratio on an exhaustive
scan and enforces the acceptance bar (>= 2x locally; CI smoke
overrides via ``REPRO_BENCH_MIN_SPEEDUP_SEARCH`` because one-shot
wall-clock ratios are noisy on shared runners).
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import SMOKE, report
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.setup import paper_benchmark_suite
from repro.search import (
    CandidateEvaluator,
    Constraint,
    Objective,
    SearchSpace,
    derive_targets,
)

pytest.importorskip("numpy")

#: Batched-vs-scalar speedup the exhaustive scan must clear.
MIN_SPEEDUP_SEARCH = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_SEARCH", "2.0")
)

APPLICATIONS = 3 if SMOKE else 5


def build_space() -> SearchSpace:
    suite = paper_benchmark_suite(application_count=APPLICATIONS)
    return SearchSpace(
        list(suite.graphs),
        platform=suite.platform,
        model="wrr",
        weight_choices=(1, 2),
    )


def scan_batched(space: SearchSpace) -> float:
    """Exhaustive scan through the batched evaluator; returns seconds."""
    targets = derive_targets(list(space.graphs), slack=6.0)
    evaluator = CandidateEvaluator(
        space,
        objective=Objective("total_period"),
        constraint=Constraint(targets),
        backend="numpy",
    )
    candidates = list(space.candidates())
    started = time.perf_counter()
    evaluated = evaluator.evaluate(candidates)
    elapsed = time.perf_counter() - started
    assert len(evaluated) == space.size
    return elapsed


def scan_scalar(space: SearchSpace) -> float:
    """The pre-search-layer baseline: one scalar estimator per
    candidate (fresh composition, per-application scalar solves)."""
    candidates = list(space.candidates())
    started = time.perf_counter()
    for candidate in candidates:
        estimator = ProbabilisticEstimator(
            list(space.graphs),
            mapping=space.mapping_of(candidate),
            waiting_model=space.model_of(candidate),
            backend="python",
        )
        estimator.estimate()
    elapsed = time.perf_counter() - started
    return elapsed


def test_batched_scan_beats_per_candidate_scalar(benchmark):
    space = build_space()
    # Parity first: the speed claim is worthless if answers drift.
    targets = derive_targets(list(space.graphs), slack=6.0)
    evaluator = CandidateEvaluator(
        space,
        objective=Objective("total_period"),
        constraint=Constraint(targets),
        backend="numpy",
    )
    probe = list(space.candidates())[: 4]
    for item in evaluator.evaluate(probe):
        reference = ProbabilisticEstimator(
            list(space.graphs),
            mapping=space.mapping_of(item.candidate),
            waiting_model=space.model_of(item.candidate),
            backend="python",
        ).estimate()
        for name, value in item.periods.items():
            assert value == pytest.approx(
                reference.periods[name], rel=1e-9
            )

    scalar_seconds = scan_scalar(space)
    batched_seconds = benchmark.pedantic(
        lambda: scan_batched(space), rounds=1, iterations=1
    )
    speedup = scalar_seconds / batched_seconds
    benchmark.extra_info["candidates"] = space.size
    benchmark.extra_info["scalar_seconds"] = round(scalar_seconds, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    lines = [
        "placement search: exhaustive scan, batched vs per-candidate scalar",
        f"applications        : {APPLICATIONS}",
        f"candidates          : {space.size}",
        f"scalar scan [s]     : {scalar_seconds:.4f}",
        f"batched scan [s]    : {batched_seconds:.4f}",
        f"speedup             : {speedup:.2f}x "
        f"(required >= {MIN_SPEEDUP_SEARCH}x)",
    ]
    report("search_batching", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP_SEARCH, (
        f"batched candidate evaluation only {speedup:.2f}x faster than "
        f"the per-candidate scalar baseline "
        f"(required {MIN_SPEEDUP_SEARCH}x)"
    )
