"""Figure 5 — per-application normalized periods under maximum contention.

Regenerates the paper's Figure 5: all ten applications concurrent, period
normalized to isolation, one series per technique plus simulation
(mean and worst) and the original period.

Shape assertions (the reproduction contract):
* the worst-case bound towers over simulation for every application;
* all probabilistic estimates stay within 50% of simulation while the
  worst case is multiples above it;
* the second order is at least as conservative as the fourth order.
"""

from __future__ import annotations


from conftest import SMOKE, report
from repro.experiments.figure5 import run_figure5

#: The contention-calibrated thresholds assume the full ten-application
#: suite; the CI smoke run (4 applications, REPRO_BENCH_SMOKE=1) keeps
#: only the structural ordering.
WORST_CASE_FACTOR = 1.0 if SMOKE else 2.0
PROBABILISTIC_BAND = 0.8 if SMOKE else 0.5


def test_figure5(benchmark, suite):
    result = benchmark.pedantic(
        lambda: run_figure5(suite, target_iterations=150),
        rounds=1,
        iterations=1,
    )
    report("figure5", result.render())

    worst = result.series["Analyzed Worst Case"]
    simulated = result.series["Simulated"]
    simulated_worst = result.series["Simulated Worst Case"]
    second = result.series["Probabilistic Second Order"]
    fourth = result.series["Probabilistic Fourth Order"]
    composed = result.series["Composability-based"]

    for i, application in enumerate(result.applications):
        assert worst[i] > WORST_CASE_FACTOR * simulated[i], application
        assert simulated_worst[i] >= simulated[i] * 0.999, application
        for series in (second, fourth, composed):
            assert (
                abs(series[i] - simulated[i]) / simulated[i]
                < PROBABILISTIC_BAND
            ), application
        assert second[i] >= fourth[i] - 1e-9, application

    mean_sim = sum(simulated) / len(simulated)
    benchmark.extra_info["mean_simulated_normalized_period"] = round(
        mean_sim, 3
    )
    benchmark.extra_info["mean_worst_case_normalized_period"] = round(
        sum(worst) / len(worst), 3
    )
