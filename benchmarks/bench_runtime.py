"""Runtime subsystem benches: decision rate, parallel sweep, store hits.

The run-time story needs numbers: the resource manager must decide
admissions far faster than scenario events arrive (>= 1000/s even on a
modest core), the sweep service must actually buy wall-clock with
worker processes, and a stored sweep must be answered from the result
store without touching a solver.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import report
from repro.experiments.runtime_throughput import run_runtime_throughput
from repro.experiments.setup import paper_benchmark_suite
from repro.generation.workload import WorkloadConfig, WorkloadGenerator
from repro.runtime.manager import ResourceManager, gallery_from_graphs
from repro.runtime.service import GallerySpec, ResultStore, SweepService
from repro.sdf.analysis import AnalysisMethod

#: Decisions/sec the resource manager must sustain on the 4-app gallery.
#: Override via the environment for noisy shared runners.
MIN_DECISION_RATE = float(
    os.environ.get("REPRO_BENCH_MIN_DECISION_RATE", "1000")
)

#: ``jobs=4`` wall-clock must be below ``serial * MAX_RATIO`` (1.0 =
#: strictly beats serial).  Relaxable on noisy shared runners.
PARALLEL_MAX_RATIO = float(
    os.environ.get("REPRO_BENCH_PARALLEL_MAX_RATIO", "1.0")
)


def test_resource_manager_decision_rate(benchmark):
    """>= 1k decisions/sec over a 10k-event trace on a 4-app gallery."""
    suite = paper_benchmark_suite(application_count=4)
    specs = gallery_from_graphs(list(suite.graphs), slack=1.3)
    generator = WorkloadGenerator(
        [spec.name for spec in specs],
        quality_levels={
            spec.name: spec.ladder.level_names for spec in specs
        },
        config=WorkloadConfig(mean_interarrival=40.0),
    )
    trace = generator.generate(seed=1, events=10_000)

    def replay():
        manager = ResourceManager(
            specs, mapping=suite.mapping, policy="reject"
        )
        return manager.replay(trace)

    log = benchmark.pedantic(replay, rounds=1, iterations=1)
    rate = log.decisions_per_second
    benchmark.extra_info["decisions_per_second"] = round(rate)
    benchmark.extra_info["admission_ratio"] = round(
        log.admission_ratio, 3
    )
    assert len(log) == 10_000
    assert rate >= MIN_DECISION_RATE, (
        f"resource manager sustained only {rate:.0f} decisions/sec "
        f"(floor {MIN_DECISION_RATE:.0f})"
    )


def test_runtime_throughput_experiment(benchmark):
    """Admission-ratio-vs-load curve (the runtime experiment artefact)."""
    suite = paper_benchmark_suite(application_count=4)
    specs = gallery_from_graphs(list(suite.graphs), slack=1.3)
    result = benchmark.pedantic(
        lambda: run_runtime_throughput(
            specs,
            mapping=suite.mapping,
            loads=(0.5, 1.0, 2.0, 4.0),
            events=300,
            policy="downgrade",
        ),
        rounds=1,
        iterations=1,
    )
    report("runtime_throughput", result.render())
    ratios = [point.admission_ratio for point in result.points]
    # More load cannot admit a larger fraction (modulo small-sample
    # noise): the curve's ends must be ordered.
    assert ratios[-1] <= ratios[0] + 0.05
    # The downgrade policy pays an assignment search per refusal, so
    # its floor is half the plain admission rate.
    assert result.decisions_per_second >= MIN_DECISION_RATE / 2


def test_parallel_sweep_beats_serial(benchmark):
    """``jobs=4`` under serial wall-clock on the 8-app sweep.

    Uses the state-space method — the expensive engine whose structure
    cannot be pre-factored — so the pooled workers amortize real
    per-use-case cost, not just process startup.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("parallel speedup needs at least 2 CPUs")
    gallery = GallerySpec(kind="paper", application_count=8)

    started = time.perf_counter()
    serial = SweepService(jobs=1).sweep(
        gallery, method=AnalysisMethod.STATE_SPACE
    )
    serial_seconds = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: SweepService(jobs=4).sweep(
            gallery, method=AnalysisMethod.STATE_SPACE
        ),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = parallel.elapsed_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(
        parallel_seconds, 3
    )

    for a, b in zip(serial.results, parallel.results):
        assert a.use_case == b.use_case
        for app in a.use_case:
            assert abs(a.periods[app] - b.periods[app]) <= 1e-9 * abs(
                a.periods[app]
            )
    assert parallel_seconds < serial_seconds * PARALLEL_MAX_RATIO, (
        f"jobs=4 took {parallel_seconds:.2f}s vs serial "
        f"{serial_seconds:.2f}s (must be under "
        f"{PARALLEL_MAX_RATIO:.2f}x)"
    )


def test_stored_sweep_is_pure_cache_hits(benchmark, tmp_path):
    """A repeated sweep answers from the store without solving."""
    gallery = GallerySpec(kind="paper", application_count=8)
    store_path = tmp_path / "results.jsonl"
    first = SweepService(store=ResultStore(store_path)).sweep(gallery)
    assert first.misses == first.use_case_count

    second = benchmark.pedantic(
        lambda: SweepService(store=ResultStore(store_path)).sweep(
            gallery
        ),
        rounds=1,
        iterations=1,
    )
    assert second.hits == second.use_case_count
    assert second.misses == 0
    benchmark.extra_info["cold_seconds"] = round(
        first.elapsed_seconds, 4
    )
    benchmark.extra_info["hit_seconds"] = round(
        second.elapsed_seconds, 4
    )
    # Store load + lookup must be far cheaper than recomputation.
    assert second.elapsed_seconds < first.elapsed_seconds
