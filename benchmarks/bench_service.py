"""Estimation-service speedup: micro-batched serving vs. serial loops.

The acceptance bar of the serving layer: concurrent clients answered
through the :class:`~repro.service.server.EstimationServer`'s
cross-request micro-batching must beat the per-request serial loop — a
naive server that answers each query with one scalar
:meth:`~repro.core.estimator.ProbabilisticEstimator.estimate` call on
the same warm engines — by >= ``REPRO_BENCH_MIN_SPEEDUP`` (3x by
default), while every served period agrees with the serial reference
to <= 1e-9 relative.

The service number includes everything the serial loop does not pay —
JSON encoding, the TCP round-trip, asyncio scheduling — so the speedup
measured here is end-to-end, not a kernel microbenchmark.  The result
cache is disabled: this bench isolates what *batching* buys; caching is
measured separately below.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from conftest import (
    MIN_SPEEDUP,
    MIN_SPEEDUP_POOL,
    MIN_SPEEDUP_ROUTER_BATCH,
    SMOKE,
    report,
)
from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.reporting import render_table
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.usecase import all_use_cases
from repro.runtime.service import GallerySpec
from repro.sdf.analysis import AnalysisMethod
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.pool import EnginePool
from repro.service.server import EstimationServer

pytest.importorskip("numpy")

#: Exhaustive query set: every non-empty use-case of the paper suite
#: (the paper-scale ten applications; smoke mode shrinks to 2^5 - 1).
APPLICATIONS = 5 if SMOKE else 10

#: Concurrent client connections sharing the query set.
CLIENTS = 8 if SMOKE else 32

#: The paper's heaviest technique: per-query analysis cost high enough
#: that the measured ratio reflects batching, not protocol noise.
MODEL = "exact"

GALLERY = GallerySpec(application_count=APPLICATIONS)


def _queries():
    """The exhaustive use-case set, round-robin across clients."""
    use_cases = list(all_use_cases(GALLERY.application_names()))
    slices = [use_cases[index::CLIENTS] for index in range(CLIENTS)]
    return use_cases, slices


def _serial_seconds(use_cases):
    """The naive server: per-request scalar estimates, warm engines."""
    suite = paper_benchmark_suite(application_count=APPLICATIONS)
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model=MODEL,
        backend="python",
    )
    best = float("inf")
    results = None
    for _ in range(1 if SMOKE else 2):
        started = time.perf_counter()
        results = [estimator.estimate(uc) for uc in use_cases]
        best = min(best, time.perf_counter() - started)
    return best, {result.use_case.label(): dict(result.periods) for result in results}


async def _served_periods(slices):
    """All queries through one micro-batching server, cache disabled.

    The pool is warmed first — the serial baseline's estimator is also
    built outside its timer, so both sides measure steady-state serving
    cost, not the one-time structural build.  Every client pipelines
    its whole slice, the pattern N independent frontends produce.
    """
    pool = EnginePool(backend="numpy")
    pool.estimator(GALLERY, MODEL, AnalysisMethod.MCR)
    server = EstimationServer(
        pool=pool,
        cache=ResultCache(0),
        batch_window=0.003,
        max_batch=512,
    )
    host, port = await server.start()
    gallery = {
        "kind": GALLERY.kind,
        "seed": GALLERY.seed,
        "applications": GALLERY.application_count,
    }
    periods = {}

    async def run_client(plan):
        client = await ServiceClient.connect(host, port)

        async def one(use_case):
            result = await client.estimate(
                use_case.applications, gallery=gallery, model=MODEL
            )
            periods[use_case.label()] = result["periods"]

        try:
            await asyncio.gather(*[one(use_case) for use_case in plan])
        finally:
            await client.aclose()

    started = time.perf_counter()
    await asyncio.gather(*[run_client(plan) for plan in slices])
    elapsed = time.perf_counter() - started
    stats = server.snapshot()
    await server.aclose()
    return elapsed, periods, stats


def _worst_relative(serial, served):
    worst = 0.0
    assert set(serial) == set(served)
    for label, periods in serial.items():
        for app, period in periods.items():
            worst = max(
                worst,
                abs(period - served[label][app]) / abs(period),
            )
    return worst


def test_service_microbatch_speedup(benchmark):
    """Micro-batched serving >= 3x over the per-request serial loop."""
    use_cases, slices = _queries()

    def run():
        serial_seconds, serial_periods = _serial_seconds(use_cases)
        # Best-of-two on the served side as well: a one-shot wall-clock
        # ratio between two differently-shaped runs is noise-prone.
        served_seconds = float("inf")
        served_periods = stats = None
        for _ in range(1 if SMOKE else 2):
            elapsed, periods, snapshot = asyncio.run(_served_periods(slices))
            if elapsed < served_seconds:
                served_seconds, served_periods, stats = (
                    elapsed,
                    periods,
                    snapshot,
                )
        return serial_seconds, serial_periods, served_seconds, served_periods, stats

    serial_seconds, serial_periods, served_seconds, served_periods, stats = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    assert len(use_cases) == 2**APPLICATIONS - 1
    worst = _worst_relative(serial_periods, served_periods)
    assert worst <= 1e-9, (
        f"service parity violated: worst relative difference {worst:.3e}"
    )
    speedup = serial_seconds / served_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched service speedup {speedup:.2f}x below "
        f"{MIN_SPEEDUP}x (serial {serial_seconds * 1e3:.1f} ms, "
        f"served {served_seconds * 1e3:.1f} ms)"
    )
    assert stats["cache"]["hits"] == 0  # cache was disabled

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["queries"] = len(use_cases)
    benchmark.extra_info["mean_batch"] = round(stats["mean_batch"], 1)
    report(
        "service_microbatch_speedup",
        render_table(
            ["quantity", "value"],
            [
                ["queries (2^N - 1)", len(use_cases)],
                ["concurrent clients", CLIENTS],
                ["per-request serial", f"{serial_seconds * 1e3:.1f} ms"],
                ["micro-batched service", f"{served_seconds * 1e3:.1f} ms"],
                ["speedup", f"{speedup:.2f}x"],
                ["worst relative difference", f"{worst:.2e}"],
                ["batches", stats["batches"]],
                ["mean batch", f"{stats['mean_batch']:.1f}"],
                ["max batch", stats["max_batch"]],
            ],
            title=(
                f"Estimation service - exhaustive {APPLICATIONS}-app "
                f"query set over {CLIENTS} clients"
            ),
        ),
    )


async def _bench_served(slices, solver_workers):
    """One timed pass of the exhaustive query set against a server in
    thread mode (``solver_workers=0``) or multiprocess-pool mode.

    Both sides are warmed with one untimed pass first (the pool's
    worker processes pay their per-process engine build there), so the
    measured ratio is steady-state serving throughput.
    """
    server = EstimationServer(
        cache=ResultCache(0),
        batch_window=0.003,
        max_batch=512,
        backend="numpy",
        solver_workers=solver_workers,
    )
    host, port = await server.start()
    gallery = {
        "kind": GALLERY.kind,
        "seed": GALLERY.seed,
        "applications": GALLERY.application_count,
    }
    periods = {}

    async def run_client(plan):
        client = await ServiceClient.connect(host, port)

        async def one(use_case):
            result = await client.estimate(
                use_case.applications, gallery=gallery, model=MODEL
            )
            periods[use_case.label()] = result["periods"]

        try:
            await asyncio.gather(*[one(use_case) for use_case in plan])
        finally:
            await client.aclose()

    async def one_pass():
        await asyncio.gather(*[run_client(plan) for plan in slices])

    try:
        await one_pass()  # warm-up: engines built, workers spawned
        started = time.perf_counter()
        await one_pass()
        elapsed = time.perf_counter() - started
        stats = server.snapshot()
    finally:
        await server.aclose()
    return elapsed, periods, stats


def test_service_pool_speedup(benchmark):
    """The multiprocess solver pool >= 2x over the single solver
    thread on the exhaustive query set, at <= 1e-9 parity."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip("solver-pool speedup needs at least 2 CPUs")
    workers = min(cpus, 4)
    use_cases, slices = _queries()

    def run():
        thread_seconds = pool_seconds = float("inf")
        thread_periods = pool_periods = pool_stats = None
        for _ in range(1 if SMOKE else 2):
            elapsed, periods, _ = asyncio.run(_bench_served(slices, 0))
            if elapsed < thread_seconds:
                thread_seconds, thread_periods = elapsed, periods
            elapsed, periods, stats = asyncio.run(
                _bench_served(slices, workers)
            )
            if elapsed < pool_seconds:
                pool_seconds, pool_periods, pool_stats = (
                    elapsed,
                    periods,
                    stats,
                )
        return (
            thread_seconds,
            thread_periods,
            pool_seconds,
            pool_periods,
            pool_stats,
        )

    thread_seconds, thread_periods, pool_seconds, pool_periods, stats = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    assert len(use_cases) == 2**APPLICATIONS - 1
    worst = _worst_relative(thread_periods, pool_periods)
    assert worst <= 1e-9, (
        f"solver-pool parity violated: worst relative difference {worst:.3e}"
    )
    speedup = thread_seconds / pool_seconds
    assert speedup >= MIN_SPEEDUP_POOL, (
        f"solver-pool speedup {speedup:.2f}x below {MIN_SPEEDUP_POOL}x "
        f"(single thread {thread_seconds * 1e3:.1f} ms, "
        f"{workers}-worker pool {pool_seconds * 1e3:.1f} ms)"
    )
    view = stats["workers"]
    solving_workers = [
        entry for entry in view["per_worker"] if entry["batches"]
    ]
    assert len(solving_workers) >= 2, "the pool never actually fanned out"
    assert view["respawns"] == 0

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["workers"] = workers
    report(
        "service_pool_speedup",
        render_table(
            ["quantity", "value"],
            [
                ["queries (2^N - 1)", len(use_cases)],
                ["concurrent clients", CLIENTS],
                ["solver workers", workers],
                ["single solver thread", f"{thread_seconds * 1e3:.1f} ms"],
                ["multiprocess pool", f"{pool_seconds * 1e3:.1f} ms"],
                ["speedup", f"{speedup:.2f}x"],
                ["worst relative difference", f"{worst:.2e}"],
                ["workers that solved", len(solving_workers)],
                ["mean batch", f"{stats['mean_batch']:.1f}"],
            ],
            title=(
                f"Solver pool - exhaustive {APPLICATIONS}-app query set, "
                f"{workers} worker processes vs one solver thread"
            ),
        ),
    )


def test_service_cache_turns_repeats_into_hits(benchmark):
    """A repeated query storm is served from the LRU cache, no solves."""

    async def run():
        server = EstimationServer(batch_window=0.001)
        host, port = await server.start()
        gallery = {"applications": APPLICATIONS}
        use_cases = list(all_use_cases(GALLERY.application_names()))
        if SMOKE:
            use_cases = use_cases[: 2**4]
        client = await ServiceClient.connect(host, port)
        try:
            for use_case in use_cases:  # fill
                await client.estimate(use_case.applications, gallery=gallery)
            solved_after_fill = server.snapshot()["solved_queries"]
            started = time.perf_counter()
            for use_case in use_cases:  # storm
                await client.estimate(use_case.applications, gallery=gallery)
            elapsed = time.perf_counter() - started
            stats = server.snapshot()
        finally:
            await client.aclose()
            await server.aclose()
        return solved_after_fill, elapsed, stats, len(use_cases)

    solved_after_fill, elapsed, stats, count = benchmark.pedantic(
        lambda: asyncio.run(run()), rounds=1, iterations=1
    )
    assert stats["solved_queries"] == solved_after_fill, (
        "repeated queries must not reach the solver"
    )
    assert stats["cache"]["hits"] >= count
    rate = count / elapsed if elapsed > 0 else float("inf")
    benchmark.extra_info["cached_queries_per_second"] = round(rate)
    report(
        "service_cache_storm",
        render_table(
            ["quantity", "value"],
            [
                ["repeated queries", count],
                ["served in", f"{elapsed * 1e3:.1f} ms"],
                ["cached queries/sec", f"{rate:.0f}"],
                ["solves during storm", 0],
            ],
            title="Estimation service - cache storm (all hits)",
        ),
    )


def _smoke_or_full(value, smoke_value):
    return smoke_value if SMOKE else value


def test_service_load_generator_reports(benchmark):
    """The seeded load generator runs end to end and reports qps."""
    from repro.experiments.service_load import LoadConfig, run_load

    config = LoadConfig(
        clients=_smoke_or_full(16, 4),
        queries_per_client=_smoke_or_full(32, 8),
        gallery=GallerySpec(
            application_count=_smoke_or_full(8, APPLICATIONS)
        ),
        cache_entries=0,
        backend="numpy",
    )
    load = benchmark.pedantic(lambda: run_load(config), rounds=1, iterations=1)
    assert load.errors == 0
    assert load.queries == config.clients * config.queries_per_client
    assert load.queries_per_second > 0
    benchmark.extra_info["qps"] = round(load.queries_per_second)
    report("service_load", load.render())


def test_service_fleet_load(benchmark):
    """The fleet topology end to end: shard router + per-shard solver
    pools under a bursty open-loop storm of many multiplexed clients."""
    from repro.experiments.service_load import LoadConfig, run_load

    config = LoadConfig(
        clients=_smoke_or_full(512, 64),
        queries_per_client=_smoke_or_full(4, 2),
        connections=_smoke_or_full(32, 8),
        shards=2,
        solver_workers=min(os.cpu_count() or 1, 2),
        arrival="bursty",
        mean_interarrival_ms=1.0,
        gallery=GallerySpec(
            application_count=_smoke_or_full(8, APPLICATIONS)
        ),
        backend="numpy",
    )
    load = benchmark.pedantic(lambda: run_load(config), rounds=1, iterations=1)
    assert load.errors == 0
    assert load.shed == 0
    assert load.queries == config.clients * config.queries_per_client
    assert load.retries == 0  # no shard died: no failovers
    benchmark.extra_info["fleet_qps"] = round(load.queries_per_second)
    benchmark.extra_info["fleet_p99_ms"] = round(load.latency_p99_ms, 2)
    report("service_fleet_load", load.render())


def test_router_batching_speedup(benchmark):
    """Router micro-batching >= 1.3x fleet qps on the fan-in storm.

    Many logical clients multiplexed over a few sockets hammer a small
    gallery set — the pattern where per-query shard hops drown the
    fleet in framing and scheduling.  The batched run coalesces those
    hops into one ``estimate_batch`` frame per shard per window; same
    storm, same seed, so the ratio isolates what the router batcher
    buys."""
    from repro.experiments.service_load import LoadConfig, run_load

    def storm(window: float):
        return run_load(
            LoadConfig(
                clients=_smoke_or_full(256, 64),
                queries_per_client=_smoke_or_full(4, 2),
                connections=8,
                shards=2,
                arrival="bursty",
                mean_interarrival_ms=0.5,
                gallery=GallerySpec(application_count=4),
                router_batch_window=window,
                backend="numpy",
            )
        )

    def run():
        return storm(0.0), storm(0.002)

    unbatched, batched = benchmark.pedantic(run, rounds=1, iterations=1)
    assert unbatched.errors == 0
    assert batched.errors == 0
    assert batched.queries == unbatched.queries
    assert batched.router is not None
    assert batched.router["batches"] >= 1
    speedup = batched.queries_per_second / unbatched.queries_per_second
    p99_reduction = 1.0 - batched.latency_p99_ms / unbatched.latency_p99_ms
    assert speedup >= MIN_SPEEDUP_ROUTER_BATCH, (
        f"router batching speedup {speedup:.2f}x below "
        f"{MIN_SPEEDUP_ROUTER_BATCH}x "
        f"(unbatched {unbatched.queries_per_second:.0f} qps, "
        f"batched {batched.queries_per_second:.0f} qps)"
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["p99_reduction"] = round(p99_reduction, 3)
    report(
        "service_router_batching",
        render_table(
            ["quantity", "unbatched", "batched"],
            [
                ["queries", unbatched.queries, batched.queries],
                [
                    "queries/sec",
                    f"{unbatched.queries_per_second:.0f}",
                    f"{batched.queries_per_second:.0f}",
                ],
                [
                    "p99 latency",
                    f"{unbatched.latency_p99_ms:.2f} ms",
                    f"{batched.latency_p99_ms:.2f} ms",
                ],
                [
                    "router hops",
                    unbatched.router["forwarded"],
                    batched.router["forwarded"],
                ],
                ["router batches", 0, batched.router["batches"]],
            ],
            title=(
                f"Router micro-batching - fan-in storm, 2 shards, "
                f"{speedup:.2f}x qps, p99 -{p99_reduction:.0%}"
            ),
        ),
    )
