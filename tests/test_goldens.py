"""Golden-regression fixtures for the paper's evaluation artefacts.

Frozen JSON snapshots of Table 1, Figure 5 and Figure 6 (at a reduced,
seconds-scale configuration) live under ``tests/goldens/``.  Any change
that moves a reproduced number by more than 1e-9 *relative* fails here —
whether it comes from a refactor, a new array backend, or an accidental
semantic change.  Because the scalar and vectorized backends agree to
well below the threshold, the same fixtures gate both
(``REPRO_BACKEND=python`` and ``=numpy`` CI axes run this file
unchanged).

Regeneration (after an *intentional* numeric change)::

    PYTHONPATH=src python -m pytest tests/test_goldens.py \
        --update-goldens

then review the fixture diff before committing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.runner import SweepConfig, run_sweep
from repro.experiments.setup import paper_benchmark_suite
from repro.experiments.table1 import run_table1
from repro.sdf.analysis import AnalysisMethod

GOLDENS_DIR = Path(__file__).parent / "goldens"

#: The frozen evaluation configuration.  Small enough for the tier-1
#: suite, large enough to exercise every technique and use-case size.
APPLICATION_COUNT = 6
SWEEP_CONFIG = SweepConfig(
    target_iterations=40, samples_per_size=6, seed=1
)
FIGURE5_ITERATIONS = 60

#: The contention-model fixture: the registry-shipped priority and
#: weighted-round-robin models on the 4-app gallery, frozen under both
#: period-analysis methods.
CONTENTION_APPLICATIONS = 4
CONTENTION_PRIORITIES = {"A": 2, "B": 1, "C": 1, "D": 0}
CONTENTION_MODELS = (
    "priority_preemptive",
    "weighted_round_robin:A=2,C=3",
)

#: Relative drift at which a golden comparison fails.  The tiny
#: absolute floor only absorbs float noise around exact zeros — it is
#: three orders below the relative term for any value above 1e-3, so
#: the gate stays genuinely relative even for sub-unit magnitudes
#: (inaccuracy percentages can be < 1).
TOLERANCE = 1e-9
ABSOLUTE_FLOOR = 1e-12


@pytest.fixture(scope="module")
def artefacts():
    """One shared sweep feeding all three golden artefacts."""
    suite = paper_benchmark_suite(
        application_count=APPLICATION_COUNT
    )
    sweep = run_sweep(suite, config=SWEEP_CONFIG)
    table1 = run_table1(suite, sweep=sweep)
    figure6 = run_figure6(suite, sweep=sweep)
    figure5 = run_figure5(
        suite, target_iterations=FIGURE5_ITERATIONS
    )
    contention_suite = paper_benchmark_suite(
        application_count=CONTENTION_APPLICATIONS
    )
    contention_mapping = contention_suite.mapping.with_priorities(
        CONTENTION_PRIORITIES
    )
    contention: dict = {}
    for model_spec in CONTENTION_MODELS:
        by_method: dict = {}
        for method in AnalysisMethod:
            estimator = ProbabilisticEstimator(
                list(contention_suite.graphs),
                mapping=contention_mapping,
                waiting_model=model_spec,
                analysis_method=method,
            )
            results = estimator.sweep_all_sizes(samples_per_size=None)
            by_method[method.value] = {
                "+".join(result.use_case): {
                    app: result.periods[app]
                    for app in result.use_case
                }
                for result in results
            }
        contention[model_spec] = by_method
    return {
        "contention_models": {
            "applications": CONTENTION_APPLICATIONS,
            "priorities": dict(CONTENTION_PRIORITIES),
            "models": contention,
        },
        "table1": {
            "use_case_count": table1.use_case_count,
            "summaries": [
                {
                    "method": summary.method,
                    "throughput_percent": summary.throughput_percent,
                    "period_percent": summary.period_percent,
                }
                for summary in table1.summaries
            ],
        },
        "figure5": {
            "applications": list(figure5.applications),
            "series": {
                name: list(values)
                for name, values in figure5.series.items()
            },
        },
        "figure6": {
            "sizes": list(figure6.sizes),
            "series": {
                name: list(values)
                for name, values in figure6.series.items()
            },
            "samples_per_size": {
                str(size): count
                for size, count in figure6.samples_per_size.items()
            },
        },
    }


def _assert_matches(golden, actual, path: str) -> None:
    """Recursive comparison; floats at :data:`TOLERANCE` relative."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), path
        assert sorted(golden) == sorted(actual), (
            f"{path}: keys differ: {sorted(golden)} vs {sorted(actual)}"
        )
        for key in golden:
            _assert_matches(golden[key], actual[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), path
        assert len(golden) == len(actual), (
            f"{path}: length {len(golden)} vs {len(actual)}"
        )
        for index, (g, a) in enumerate(zip(golden, actual)):
            _assert_matches(g, a, f"{path}[{index}]")
    elif isinstance(golden, float) or isinstance(actual, float):
        drift = abs(float(golden) - float(actual))
        bound = TOLERANCE * abs(float(golden)) + ABSOLUTE_FLOOR
        assert drift <= bound, (
            f"{path}: {actual!r} drifted from golden {golden!r} "
            f"({drift:.3e} absolute, allowed {bound:.3e} = "
            f"{TOLERANCE} relative + {ABSOLUTE_FLOOR} floor)"
        )
    else:
        assert golden == actual, (
            f"{path}: {actual!r} != golden {golden!r}"
        )


@pytest.mark.parametrize(
    "name", ["table1", "figure5", "figure6", "contention_models"]
)
def test_golden(name: str, artefacts, update_goldens: bool) -> None:
    path = GOLDENS_DIR / f"{name}.json"
    if update_goldens:
        GOLDENS_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(artefacts[name], indent=2, sort_keys=True)
            + "\n"
        )
        return
    assert path.exists(), (
        f"golden fixture {path} missing; generate it with "
        "'pytest tests/test_goldens.py --update-goldens'"
    )
    golden = json.loads(path.read_text())
    _assert_matches(golden, artefacts[name], name)
