"""Tests of the consistent-hash ring and the shard router.

The router scenarios run real fleets in-process: N TCP
:class:`~repro.service.server.EstimationServer` shards behind one
:class:`~repro.service.router.ShardRouter` front-end, spoken to through
the ordinary :class:`~repro.service.client.ServiceClient`.  Asserted on
the wire: estimate parity through the router (<= 1e-9 relative against
a direct shard), gallery→shard affinity, broadcast invalidation,
aggregated stats/metrics, and the failover contract — a shard killed
mid-run loses no client query, because estimates are idempotent and the
router retries them on the surviving shards.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ServiceError
from repro.runtime.service import GallerySpec
from repro.service.client import ServiceClient
from repro.service.hashring import HashRing, stable_hash
from repro.service.router import ShardRouter, parse_shard_address
from repro.service.server import EstimationServer

GALLERY = {"kind": "paper", "seed": 2007, "applications": 4}
SPEC = GallerySpec(kind="paper", seed=2007, application_count=4)


def names():
    return SPEC.application_names()


def gallery_payload(seed: int):
    return {"kind": "paper", "seed": seed, "applications": 4}


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # Frozen value: placement must agree across processes and
        # versions (builtin hash() is salted and would not).
        assert stable_hash("paper:2007:4") == 14628221769663690160

    def test_lookup_is_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        other = HashRing(["c", "b", "a"])  # insertion order is irrelevant
        for seed in range(50):
            key = f"paper:{seed}:4"
            assert ring.node_for(key) == other.node_for(key)

    def test_keys_spread_over_nodes(self):
        ring = HashRing(["a", "b", "c"])
        owners = {ring.node_for(f"paper:{seed}:4") for seed in range(60)}
        assert owners == {"a", "b", "c"}

    def test_removal_only_remaps_the_dead_nodes_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"paper:{seed}:4" for seed in range(200)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("b")
        for key in keys:
            after = ring.node_for(key)
            if before[key] != "b":
                assert after == before[key]
            else:
                assert after != "b"

    def test_nodes_for_orders_all_nodes_starting_at_home(self):
        ring = HashRing(["a", "b", "c"])
        for seed in range(20):
            key = f"paper:{seed}:4"
            order = ring.nodes_for(key)
            assert order[0] == ring.node_for(key)
            assert sorted(order) == ["a", "b", "c"]

    def test_rejoin_restores_placement(self):
        ring = HashRing(["a", "b"])
        before = {
            f"k{i}": ring.node_for(f"k{i}") for i in range(50)
        }
        ring.remove("a")
        ring.add("a")
        assert all(
            ring.node_for(key) == owner for key, owner in before.items()
        )

    def test_loud_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(ServiceError, match="already"):
            ring.add("a")
        with pytest.raises(ServiceError, match="not on the ring"):
            ring.remove("b")
        ring.remove("a")
        with pytest.raises(ServiceError, match="no nodes"):
            ring.node_for("k")
        with pytest.raises(ServiceError, match="replicas"):
            HashRing(replicas=0)


class TestParseShardAddress:
    def test_parses_host_and_port(self):
        assert parse_shard_address("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_rejects_malformed(self):
        with pytest.raises(ServiceError, match="host:port"):
            parse_shard_address("9000")
        with pytest.raises(ServiceError, match="non-integer"):
            parse_shard_address("host:nine")


# ----------------------------------------------------------------------
# Fleet scenarios
# ----------------------------------------------------------------------
def fleet(coroutine_factory, shards=2, **router_kwargs):
    """Run one async scenario against a fresh N-shard fleet."""

    async def scenario():
        servers = [
            EstimationServer(batch_window=0.01) for _ in range(shards)
        ]
        addresses = [await server.start() for server in servers]
        router = ShardRouter(
            addresses, **dict({"health_interval": 0.0}, **router_kwargs)
        )
        address = await router.start()
        client = await ServiceClient.connect(*address)
        try:
            return await coroutine_factory(
                client, router, servers, addresses
            )
        finally:
            await client.aclose()
            await router.aclose()
            for server in servers:
                await server.aclose()

    return asyncio.run(scenario())


class TestShardRouter:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ServiceError, match="at least one shard"):
            ShardRouter([])
        with pytest.raises(ServiceError, match="duplicate"):
            ShardRouter([("h", 1), ("h", 1)])
        with pytest.raises(ServiceError, match="health_interval"):
            ShardRouter([("h", 1)], health_interval=-1)

    def test_estimate_parity_through_the_router(self):
        async def scenario(client, router, servers, addresses):
            return await asyncio.gather(
                *[
                    client.estimate([name], gallery=GALLERY)
                    for name in names()
                ]
            )

        routed = fleet(scenario)

        # Parity against a single un-routed server on the same queries.
        async def direct_scenario():
            server = EstimationServer(batch_window=0.01)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            try:
                return await asyncio.gather(
                    *[
                        client.estimate([name], gallery=GALLERY)
                        for name in names()
                    ]
                )
            finally:
                await client.aclose()
                await server.aclose()

        direct = asyncio.run(direct_scenario())
        for a, b in zip(routed, direct):
            assert a["use_case"] == b["use_case"]
            for app, period in b["periods"].items():
                assert a["periods"][app] == pytest.approx(period, rel=1e-9)

    def test_one_gallery_lands_on_one_shard(self):
        async def scenario(client, router, servers, addresses):
            results = await asyncio.gather(
                *[
                    client.estimate([name], gallery=GALLERY)
                    for name in names()
                ]
            )
            return results, await client.stats()

        results, stats = fleet(scenario)
        shards = {result["shard"] for result in results}
        assert len(shards) == 1  # affinity
        per_shard = stats["per_shard_forwarded"]
        assert sorted(per_shard.values()) == [0, len(names())]

    def test_different_galleries_spread_over_shards(self):
        async def scenario(client, router, servers, addresses):
            results = await asyncio.gather(
                *[
                    client.estimate(
                        ["A"], gallery=gallery_payload(seed)
                    )
                    for seed in range(2000, 2012)
                ]
            )
            return {result["shard"] for result in results}

        assert len(fleet(scenario)) == 2

    def test_ping_reports_fleet_health(self):
        async def scenario(client, router, servers, addresses):
            return await client.ping()

        pong = fleet(scenario)
        assert pong["router"] is True
        assert list(pong["shards"].values()) == [True, True]

    def test_invalidate_broadcasts_to_every_shard(self):
        async def scenario(client, router, servers, addresses):
            for name in names()[:2]:
                await client.estimate([name], gallery=GALLERY)
            result = await client.invalidate(GALLERY)
            return result

        result = fleet(scenario)
        assert result["gallery"] == "paper:2007:4"
        assert len(result["shards"]) == 2
        # The home shard actually held warm state; both answered.
        answered = [
            shard
            for shard in result["shards"].values()
            if "skipped" not in shard
        ]
        assert len(answered) == 2

    def test_metrics_exposition_merges_router_counters(self):
        async def scenario(client, router, servers, addresses):
            await client.estimate([names()[0]], gallery=GALLERY)
            return await client.metrics()

        result = fleet(scenario)
        assert "repro_router_requests_total" in result["exposition"]
        assert "repro_router_forwarded_total" in result["exposition"]

    def test_unknown_op_is_an_error_response(self):
        async def scenario(client, router, servers, addresses):
            with pytest.raises(ServiceError, match="unknown op"):
                await client._call({"op": "dance"})
            return await client.ping()

        assert fleet(scenario)["pong"] is True

    def test_shutdown_op_stops_the_router_not_the_shards(self):
        async def scenario():
            servers = [EstimationServer(batch_window=0.01) for _ in range(2)]
            addresses = [await server.start() for server in servers]
            router = ShardRouter(addresses, health_interval=0.0)
            address = await router.start()
            waiter = asyncio.ensure_future(router.wait_shutdown())
            client = await ServiceClient.connect(*address)
            result = await client.shutdown()
            await client.aclose()
            await asyncio.wait_for(waiter, timeout=5)
            await router.aclose()
            # Shards survive the router.
            direct = await ServiceClient.connect(*addresses[0])
            pong = await direct.ping()
            await direct.aclose()
            for server in servers:
                await server.aclose()
            return result, pong

        result, pong = asyncio.run(scenario())
        assert result["stopping"] is True
        assert pong["pong"] is True


class TestFailover:
    def test_shard_death_mid_run_loses_no_query(self):
        """Kill the home shard while clients are mid-burst: every
        query still answers (idempotent retry on the survivor) with
        parity, and the router records the failover."""

        async def scenario(client, router, servers, addresses):
            # Learn each query's answer and the gallery's home shard
            # while both shards live.
            reference = {}
            for name in names():
                result = await client.estimate([name], gallery=GALLERY)
                reference[name] = result
            home = reference[names()[0]]["shard"]
            victim = next(
                index
                for index, address in enumerate(addresses)
                if f"{address[0]}:{address[1]}" == home
            )
            await servers[victim].aclose()  # the shard dies
            # Burst of concurrent queries straight into the dead home
            # shard — all must answer from the survivor.
            results = await asyncio.gather(
                *[
                    client.estimate([name], gallery=GALLERY)
                    for name in names()
                    for _ in range(3)
                ]
            )
            return reference, home, results, router.snapshot()

        reference, home, results, stats = fleet(scenario)
        assert len(results) == 3 * len(names())
        for result in results:
            assert result["shard"] != home
            expected = reference[result["use_case"][0]]
            for app, period in expected["periods"].items():
                assert result["periods"][app] == pytest.approx(
                    period, rel=1e-9
                )
        assert stats["shard_down"] == 1
        assert stats["retries"] >= 1
        assert stats["errors"] == 0
        assert stats["live_shards"] == 1

    def test_all_shards_down_fails_loudly(self):
        async def scenario(client, router, servers, addresses):
            for server in servers:
                await server.aclose()
            with pytest.raises(ServiceError, match="no shard could answer"):
                await client.estimate([names()[0]], gallery=GALLERY)
            with pytest.raises(ServiceError, match="no healthy shard"):
                await client.estimate([names()[0]], gallery=GALLERY)
            return router.snapshot()

        stats = fleet(scenario)
        assert stats["live_shards"] == 0
        assert stats["errors"] == 2

    def test_health_loop_resurrects_a_returned_shard(self):
        async def scenario():
            servers = [EstimationServer(batch_window=0.01) for _ in range(2)]
            addresses = [await server.start() for server in servers]
            router = ShardRouter(addresses, health_interval=0.05)
            address = await router.start()
            client = await ServiceClient.connect(*address)
            try:
                await servers[0].aclose()
                # Drive a query so the router notices the death (or the
                # health loop does — either way the shard goes down).
                await client.estimate([names()[0]], gallery=GALLERY)
                deadline = asyncio.get_running_loop().time() + 5
                while router.shard_health()[
                    f"{addresses[0][0]}:{addresses[0][1]}"
                ]:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                # The shard comes back on the same port...
                servers[0] = EstimationServer(batch_window=0.01)
                await servers[0].start(
                    host=addresses[0][0], port=addresses[0][1]
                )
                # ...and the health loop re-adds it to the ring.
                while not router.shard_health()[
                    f"{addresses[0][0]}:{addresses[0][1]}"
                ]:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                result = await client.estimate(
                    [names()[0]], gallery=GALLERY
                )
                return result, router.snapshot()
            finally:
                await client.aclose()
                await router.aclose()
                for server in servers:
                    await server.aclose()

        result, stats = asyncio.run(scenario())
        assert result["periods"]
        assert stats["shard_down"] == 1
        assert stats["shard_up"] == 1
        assert stats["live_shards"] == 2


