"""Blocking probability / average blocking time tests (Definitions 4-5)."""

from __future__ import annotations

import pytest

from repro.core.blocking import (
    average_blocking_time,
    blocking_probability,
    build_profile,
    build_profiles,
)
from repro.exceptions import AnalysisError


class TestBlockingProbability:
    def test_paper_value(self):
        # P(a0) = 100 * 1 / 300 = 1/3 (Definition 4).
        assert blocking_probability(100, 1, 300) == pytest.approx(1 / 3)

    def test_repetitions_multiply(self):
        # a1: tau=50, q=2, Per=300 -> P = 1/3.
        assert blocking_probability(50, 2, 300) == pytest.approx(1 / 3)

    def test_full_utilization_capped_at_one(self):
        assert blocking_probability(300, 1, 300) == 1.0

    def test_rejects_overloaded_actor(self):
        with pytest.raises(AnalysisError):
            blocking_probability(301, 1, 300)

    def test_rejects_bad_period(self):
        with pytest.raises(AnalysisError):
            blocking_probability(10, 1, 0)

    def test_rejects_bad_repetitions(self):
        with pytest.raises(AnalysisError):
            blocking_probability(10, 0, 100)


class TestAverageBlockingTime:
    def test_half_of_execution_time(self):
        # mu = tau / 2 (Eq. 2, uniform arrival over the execution).
        assert average_blocking_time(100) == 50.0

    def test_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            average_blocking_time(0)


class TestProfiles:
    def test_paper_profiles(self, two_apps):
        profiles = build_profiles(list(two_apps))
        # All six actors have P = 1/3 (Section 3.1).
        for profile in profiles.values():
            assert profile.probability == pytest.approx(1 / 3)
        # mu values: [50 25 50] for A and [25 50 50] for B.
        assert profiles[("A", "a0")].mu == 50
        assert profiles[("A", "a1")].mu == 25
        assert profiles[("A", "a2")].mu == 50
        assert profiles[("B", "b0")].mu == 25
        assert profiles[("B", "b1")].mu == 50
        assert profiles[("B", "b2")].mu == 50

    def test_waiting_product(self):
        profile = build_profile("A", "a0", tau=100, repetitions=1, period=300)
        assert profile.waiting_product == pytest.approx(50 / 3)

    def test_periods_override(self, app_a):
        profiles = build_profiles([app_a], periods={"A": 600.0})
        assert profiles[("A", "a0")].probability == pytest.approx(1 / 6)

    def test_mu_override(self, app_a):
        profiles = build_profiles([app_a], mus={("A", "a0"): 77.0})
        assert profiles[("A", "a0")].mu == 77.0
        assert profiles[("A", "a1")].mu == 25.0

    def test_with_period_rederives_probability(self):
        profile = build_profile("A", "x", tau=100, repetitions=1, period=300)
        rescaled = profile.with_period(600.0)
        assert rescaled.probability == pytest.approx(1 / 6)
        assert rescaled.mu == profile.mu
