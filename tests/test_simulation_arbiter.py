"""Arbitration policy unit tests."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.simulation.arbiter import (
    FCFSArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


class TestFCFS:
    def test_serves_in_arrival_order(self):
        arbiter = FCFSArbiter([1, 2, 3])
        arbiter.enqueue(3, 10.0)
        arbiter.enqueue(1, 5.0)
        arbiter.enqueue(2, 7.0)
        assert [arbiter.pick() for _ in range(3)] == [1, 2, 3]

    def test_ties_break_on_actor_id(self):
        arbiter = FCFSArbiter([1, 2, 3])
        arbiter.enqueue(3, 5.0)
        arbiter.enqueue(1, 5.0)
        assert arbiter.pick() == 1
        assert arbiter.pick() == 3

    def test_empty_returns_none(self):
        assert FCFSArbiter([1]).pick() is None

    def test_pending_counts(self):
        arbiter = FCFSArbiter([1, 2])
        assert arbiter.pending() == 0
        arbiter.enqueue(1, 0.0)
        arbiter.enqueue(2, 0.0)
        assert arbiter.pending() == 2
        arbiter.pick()
        assert arbiter.pending() == 1


class TestRoundRobin:
    def test_serves_in_member_order(self):
        arbiter = RoundRobinArbiter([10, 20, 30])
        for actor in (30, 10, 20):
            arbiter.enqueue(actor, 0.0)
        assert [arbiter.pick() for _ in range(3)] == [10, 20, 30]

    def test_skips_absent_members(self):
        arbiter = RoundRobinArbiter([10, 20, 30])
        arbiter.enqueue(30, 0.0)
        assert arbiter.pick() == 30

    def test_position_advances(self):
        arbiter = RoundRobinArbiter([10, 20])
        arbiter.enqueue(10, 0.0)
        assert arbiter.pick() == 10
        arbiter.enqueue(10, 1.0)
        arbiter.enqueue(20, 1.0)
        # Pointer sits after 10, so 20 is served first.
        assert arbiter.pick() == 20
        assert arbiter.pick() == 10

    def test_non_member_rejected(self):
        arbiter = RoundRobinArbiter([10])
        with pytest.raises(MappingError):
            arbiter.enqueue(99, 0.0)


class TestPriority:
    def test_member_order_is_priority(self):
        arbiter = PriorityArbiter([7, 8, 9])
        arbiter.enqueue(9, 0.0)
        arbiter.enqueue(7, 1.0)
        assert arbiter.pick() == 7
        assert arbiter.pick() == 9


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_arbiter("fcfs", [1]), FCFSArbiter)
        assert isinstance(
            make_arbiter("round_robin", [1]), RoundRobinArbiter
        )
        assert isinstance(make_arbiter("priority", [1]), PriorityArbiter)

    def test_unknown_policy(self):
        with pytest.raises(MappingError):
            make_arbiter("random", [1])
