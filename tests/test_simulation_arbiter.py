"""Arbitration policy unit tests."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.simulation.arbiter import (
    ArbiterContext,
    FCFSArbiter,
    PreemptivePriorityArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)


class TestFCFS:
    def test_serves_in_arrival_order(self):
        arbiter = FCFSArbiter([1, 2, 3])
        arbiter.enqueue(3, 10.0)
        arbiter.enqueue(1, 5.0)
        arbiter.enqueue(2, 7.0)
        assert [arbiter.pick() for _ in range(3)] == [1, 2, 3]

    def test_ties_break_on_actor_id(self):
        arbiter = FCFSArbiter([1, 2, 3])
        arbiter.enqueue(3, 5.0)
        arbiter.enqueue(1, 5.0)
        assert arbiter.pick() == 1
        assert arbiter.pick() == 3

    def test_empty_returns_none(self):
        assert FCFSArbiter([1]).pick() is None

    def test_pending_counts(self):
        arbiter = FCFSArbiter([1, 2])
        assert arbiter.pending() == 0
        arbiter.enqueue(1, 0.0)
        arbiter.enqueue(2, 0.0)
        assert arbiter.pending() == 2
        arbiter.pick()
        assert arbiter.pending() == 1


class TestRoundRobin:
    def test_serves_in_member_order(self):
        arbiter = RoundRobinArbiter([10, 20, 30])
        for actor in (30, 10, 20):
            arbiter.enqueue(actor, 0.0)
        assert [arbiter.pick() for _ in range(3)] == [10, 20, 30]

    def test_skips_absent_members(self):
        arbiter = RoundRobinArbiter([10, 20, 30])
        arbiter.enqueue(30, 0.0)
        assert arbiter.pick() == 30

    def test_position_advances(self):
        arbiter = RoundRobinArbiter([10, 20])
        arbiter.enqueue(10, 0.0)
        assert arbiter.pick() == 10
        arbiter.enqueue(10, 1.0)
        arbiter.enqueue(20, 1.0)
        # Pointer sits after 10, so 20 is served first.
        assert arbiter.pick() == 20
        assert arbiter.pick() == 10

    def test_non_member_rejected(self):
        arbiter = RoundRobinArbiter([10])
        with pytest.raises(MappingError):
            arbiter.enqueue(99, 0.0)


class TestPriority:
    def test_member_order_is_priority(self):
        arbiter = PriorityArbiter([7, 8, 9])
        arbiter.enqueue(9, 0.0)
        arbiter.enqueue(7, 1.0)
        assert arbiter.pick() == 7
        assert arbiter.pick() == 9


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_arbiter("fcfs", [1]), FCFSArbiter)
        assert isinstance(
            make_arbiter("round_robin", [1]), RoundRobinArbiter
        )
        assert isinstance(make_arbiter("priority", [1]), PriorityArbiter)

    def test_unknown_policy(self):
        with pytest.raises(MappingError):
            make_arbiter("random", [1])


class TestWeightedRoundRobin:
    def test_all_weights_one_behaves_like_round_robin(self):
        members = [1, 2, 3]
        wrr = WeightedRoundRobinArbiter(members)
        rr = RoundRobinArbiter(members)
        import random

        rng = random.Random(3)
        for step in range(200):
            actor = rng.choice(members)
            wrr.enqueue(actor, float(step))
            rr.enqueue(actor, float(step))
            if rng.random() < 0.6:
                assert wrr.pick() == rr.pick()
        while rr.pending():
            assert wrr.pick() == rr.pick()

    def test_weighted_member_gets_consecutive_grants(self):
        context = ArbiterContext(weights={1: 2})
        arbiter = WeightedRoundRobinArbiter([1, 2], context)
        arbiter.enqueue(1, 0.0)
        arbiter.enqueue(2, 0.0)
        assert arbiter.pick() == 1
        arbiter.enqueue(1, 1.0)  # re-request within its allocation
        assert arbiter.pick() == 1
        assert arbiter.pick() == 2

    def test_unused_allocation_is_forfeited(self):
        context = ArbiterContext(weights={1: 3})
        arbiter = WeightedRoundRobinArbiter([1, 2], context)
        arbiter.enqueue(1, 0.0)
        arbiter.enqueue(2, 0.0)
        assert arbiter.pick() == 1
        # 1 does not re-request: the rotation moves on to 2.
        assert arbiter.pick() == 2
        arbiter.enqueue(1, 2.0)
        # Fresh visit, fresh allocation.
        assert arbiter.pick() == 1

    def test_membership_enforced(self):
        arbiter = WeightedRoundRobinArbiter([1, 2])
        with pytest.raises(MappingError):
            arbiter.enqueue(9, 0.0)

    def test_bad_weight_rejected(self):
        with pytest.raises(MappingError):
            WeightedRoundRobinArbiter(
                [1], ArbiterContext(weights={1: 0})
            )


class TestPreemptivePriority:
    def test_picks_highest_priority(self):
        context = ArbiterContext(priorities={1: 0.0, 2: 2.0, 3: 1.0})
        arbiter = PreemptivePriorityArbiter([1, 2, 3], context)
        arbiter.enqueue(1, 0.0)
        arbiter.enqueue(2, 1.0)
        arbiter.enqueue(3, 2.0)
        assert [arbiter.pick() for _ in range(3)] == [2, 3, 1]

    def test_equal_priorities_fall_back_to_fcfs(self):
        arbiter = PreemptivePriorityArbiter([1, 2, 3])
        arbiter.enqueue(3, 5.0)
        arbiter.enqueue(1, 7.0)
        arbiter.enqueue(2, 5.0)
        assert [arbiter.pick() for _ in range(3)] == [2, 3, 1]

    def test_preempts_only_strictly_higher(self):
        context = ArbiterContext(priorities={1: 1.0, 2: 1.0, 3: 2.0})
        arbiter = PreemptivePriorityArbiter([1, 2, 3], context)
        arbiter.enqueue(2, 0.0)
        assert not arbiter.preempts(1)  # equal priority: no preemption
        arbiter.enqueue(3, 1.0)
        assert arbiter.preempts(1)
        assert not arbiter.preempts(3)

    def test_idle_queue_never_preempts(self):
        arbiter = PreemptivePriorityArbiter([1, 2])
        assert not arbiter.preempts(1)


class TestContextDispatch:
    def test_factory_builds_registered_policies(self):
        context = ArbiterContext(
            priorities={1: 1.0}, weights={1: 2}
        )
        assert isinstance(
            make_arbiter("weighted_round_robin", [1], context),
            WeightedRoundRobinArbiter,
        )
        assert isinstance(
            make_arbiter("wrr", [1], context),
            WeightedRoundRobinArbiter,
        )
        assert isinstance(
            make_arbiter("priority_preemptive", [1], context),
            PreemptivePriorityArbiter,
        )

    def test_priority_arbiter_uses_context_priorities(self):
        context = ArbiterContext(priorities={9: 5.0})
        arbiter = PriorityArbiter([7, 9], context)
        arbiter.enqueue(7, 0.0)
        arbiter.enqueue(9, 1.0)
        assert arbiter.pick() == 9

    def test_only_preemptive_policies_flag_it(self):
        assert PreemptivePriorityArbiter([1]).preemptive
        for arbiter in (
            FCFSArbiter([1]),
            RoundRobinArbiter([1]),
            WeightedRoundRobinArbiter([1]),
            PriorityArbiter([1]),
        ):
            assert not arbiter.preemptive
