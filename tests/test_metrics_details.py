"""Detailed tests of the measurement layer (pattern detection etc.)."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError
from repro.simulation.metrics import (
    IterationTracker,
    _steady_pattern,
    metrics_from_completions,
)


class TestSteadyPattern:
    def test_constant_gaps(self):
        assert _steady_pattern([10.0] * 8) == [10.0]

    def test_period_two_cycle(self):
        gaps = [244.0, 594.0] * 6
        pattern = _steady_pattern(gaps)
        assert sorted(pattern) == [244.0, 594.0]

    def test_transient_then_cycle(self):
        gaps = [999.0, 123.0] + [10.0, 20.0, 30.0] * 4
        pattern = _steady_pattern(gaps)
        assert pattern is not None
        assert sum(pattern) / len(pattern) == pytest.approx(20.0)

    def test_no_pattern_in_noise(self):
        gaps = [float(x) for x in (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8)]
        assert _steady_pattern(gaps) is None

    def test_two_repetitions_suffice_when_window_is_small(self):
        gaps = [7.0, 9.0, 7.0, 9.0]
        pattern = _steady_pattern(gaps)
        assert pattern is not None
        assert sum(pattern) / len(pattern) == pytest.approx(8.0)

    def test_tolerance_rejects_drifting_gaps(self):
        gaps = [10.0, 10.001, 10.002, 10.003, 10.004, 10.005]
        assert _steady_pattern(gaps) is None


class TestMetricsFromCompletions:
    def test_pattern_average_beats_endpoint_bias(self):
        # 2-cycle of 100/300 over an odd window: the pattern-aware
        # average must return exactly 200.
        times = []
        t = 0.0
        for i in range(13):
            t += 100.0 if i % 2 == 0 else 300.0
            times.append(t)
        metrics = metrics_from_completions("X", times)
        assert metrics.average_period == pytest.approx(200.0)
        assert metrics.worst_period == pytest.approx(300.0)
        assert metrics.best_period == pytest.approx(100.0)

    def test_warmup_excluded_from_worst(self):
        # A giant cold-start iteration must not poison the worst-case
        # statistic once the warmup removes it.
        times = [1000.0] + [1000.0 + 10.0 * i for i in range(1, 16)]
        metrics = metrics_from_completions(
            "X", times, warmup_fraction=0.25
        )
        assert metrics.worst_period == pytest.approx(10.0)

    def test_warmup_floor_keeps_minimum_samples(self):
        times = [float(10 * i) for i in range(1, 7)]
        metrics = metrics_from_completions(
            "X", times, warmup_fraction=0.9
        )
        assert metrics.average_period == pytest.approx(10.0)


class TestIterationTracker:
    def test_minimum_over_actors(self):
        tracker = IterationTracker({"a": 1, "b": 2})
        tracker.record_firing("a", 10.0)
        assert tracker.iterations_completed == 0
        tracker.record_firing("b", 20.0)
        assert tracker.iterations_completed == 0
        tracker.record_firing("b", 30.0)
        assert tracker.iterations_completed == 1
        assert tracker.completion_times == [30.0]

    def test_completion_time_is_binding_firing(self):
        tracker = IterationTracker({"a": 1, "b": 1})
        tracker.record_firing("b", 5.0)
        tracker.record_firing("a", 8.0)
        assert tracker.completion_times == [8.0]

    def test_empty_quotas_rejected(self):
        with pytest.raises(AnalysisError):
            IterationTracker({})
