"""Discrete-event engine tests: semantics, metrics, invariants."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError, DeadlockError
from repro.platform.mapping import Mapping, index_mapping
from repro.platform.platform import Platform
from repro.sdf.analysis import period
from repro.sdf.builder import GraphBuilder
from repro.simulation.engine import SimulationConfig, Simulator, simulate
from repro.simulation.metrics import metrics_from_completions
from repro.simulation.trace import assert_mutual_exclusion, format_gantt


class TestSingleApplication:
    def test_isolated_app_measures_analytical_period(self, app_a):
        result = simulate(
            [app_a], config=SimulationConfig(target_iterations=30)
        )
        assert result.period_of("A") == pytest.approx(period(app_a))

    def test_random_graphs_match_analysis(self):
        from repro.generation.random_sdf import random_sdf_graph

        for seed in (1, 5, 9):
            graph = random_sdf_graph("G", seed=seed)
            result = simulate(
                [graph], config=SimulationConfig(target_iterations=40)
            )
            assert result.period_of("G") == pytest.approx(
                period(graph), rel=1e-9
            )

    def test_worst_equals_average_in_steady_isolation(self, app_a):
        result = simulate(
            [app_a], config=SimulationConfig(target_iterations=30)
        )
        metrics = result.metrics["A"]
        assert metrics.worst_period == pytest.approx(
            metrics.average_period
        )


class TestTwoApplications:
    def test_paper_pair_achieves_300_in_practice(self, two_apps):
        # Section 3.1: "the period that these application graphs would
        # achieve in practice is only 300 time units".
        result = simulate(
            list(two_apps),
            config=SimulationConfig(target_iterations=100),
        )
        assert result.period_of("A") == pytest.approx(300.0)
        assert result.period_of("B") == pytest.approx(300.0)

    def test_dedicated_processors_remove_interference(self, two_apps):
        graphs = list(two_apps)
        platform = Platform.homogeneous(6)
        bindings = {
            "A": {"a0": "proc0", "a1": "proc1", "a2": "proc2"},
            "B": {"b0": "proc3", "b1": "proc4", "b2": "proc5"},
        }
        result = simulate(
            graphs,
            mapping=Mapping(platform, bindings),
            config=SimulationConfig(target_iterations=30),
        )
        assert result.period_of("A") == pytest.approx(300.0)
        assert result.period_of("B") == pytest.approx(300.0)

    def test_contention_never_beats_isolation(self, two_apps):
        result = simulate(
            list(two_apps),
            config=SimulationConfig(target_iterations=60),
        )
        for name in ("A", "B"):
            assert result.period_of(name) >= 300.0 - 1e-9


class TestDeterminism:
    def test_repeated_runs_identical(self, two_apps):
        def run():
            return simulate(
                list(two_apps),
                config=SimulationConfig(
                    target_iterations=50, record_trace=True
                ),
            )

        first, second = run(), run()
        assert first.period_of("A") == second.period_of("A")
        assert first.trace == second.trace

    def test_application_order_changes_nothing_measurable(self, two_apps):
        a, b = two_apps
        config = SimulationConfig(target_iterations=60)
        mapping = index_mapping([a, b])
        forward = simulate([a, b], mapping=mapping, config=config)
        backward = simulate([b, a], mapping=mapping, config=config)
        assert forward.period_of("A") == pytest.approx(
            backward.period_of("A"), rel=5e-2
        )


class TestInvariants:
    def test_mutual_exclusion_on_processors(self, two_apps):
        result = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=40, record_trace=True
            ),
        )
        assert_mutual_exclusion(result.trace)

    def test_trace_durations_match_execution_times(self, two_apps):
        graphs = {g.name: g for g in two_apps}
        result = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=20, record_trace=True
            ),
        )
        for entry in result.trace:
            expected = graphs[entry.application].execution_time(entry.actor)
            assert entry.end - entry.start == pytest.approx(expected)

    def test_firing_counts_respect_repetition_ratio(self, two_apps):
        from repro.sdf.repetition import repetition_vector

        result = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=30, record_trace=True
            ),
        )
        fires = {}
        for entry in result.trace:
            key = (entry.application, entry.actor)
            fires[key] = fires.get(key, 0) + 1
        q = repetition_vector(two_apps[0])
        # a1 fires twice per a0 firing (+/- one in-flight iteration).
        assert abs(fires[("A", "a1")] - 2 * fires[("A", "a0")]) <= 2


class TestArbitrationPolicies:
    @pytest.mark.parametrize(
        "policy", ["fcfs", "round_robin", "priority"]
    )
    def test_all_policies_complete(self, two_apps, policy):
        result = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=30, arbitration=policy
            ),
        )
        assert result.period_of("A") > 0
        assert result.period_of("B") > 0


class TestStopConditions:
    def test_horizon_stop(self, app_a):
        result = simulate(
            [app_a],
            config=SimulationConfig(
                target_iterations=None, horizon=300.0 * 50
            ),
        )
        assert result.metrics["A"].iterations >= 40

    def test_config_requires_some_stop(self):
        with pytest.raises(AnalysisError):
            SimulationConfig(target_iterations=None, horizon=None)

    def test_too_few_iterations_rejected(self):
        with pytest.raises(AnalysisError):
            SimulationConfig(target_iterations=2)

    def test_horizon_too_short_raises(self, app_a):
        with pytest.raises(AnalysisError):
            simulate(
                [app_a],
                config=SimulationConfig(
                    target_iterations=None, horizon=500.0
                ),
            )


class TestValidation:
    def test_duplicate_app_names_rejected(self, app_a):
        with pytest.raises(AnalysisError):
            Simulator([app_a, app_a.renamed("A")])

    def test_needs_at_least_one_app(self):
        with pytest.raises(AnalysisError):
            Simulator([])

    def test_dead_graph_rejected_up_front(self):
        dead = (
            GraphBuilder("dead")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        with pytest.raises(DeadlockError):
            Simulator([dead])


class TestMetricsHelpers:
    def test_average_and_worst(self):
        completions = [10.0, 20.0, 35.0, 45.0, 60.0, 70.0, 80.0, 90.0]
        metrics = metrics_from_completions(
            "X", completions, warmup_fraction=0.25
        )
        assert metrics.application == "X"
        assert metrics.worst_period >= metrics.average_period
        assert metrics.best_period <= metrics.average_period

    def test_too_few_iterations_raises(self):
        with pytest.raises(AnalysisError):
            metrics_from_completions("X", [1.0, 2.0])

    def test_throughput_inverse(self):
        completions = [float(10 * i) for i in range(1, 12)]
        metrics = metrics_from_completions("X", completions)
        assert metrics.average_throughput == pytest.approx(
            1.0 / metrics.average_period
        )


class TestGantt:
    def test_format_contains_processors(self, two_apps):
        result = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=5, record_trace=True
            ),
        )
        text = format_gantt(result.trace, time_limit=600)
        assert "proc0" in text
        assert "proc1" in text

    def test_empty_trace(self):
        assert format_gantt([]) == "(empty trace)"


class TestPreemptiveExecution:
    """Engine semantics under the preemptive-priority arbiter."""

    @staticmethod
    def _ring(name: str, taus, prefix="t"):
        builder = GraphBuilder(name)
        names = [f"{prefix}{i}" for i in range(len(taus))]
        for actor, tau in zip(names, taus):
            builder.actor(actor, tau)
        for i, actor in enumerate(names):
            nxt = names[(i + 1) % len(names)]
            builder.channel(
                actor, nxt,
                initial_tokens=1 if i == len(names) - 1 else 0,
            )
        return builder.build()

    def _shared_node_setup(self):
        """H's first actor and L's only actor share processor proc0.

        H = h0(10) -> h1(40) ring: h0 wants proc0 for 10 out of every
        ~50 units.  L = l0(100) self-ring hogging proc0 otherwise.
        """
        high = self._ring("H", [10, 40], prefix="h")
        low = self._ring("L", [100], prefix="l")
        platform = Platform.homogeneous(2)
        mapping = Mapping(
            platform,
            {
                "H": {"h0": "proc0", "h1": "proc1"},
                "L": {"l0": "proc0"},
            },
            priorities={"H": 1, "L": 0},
        )
        return [high, low], mapping

    def test_highest_priority_actor_never_waits(self):
        graphs, mapping = self._shared_node_setup()
        result = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=50,
                arbitration="priority_preemptive",
            ),
        ).run()
        h0 = result.waiting[("H", "h0")]
        assert h0.maximum == pytest.approx(0.0, abs=1e-9)
        # Under FCFS the same actor waits behind l0's firings.
        fcfs = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(target_iterations=50),
        ).run()
        assert fcfs.waiting[("H", "h0")].maximum > 1.0

    def test_preempted_work_is_conserved(self):
        """Every L iteration still executes exactly tau time units,
        split across resume segments."""
        graphs, mapping = self._shared_node_setup()
        result = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=30,
                arbitration="priority_preemptive",
                record_trace=True,
            ),
        ).run()
        assert_mutual_exclusion(result.trace)
        segments = [
            entry for entry in result.trace
            if entry.application == "L"
        ]
        firings = result.waiting[("L", "l0")].samples
        # Preemption splits firings into more segments than grants.
        assert len(segments) > firings
        executed = sum(e.end - e.start for e in segments)
        completed = result.metrics["L"].iterations
        # All *completed* iterations executed 100 units each; at most
        # one firing is still in flight at the end of the run.
        assert executed >= 100.0 * completed - 1e-6
        assert executed <= 100.0 * (completed + 1) + 1e-6

    def test_flat_priorities_reproduce_fcfs_exactly(self, two_apps):
        mapping = index_mapping(list(two_apps))
        fcfs = Simulator(
            list(two_apps),
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=40, record_trace=True
            ),
        ).run()
        flat = Simulator(
            list(two_apps),
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=40,
                arbitration="priority_preemptive",
                record_trace=True,
            ),
        ).run()
        assert flat.trace == fcfs.trace
        for name in ("A", "B"):
            assert flat.period_of(name) == fcfs.period_of(name)

    def test_preemptive_run_is_deterministic(self):
        graphs, mapping = self._shared_node_setup()
        config = SimulationConfig(
            target_iterations=25,
            arbitration="priority_preemptive",
            record_trace=True,
        )
        first = Simulator(graphs, mapping=mapping, config=config).run()
        second = Simulator(graphs, mapping=mapping, config=config).run()
        assert first.trace == second.trace
        assert first.events_processed == second.events_processed


class TestArbitrationParams:
    def test_weighted_round_robin_params_reach_the_arbiter(self, two_apps):
        result = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=20,
                arbitration="weighted_round_robin",
                arbitration_params={"weights": {"A": 2}},
            ),
        )
        assert result.metrics["A"].iterations >= 20

    def test_unknown_param_key_rejected(self, two_apps):
        with pytest.raises(Exception) as excinfo:
            simulate(
                list(two_apps),
                config=SimulationConfig(
                    target_iterations=20,
                    arbitration="weighted_round_robin",
                    arbitration_params={"wieghts": {"A": 2}},
                ),
            )
        assert "arbitration_params" in str(excinfo.value)

    def test_unknown_weight_application_rejected(self, two_apps):
        with pytest.raises(Exception) as excinfo:
            simulate(
                list(two_apps),
                config=SimulationConfig(
                    target_iterations=20,
                    arbitration="weighted_round_robin",
                    arbitration_params={"weights": {"Z": 2}},
                ),
            )
        assert "unknown applications" in str(excinfo.value)

    def test_bad_weight_value_rejected(self, two_apps):
        with pytest.raises(Exception) as excinfo:
            simulate(
                list(two_apps),
                config=SimulationConfig(
                    target_iterations=20,
                    arbitration="weighted_round_robin",
                    arbitration_params={"weights": {"A": 0}},
                ),
            )
        assert "integer >= 1" in str(excinfo.value)


class TestWeightBlindPolicies:
    def test_weights_for_a_weight_blind_policy_are_rejected(
        self, two_apps
    ):
        """Weights that the chosen arbiter would silently ignore must
        fail loudly instead of producing unweighted results."""
        for policy in ("fcfs", "round_robin", "priority_preemptive"):
            with pytest.raises(Exception) as excinfo:
                simulate(
                    list(two_apps),
                    config=SimulationConfig(
                        target_iterations=20,
                        arbitration=policy,
                        arbitration_params={"weights": {"A": 3}},
                    ),
                )
            assert "does not consume" in str(excinfo.value), policy
