"""The ``place`` service verb, end to end.

The contract under test: a placement search served over the wire — by
one :class:`~repro.service.server.EstimationServer` or through a
router-fronted fleet of shards — returns a
:class:`~repro.search.result.PlacementResult` JSON document that is
*byte-identical* to the in-process :func:`repro.search.place` call
with the same parameters.  Seeded determinism is what makes the verb
idempotent, so the router may retry it on a surviving shard after a
failure without changing the answer.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import ServiceError
from repro.runtime.service import GallerySpec
from repro.search import place
from repro.service.client import ServiceClient
from repro.service.router import ShardRouter
from repro.service.server import EstimationServer

GALLERY = {"kind": "paper", "seed": 2007, "applications": 4}
SPEC = GallerySpec(kind="paper", seed=2007, application_count=4)

PLACE_ARGS = dict(strategy="greedy", slack=4.5, seed=0)


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def local_placement(**overrides) -> str:
    """The in-process reference answer, canonically serialized."""
    suite = SPEC.build()
    kwargs = dict(
        platform=suite.platform,
        strategy="greedy",
        model="wrr",
        objective="total_period",
        seed=0,
        slack=4.5,
        weight_choices=(1, 2),
    )
    kwargs.update(overrides)
    return place(list(suite.graphs), **kwargs).to_json_str()


def serve(coroutine_factory, **server_kwargs):
    """Run one async scenario against a fresh TCP server."""

    async def scenario():
        server = EstimationServer(**server_kwargs)
        host, port = await server.start()
        try:
            return await coroutine_factory(server, host, port)
        finally:
            await server.aclose()

    return asyncio.run(scenario())


def serve_fleet(coroutine_factory, shard_count=2):
    """Run one async scenario against a router-fronted fleet."""

    async def scenario():
        shards = [EstimationServer() for _ in range(shard_count)]
        addresses = [await shard.start() for shard in shards]
        router = ShardRouter(addresses, health_interval=0.0)
        host, port = await router.start()
        try:
            return await coroutine_factory(router, shards, host, port)
        finally:
            await router.aclose()
            for shard in shards:
                await shard.aclose()

    return asyncio.run(scenario())


class TestPlaceVerb:
    def test_server_placement_is_byte_identical_to_in_process(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                return await client.place(gallery=GALLERY, **PLACE_ARGS)
            finally:
                await client.aclose()

        result = serve(scenario)
        assert result["gallery"] == "paper:2007:4"
        assert result["strategy"] == "greedy"
        assert canonical(result["placement"]) == local_placement()

    def test_every_strategy_round_trips(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                answers = {}
                for strategy in ("exhaustive", "greedy", "local_search"):
                    answers[strategy] = await client.place(
                        gallery=GALLERY, strategy=strategy, slack=4.5, seed=7
                    )
                return answers
            finally:
                await client.aclose()

        answers = serve(scenario)
        for strategy, result in answers.items():
            expected = local_placement(strategy=strategy, seed=7)
            assert canonical(result["placement"]) == expected
            assert result["placement"]["feasible"] is True

    def test_place_counts_in_server_metrics(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                await client.place(gallery=GALLERY, **PLACE_ARGS)
                return await client.metrics()
            finally:
                await client.aclose()

        metrics = serve(scenario)
        assert "repro_service_place_requests_total 1" in metrics["exposition"]

    def test_trace_id_is_echoed(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                return await client.place(
                    gallery=GALLERY, trace="trace-9", **PLACE_ARGS
                )
            finally:
                await client.aclose()

        result = serve(scenario)
        assert result["trace"] == "trace-9"

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"strategy": "annealing"}, "strategy"),
            ({"objective": "latency"}, "objective"),
            ({"model": "wrr:Z=2"}, "waiting model"),
            ({"targets": {"Zed": 100.0}}, "target"),
            ({"mappings": ["zigzag"]}, "mapping"),
            ({"slack": 1.0}, "slack"),
            ({"method": "psychic"}, "method"),
        ],
    )
    def test_invalid_queries_fail_at_the_edge(self, overrides, fragment):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                kwargs = dict(PLACE_ARGS)
                kwargs.update(overrides)
                with pytest.raises(ServiceError, match=fragment):
                    await client.place(gallery=GALLERY, **kwargs)
                # The connection survives a rejected request.
                return await client.ping()
            finally:
                await client.aclose()

        assert serve(scenario)["pong"] is True


class TestPlaceThroughRouter:
    def test_routed_placement_is_byte_identical_to_in_process(self):
        """The acceptance round-trip: router -> 2 shards -> byte parity."""

        async def scenario(router, shards, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                return await client.place(gallery=GALLERY, **PLACE_ARGS)
            finally:
                await client.aclose()

        result = serve_fleet(scenario, shard_count=2)
        assert canonical(result["placement"]) == local_placement()
        assert result["shard"]  # stamped by the router

    def test_placements_follow_gallery_affinity(self):
        async def scenario(router, shards, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                first = await client.place(gallery=GALLERY, **PLACE_ARGS)
                second = await client.place(gallery=GALLERY, **PLACE_ARGS)
                return first, second
            finally:
                await client.aclose()

        first, second = serve_fleet(scenario, shard_count=3)
        assert first["shard"] == second["shard"]

    def test_failover_reruns_the_search_on_a_survivor(self):
        """Kill the home shard; the verb is idempotent, so the retry on
        a surviving shard must return the identical document."""

        async def scenario(router, shards, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                before = await client.place(gallery=GALLERY, **PLACE_ARGS)
                home = before["shard"]
                for shard in shards:
                    if "%s:%s" % shard.address == home:
                        await shard.aclose()
                after = await client.place(gallery=GALLERY, **PLACE_ARGS)
                return before, after
            finally:
                await client.aclose()

        before, after = serve_fleet(scenario, shard_count=2)
        assert after["shard"] != before["shard"]
        assert canonical(after["placement"]) == canonical(before["placement"])
        assert canonical(after["placement"]) == local_placement()

    def test_router_rejects_invalid_queries_before_forwarding(self):
        async def scenario(router, shards, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="strategy"):
                    await client.place(gallery=GALLERY, strategy="annealing")
                return [shard.snapshot() for shard in shards]
            finally:
                await client.aclose()

        snapshots = serve_fleet(scenario, shard_count=2)
        assert all(snapshot["requests"] == 0 for snapshot in snapshots)
