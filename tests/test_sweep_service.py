"""Sweep service: result store semantics, parallel/serial parity."""

from __future__ import annotations

import json
from concurrent.futures import Future

import pytest

import repro.runtime.service as sweep_module

from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import ResourceManagerError
from repro.runtime.service import (
    GallerySpec,
    ResultStore,
    SweepService,
)
from repro.sdf.analysis import AnalysisMethod

GALLERY = GallerySpec(kind="paper", seed=77, application_count=3)


class TestGallerySpec:
    def test_paper_names_match_built_suite(self):
        suite = GALLERY.build()
        assert GALLERY.application_names() == suite.application_names

    def test_media_names_match_built_suite(self):
        spec = GallerySpec(kind="media", application_count=4)
        suite = spec.build()
        assert spec.application_names() == suite.application_names

    def test_rejects_unknown_kind(self):
        with pytest.raises(ResourceManagerError):
            GallerySpec(kind="cloud")

    def test_media_rejects_overflowing_count(self):
        with pytest.raises(ResourceManagerError):
            GallerySpec(kind="media", application_count=8)

    def test_label_keys_the_recipe(self):
        assert GALLERY.label() == "paper:77:3"


class TestResultStore:
    def test_first_sweep_misses_second_hits(self, tmp_path):
        path = tmp_path / "results.jsonl"
        first = SweepService(store=ResultStore(path)).sweep(GALLERY)
        assert (first.hits, first.misses) == (0, 7)
        # A fresh store instance reloads from disk.
        second = SweepService(store=ResultStore(path)).sweep(GALLERY)
        assert (second.hits, second.misses) == (7, 0)
        for a, b in zip(first.results, second.results):
            assert a.use_case == b.use_case
            assert a.periods == b.periods
            assert a.isolation == b.isolation
            assert b.from_store

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "results.jsonl"
        SweepService(store=ResultStore(path)).sweep(GALLERY)
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        for line in lines:
            data = json.loads(line)
            assert data["key"]["gallery"] == "paper:77:3"
            assert set(data) == {"key", "periods", "isolation"}

    def test_key_discriminates_model_method_and_gallery(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        service = SweepService(store=store)
        service.sweep(GALLERY, model="second_order")
        outcome = service.sweep(GALLERY, model="worst_case")
        assert outcome.misses == 7
        outcome = service.sweep(
            GALLERY,
            model="second_order",
            method=AnalysisMethod.STATE_SPACE,
        )
        assert outcome.misses == 7
        other_seed = GallerySpec(
            kind="paper", seed=78, application_count=3
        )
        assert service.sweep(other_seed).misses == 7
        # And the original combination is still fully cached.
        assert service.sweep(GALLERY).hits == 7

    def test_corrupt_store_fails_loudly(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(ResourceManagerError):
            ResultStore(path)

    def test_store_is_optional(self):
        outcome = SweepService().sweep(GALLERY)
        assert (outcome.hits, outcome.misses) == (0, 7)


class TestParity:
    def test_results_match_direct_estimator(self):
        outcome = SweepService().sweep(GALLERY, samples_per_size=2)
        suite = GALLERY.build()
        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="second_order",
        )
        direct = estimator.sweep_all_sizes(samples_per_size=2)
        assert len(outcome.results) == len(direct)
        for record, result in zip(outcome.results, direct):
            assert record.use_case == result.use_case.applications
            for app in record.use_case:
                assert record.periods[app] == pytest.approx(
                    result.periods[app], rel=1e-9
                )

    def test_parallel_matches_serial(self, tmp_path):
        serial = SweepService(jobs=1).sweep(GALLERY)
        parallel = SweepService(jobs=2).sweep(GALLERY)
        assert serial.use_case_count == parallel.use_case_count
        for a, b in zip(serial.results, parallel.results):
            assert a.use_case == b.use_case
            for app in a.use_case:
                assert a.periods[app] == pytest.approx(
                    b.periods[app], rel=1e-9
                )

    def test_rejects_bad_jobs(self):
        with pytest.raises(ResourceManagerError):
            SweepService(jobs=0)

    def test_jobs_capped_at_cpu_count(self, monkeypatch):
        # Regression: jobs far above the CPU count used to size the
        # process pool at jobs, oversubscribing the machine.  The pool
        # must never exceed os.cpu_count().
        created = []

        class RecordingExecutor:
            def __init__(self, max_workers):
                created.append(max_workers)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                future = Future()
                future.set_result(fn(*args))
                return future

        monkeypatch.setattr(
            sweep_module, "ProcessPoolExecutor", RecordingExecutor
        )
        monkeypatch.setattr(sweep_module.os, "cpu_count", lambda: 2)
        outcome = SweepService(jobs=8).sweep(GALLERY)
        assert created == [2]
        assert outcome.misses == 7
