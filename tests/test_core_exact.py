"""Exact waiting-time formula tests (Eq. 3 / Eq. 4).

The closed form is validated three ways: against the paper's printed 2-
and 3-actor expansions, against the direct queue-scenario enumeration
(the model Eq. 4 is derived from), and on the paper's worked example.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import ActorProfile, build_profile
from repro.core.exact import (
    ExactWaitingModel,
    waiting_time_enumeration,
    waiting_time_exact,
)


def profile(tau: float, probability: float, name: str = "x") -> ActorProfile:
    """Profile with given tau and P (period chosen to produce that P)."""
    return build_profile(
        application="T",
        actor=name,
        tau=tau,
        repetitions=1,
        period=tau / probability,
    )


def paper_two_actor_formula(a: ActorProfile, b: ActorProfile) -> float:
    """twait(c) = mu_a P_a (1 + P_b/2) + mu_b P_b (1 + P_a/2)."""
    return a.mu * a.probability * (1 + b.probability / 2) + (
        b.mu * b.probability * (1 + a.probability / 2)
    )


def paper_three_actor_formula(a, b, c) -> float:
    """Eq. 3 of the paper."""
    def term(x, y, z):
        return (
            x.mu
            * x.probability
            * (
                1
                + 0.5 * (y.probability + z.probability)
                - (1 / 3) * y.probability * z.probability
            )
        )

    return term(a, b, c) + term(b, a, c) + term(c, a, b)


class TestAgainstPaperFormulas:
    def test_single_actor(self):
        a = profile(100, 1 / 3)
        # twait = mu_a * P_a = 50/3 (the introduction's example).
        assert waiting_time_exact([a]) == pytest.approx(50 / 3)

    def test_two_actors_match_printed_expansion(self):
        a = profile(100, 1 / 3, "a")
        b = profile(60, 1 / 4, "b")
        assert waiting_time_exact([a, b]) == pytest.approx(
            paper_two_actor_formula(a, b)
        )

    def test_three_actors_match_eq3(self):
        a = profile(100, 1 / 3, "a")
        b = profile(60, 1 / 4, "b")
        c = profile(80, 1 / 2, "c")
        assert waiting_time_exact([a, b, c]) == pytest.approx(
            paper_three_actor_formula(a, b, c)
        )

    def test_empty_set_waits_nothing(self):
        assert waiting_time_exact([]) == 0.0


class TestAgainstEnumeration:
    def test_two_actors(self):
        a = profile(100, 0.3, "a")
        b = profile(40, 0.6, "b")
        assert waiting_time_exact([a, b]) == pytest.approx(
            waiting_time_enumeration([a, b])
        )

    def test_five_actors(self):
        actors = [
            profile(10 * (i + 1), 0.1 * (i + 1), f"x{i}") for i in range(5)
        ]
        assert waiting_time_exact(actors) == pytest.approx(
            waiting_time_enumeration(actors)
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(1.0, 200.0, allow_nan=False),
                st.floats(0.0, 1.0, allow_nan=False),
            ),
            min_size=0,
            max_size=7,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_property_closed_form_equals_model(self, specs):
        actors = [
            profile(tau, max(p, 1e-9), f"x{i}")
            for i, (tau, p) in enumerate(specs)
        ]
        closed = waiting_time_exact(actors)
        enumerated = waiting_time_enumeration(actors)
        assert closed == pytest.approx(enumerated, abs=1e-6, rel=1e-9)


class TestStructuralProperties:
    def test_permutation_invariant(self):
        actors = [
            profile(30, 0.2, "a"),
            profile(70, 0.5, "b"),
            profile(50, 0.4, "c"),
        ]
        base = waiting_time_exact(actors)
        assert waiting_time_exact(actors[::-1]) == pytest.approx(base)
        assert waiting_time_exact(
            [actors[1], actors[2], actors[0]]
        ) == pytest.approx(base)

    def test_monotone_in_probability(self):
        low = [profile(100, 0.2, "a"), profile(50, 0.3, "b")]
        high = [profile(100, 0.4, "a"), profile(50, 0.3, "b")]
        assert waiting_time_exact(high) > waiting_time_exact(low)

    def test_zero_probability_actor_is_invisible(self):
        a = profile(100, 0.3, "a")
        ghost = profile(500, 1e-15, "ghost")
        assert waiting_time_exact([a, ghost]) == pytest.approx(
            waiting_time_exact([a]), rel=1e-6
        )

    def test_model_interface(self, two_apps):
        from repro.core.blocking import build_profiles

        profiles = build_profiles(list(two_apps))
        model = ExactWaitingModel()
        own = profiles[("B", "b0")]
        others = [profiles[("A", "a0")]]
        # Section 3: b0 waits mu(a0) * P(a0) = 50/3 on average.
        assert model.waiting_time(own, others) == pytest.approx(50 / 3)
        assert model.name == "exact"
