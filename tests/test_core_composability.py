"""Composability algebra tests (Eq. 6-9)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composability import (
    Composite,
    CompositionWaitingModel,
    compose,
    compose_all,
    decompose,
    prob_compose,
    prob_decompose,
)
from repro.core.approximation import waiting_time_order_m
from repro.exceptions import AnalysisError
from tests.test_core_exact import profile

_prob = st.floats(0.0, 0.95, allow_nan=False)
_tau = st.floats(1.0, 200.0, allow_nan=False)


class TestProbabilityOperator:
    def test_eq6(self):
        assert prob_compose(1 / 3, 1 / 3) == pytest.approx(5 / 9)

    def test_identity_element(self):
        assert prob_compose(0.0, 0.4) == pytest.approx(0.4)

    def test_saturation(self):
        assert prob_compose(1.0, 0.4) == pytest.approx(1.0)

    @given(_prob, _prob, _prob)
    @settings(max_examples=100, deadline=None)
    def test_associative_exactly(self, pa, pb, pc):
        left = prob_compose(prob_compose(pa, pb), pc)
        right = prob_compose(pa, prob_compose(pb, pc))
        assert left == pytest.approx(right, abs=1e-12)

    @given(_prob, _prob)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, pa, pb):
        assert prob_compose(pa, pb) == pytest.approx(prob_compose(pb, pa))

    @given(_prob, _prob)
    @settings(max_examples=100, deadline=None)
    def test_inverse_round_trip(self, pa, pb):
        assert prob_decompose(
            prob_compose(pa, pb), pb
        ) == pytest.approx(pa, abs=1e-9)

    def test_decompose_probability_one_rejected(self):
        with pytest.raises(AnalysisError):
            prob_decompose(1.0, 1.0)


class TestWaitingOperator:
    def test_eq7_two_actors(self):
        a = profile(100, 1 / 3, "a")
        b = profile(50, 1 / 3, "b")
        combined = compose(
            Composite.of_profile(a), Composite.of_profile(b)
        )
        expected = a.mu * a.probability * (1 + b.probability / 2) + (
            b.mu * b.probability * (1 + a.probability / 2)
        )
        assert combined.waiting_product == pytest.approx(expected)
        assert combined.probability == pytest.approx(5 / 9)

    def test_two_actor_composition_equals_second_order(self):
        a = profile(100, 0.3, "a")
        b = profile(40, 0.5, "b")
        combined = compose_all([a, b])
        assert combined.waiting_product == pytest.approx(
            waiting_time_order_m([a, b], 2)
        )

    @given(_tau, _prob, _tau, _prob)
    @settings(max_examples=100, deadline=None)
    def test_decompose_inverts_last_compose(self, ta, pa, tb, pb):
        a = Composite.of_profile(profile(ta, max(pa, 1e-6), "a"))
        b = Composite.of_profile(profile(tb, max(pb, 1e-6), "b"))
        restored = decompose(compose(a, b), b)
        assert restored.probability == pytest.approx(
            a.probability, abs=1e-9
        )
        assert restored.waiting_product == pytest.approx(
            a.waiting_product, abs=1e-7
        )

    @given(_tau, _prob, _tau, _prob, _tau, _prob)
    @settings(max_examples=100, deadline=None)
    def test_associativity_error_is_second_order_small(
        self, ta, pa, tb, pb, tc, pc
    ):
        """(a x b) x c vs a x (b x c): differ only in P^2 cross terms."""
        a = profile(ta, max(pa, 1e-6), "a")
        b = profile(tb, max(pb, 1e-6), "b")
        c = profile(tc, max(pc, 1e-6), "c")
        left = compose(
            compose(Composite.of_profile(a), Composite.of_profile(b)),
            Composite.of_profile(c),
        )
        right = compose(
            Composite.of_profile(a),
            compose(Composite.of_profile(b), Composite.of_profile(c)),
        )
        assert left.probability == pytest.approx(
            right.probability, abs=1e-9
        )
        # Waiting products agree to the second-order magnitude: bound the
        # discrepancy by the size of third-order terms.
        scale = (ta + tb + tc) * (pa + pb + pc + 0.1) ** 2
        assert abs(left.waiting_product - right.waiting_product) <= (
            0.5 * scale + 1e-6
        )

    def test_empty_composition(self):
        empty = compose_all([])
        assert empty.probability == 0.0
        assert empty.waiting_product == 0.0

    def test_mu_property(self):
        a = profile(100, 1 / 3, "a")
        composite = Composite.of_profile(a)
        assert composite.mu == pytest.approx(50.0)
        assert Composite.empty().mu == 0.0


class TestCompositionWaitingModel:
    def test_direct_matches_incremental(self, two_apps):
        from repro.core.blocking import build_profiles

        profiles = build_profiles(list(two_apps))
        own = profiles[("A", "a0")]
        others = [profiles[("B", "b0")]]
        direct = CompositionWaitingModel(incremental=False)
        incremental = CompositionWaitingModel(incremental=True)
        assert direct.waiting_time(own, others) == pytest.approx(
            incremental.waiting_time(own, others)
        )

    def test_direct_matches_incremental_many_actors(self):
        own = profile(60, 0.2, "own")
        others = [
            profile(10.0 * (i + 1), 0.08 * (i + 1), f"o{i}")
            for i in range(6)
        ]
        direct = CompositionWaitingModel(incremental=False)
        incremental = CompositionWaitingModel(incremental=True)
        assert direct.waiting_time(own, others) == pytest.approx(
            incremental.waiting_time(own, others), rel=1e-9
        )

    def test_paper_example_waiting(self, two_apps):
        from repro.core.blocking import build_profiles

        profiles = build_profiles(list(two_apps))
        model = CompositionWaitingModel()
        # b0 waits for a0 only: mu * P = 50/3.
        assert model.waiting_time(
            profiles[("B", "b0")], [profiles[("A", "a0")]]
        ) == pytest.approx(50 / 3)

    def test_empty_others(self):
        model = CompositionWaitingModel()
        assert model.waiting_time(profile(10, 0.5), []) == 0.0

    def test_names(self):
        assert CompositionWaitingModel().name == "composability"
        assert (
            CompositionWaitingModel(incremental=True).name
            == "composability-incremental"
        )
