"""The two registry-shipped contention models: priority & weighted RR.

Property obligations (the PR's satellite checklist):

* a lone actor never waits, under either model;
* waiting is monotone (non-decreasing) in every other actor's blocking
  probability;
* the preemptive-priority model collapses to the FCFS-exact estimate
  (Eq. 4) when all priorities are equal;
* ``waiting_times_batch`` is *bit-identical* to the scalar loop — on
  the kernel directly and through the estimator on both backends.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import numpy_available
from repro.core.blocking import build_profile, resident_vectors
from repro.core.exact import waiting_time_exact
from repro.core.priority import (
    PriorityWaitingModel,
    waiting_time_priority,
)
from repro.exceptions import AnalysisError
from repro.wcrt.weighted_round_robin import (
    WeightedRRWaitingModel,
    parse_weights,
    weighted_rr_response_time,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)


def profile(
    tau: float,
    probability: float,
    name: str = "x",
    app: str = "A",
    priority: float = 0.0,
):
    """A profile with an exact target blocking probability."""
    period = tau / probability if probability > 0 else tau * 1e9
    return build_profile(
        application=app,
        actor=name,
        tau=tau,
        repetitions=1,
        period=period,
        priority=priority,
    )


# A contender: (tau in [1, 100], probability in (0, 0.95], priority).
contenders = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.01, max_value=0.95),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=6,
)


def build_others(raw, app_prefix="B"):
    return [
        profile(
            tau,
            probability,
            name=f"o{i}",
            app=f"{app_prefix}{i}",
            priority=priority,
        )
        for i, (tau, probability, priority) in enumerate(raw)
    ]


class TestLoneActor:
    @given(
        tau=st.floats(min_value=1.0, max_value=100.0),
        priority=st.integers(min_value=0, max_value=3),
    )
    def test_priority_model_zero_without_contenders(self, tau, priority):
        own = profile(tau, 0.5, priority=priority)
        assert PriorityWaitingModel().waiting_time(own, []) == 0.0

    @given(tau=st.floats(min_value=1.0, max_value=100.0))
    def test_weighted_rr_zero_without_contenders(self, tau):
        own = profile(tau, 0.5)
        model = WeightedRRWaitingModel(weights={"A": 3})
        assert model.waiting_time(own, []) == 0.0


class TestMonotonicity:
    @given(
        raw=contenders,
        own_priority=st.integers(min_value=0, max_value=3),
        bump_index=st.integers(min_value=0, max_value=5),
        bump=st.floats(min_value=1.01, max_value=5.0),
    )
    @settings(max_examples=200)
    def test_priority_waiting_monotone_in_blocking_probability(
        self, raw, own_priority, bump_index, bump
    ):
        """Raising any contender's P never lowers the expected wait."""
        if not raw:
            return
        own = profile(10.0, 0.5, priority=own_priority)
        others = build_others(raw)
        index = bump_index % len(others)
        before = waiting_time_priority(own, others)
        bumped = others[index]
        raised = min(0.99, bumped.probability * bump)
        others[index] = profile(
            bumped.tau,
            raised,
            name=bumped.actor,
            app=bumped.application,
            priority=bumped.priority,
        )
        after = waiting_time_priority(own, others)
        assert after >= before - 1e-9 * max(1.0, abs(before))

    @given(
        raw=contenders,
        bump_index=st.integers(min_value=0, max_value=5),
        bump=st.floats(min_value=1.01, max_value=5.0),
    )
    def test_weighted_rr_ignores_blocking_probability(
        self, raw, bump_index, bump
    ):
        """The WCRT bound depends on taus and weights only."""
        if not raw:
            return
        own = profile(10.0, 0.5)
        model = WeightedRRWaitingModel(default_weight=2)
        others = build_others(raw)
        index = bump_index % len(others)
        before = model.waiting_time(own, others)
        bumped = others[index]
        others[index] = profile(
            bumped.tau,
            min(0.99, bumped.probability * bump),
            name=bumped.actor,
            app=bumped.application,
        )
        assert model.waiting_time(own, others) == before


class TestPriorityCollapse:
    @given(
        raw=contenders,
        level=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200)
    def test_equal_priorities_reduce_to_fcfs_exact(self, raw, level):
        """All-equal priorities: the model *is* Eq. 4."""
        own = profile(10.0, 0.5, priority=level)
        others = [
            profile(
                tau,
                probability,
                name=f"o{i}",
                app=f"B{i}",
                priority=level,
            )
            for i, (tau, probability, _) in enumerate(raw)
        ]
        collapsed = waiting_time_priority(own, others)
        exact = waiting_time_exact(others)
        assert math.isclose(
            collapsed, exact, rel_tol=1e-12, abs_tol=1e-12
        )

    def test_lower_priority_contenders_cost_nothing_upfront(self):
        own = profile(10.0, 0.5, priority=2)
        lower = [
            profile(50.0, 0.9, name="l", app="L", priority=1)
        ]
        assert waiting_time_priority(own, lower) == 0.0

    def test_higher_priority_adds_preemption_interference(self):
        own = profile(10.0, 0.5, priority=0)
        higher = profile(20.0, 0.4, name="h", app="H", priority=1)
        # Initial wait: P (mu * 1 + tau * 0) = 0.4 * 10; preemption:
        # tau_own * P = 10 * 0.4.
        expected = 0.4 * 10.0 + 10.0 * 0.4
        assert waiting_time_priority(own, [higher]) == pytest.approx(
            expected
        )


class TestWeightedRRBound:
    def test_all_default_weights_match_reference_6(self):
        from repro.wcrt.round_robin import WorstCaseRRWaitingModel

        own = profile(10.0, 0.5)
        others = build_others([(30.0, 0.2, 0), (7.0, 0.9, 1)])
        wrr = WeightedRRWaitingModel()
        rr = WorstCaseRRWaitingModel()
        assert wrr.waiting_time(own, others) == rr.waiting_time(
            own, others
        )

    def test_weights_scale_the_bound_per_application(self):
        own = profile(10.0, 0.5)
        others = build_others([(30.0, 0.2, 0), (7.0, 0.9, 0)])
        model = WeightedRRWaitingModel(weights={"B0": 3})
        assert model.waiting_time(own, others) == pytest.approx(
            3 * 30.0 + 7.0
        )

    def test_response_time_helper(self):
        assert weighted_rr_response_time(10.0, [60.0, 7.0]) == 77.0

    def test_weights_validation(self):
        with pytest.raises(AnalysisError):
            WeightedRRWaitingModel(weights={"A": 0})
        with pytest.raises(AnalysisError):
            WeightedRRWaitingModel(weights={"A": 1.5})
        with pytest.raises(AnalysisError):
            WeightedRRWaitingModel(default_weight=-1)

    def test_parse_weights(self):
        assert parse_weights(None) == {}
        assert parse_weights(" ") == {}
        assert parse_weights("A=2, B=1") == {"A": 2, "B": 1}
        with pytest.raises(AnalysisError):
            parse_weights("A")
        with pytest.raises(AnalysisError):
            parse_weights("A=x")
        with pytest.raises(AnalysisError):
            parse_weights("A=0")


@needs_numpy
class TestBatchBitIdentity:
    """The batched kernels reproduce the scalar loops bit for bit."""

    def _assert_kernel_matches(self, model, residents, rng):
        import numpy as np

        vectors = resident_vectors(residents, np)
        n = len(residents)
        rows = []
        for _ in range(12):
            rows.append(
                [rng.random() < 0.7 for _ in range(n)]
            )
        inc = np.zeros((len(rows), n, n))
        own_active = np.zeros((len(rows), n))
        for u, row in enumerate(rows):
            for o in range(n):
                own_active[u, o] = 1.0 if row[o] else 0.0
                for i in range(n):
                    if i != o and row[i]:
                        inc[u, o, i] = 1.0
        batched = model.waiting_times_batch(
            vectors, inc, own_active, np
        )
        for u, row in enumerate(rows):
            for o in range(n):
                if not row[o]:
                    continue
                others = [
                    residents[i]
                    for i in range(n)
                    if i != o and row[i]
                ]
                scalar = model.waiting_time(residents[o], others)
                assert batched[u, o] == scalar, (
                    model.name,
                    u,
                    o,
                    float(batched[u, o]),
                    scalar,
                )

    @given(raw=contenders, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_priority_kernel_bit_identical(self, raw, seed):
        if len(raw) < 2:
            return
        residents = build_others(raw)
        self._assert_kernel_matches(
            PriorityWaitingModel(), residents, random.Random(seed)
        )

    @given(raw=contenders, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_weighted_rr_kernel_bit_identical(self, raw, seed):
        if len(raw) < 2:
            return
        residents = build_others(raw)
        weights = {
            p.application: 1 + (i % 3)
            for i, p in enumerate(residents)
        }
        self._assert_kernel_matches(
            WeightedRRWaitingModel(weights=weights),
            residents,
            random.Random(seed),
        )

    @pytest.mark.parametrize(
        "model_spec",
        ["priority_preemptive", "weighted_round_robin:A=2,C=3"],
    )
    def test_estimator_waiting_identical_across_backends(
        self, model_spec, small_suite
    ):
        """Scalar (python) and batched (numpy) pipelines agree
        exactly on every waiting time for the new models."""
        from repro.core.estimator import ProbabilisticEstimator

        mapping = small_suite.mapping.with_priorities(
            {"A": 2, "B": 1, "C": 1, "D": 0}
        )
        results = {}
        for backend in ("python", "numpy"):
            estimator = ProbabilisticEstimator(
                list(small_suite.graphs),
                mapping=mapping,
                waiting_model=model_spec,
                backend=backend,
            )
            results[backend] = estimator.sweep_all_sizes(
                samples_per_size=2
            )
        for scalar, batched in zip(
            results["python"], results["numpy"]
        ):
            assert scalar.use_case == batched.use_case
            assert scalar.waiting_times == batched.waiting_times


class TestColdPathParity:
    @pytest.mark.parametrize(
        "model_spec",
        ["priority_preemptive", "weighted_round_robin:B=2"],
    )
    def test_incremental_and_cold_paths_agree(
        self, model_spec, small_suite
    ):
        """Priorities reach the profiles on both estimator paths."""
        from repro.core.estimator import ProbabilisticEstimator

        mapping = small_suite.mapping.with_priorities(
            {"A": 1, "B": 0, "C": 2, "D": 1}
        )
        warm = ProbabilisticEstimator(
            list(small_suite.graphs),
            mapping=mapping,
            waiting_model=model_spec,
            backend="python",
        ).estimate()
        cold = ProbabilisticEstimator(
            list(small_suite.graphs),
            mapping=mapping,
            waiting_model=model_spec,
            incremental=False,
            backend="python",
        ).estimate()
        assert warm.waiting_times == cold.waiting_times
        for app, value in warm.periods.items():
            assert cold.periods[app] == pytest.approx(
                value, rel=1e-9
            )
