"""The cross-layer conformance harness (``repro.conformance``).

The parametrized suite below auto-covers *every* registered waiting
model — including the two registry-shipped contention models and any
future third-party registration — with zero per-model test code: the
parametrization reads the registry at collection time and each model is
judged purely by its declared semantics metadata.

The harness run here is a reduced batch (fast enough for tier 1); the
acceptance-scale batch (>= 50 scenarios per model) is ``repro
conformance --suite 4`` and runs in CI's conformance job.
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    DEFAULT_UTILIZATION_CAP,
    Scenario,
    checkable_model_names,
    conformance_skip_reason,
    generate_scenarios,
    run_conformance,
)
from repro.core.registry import WAITING_MODELS, WaitingModelInfo
from repro.exceptions import ExperimentError

SCENARIOS = 6
SIM_ITERATIONS = 40


@pytest.fixture(scope="module")
def report():
    """One shared reduced-batch run covering every registered model."""
    return run_conformance(
        application_count=4,
        scenarios_per_model=SCENARIOS,
        target_iterations=SIM_ITERATIONS,
    )


class TestScenarioGeneration:
    def test_deterministic(self):
        first = generate_scenarios(count=8, seed=5)
        second = generate_scenarios(count=8, seed=5)
        assert first == second

    def test_seed_changes_the_batch(self):
        assert generate_scenarios(count=8, seed=5) != generate_scenarios(
            count=8, seed=6
        )

    def test_scenarios_have_contention_and_metadata(self):
        for scenario in generate_scenarios(count=10):
            assert len(scenario.use_case) >= 2
            assert set(scenario.priorities) == set(scenario.use_case)
            assert set(scenario.weights) == set(scenario.use_case)
            assert all(w >= 1 for w in scenario.weights.values())

    def test_utilization_cap_is_honored(self):
        from repro.core.blocking import build_profiles
        from repro.experiments.setup import paper_benchmark_suite

        for scenario in generate_scenarios(count=10):
            suite = paper_benchmark_suite(
                seed=scenario.gallery_seed,
                application_count=scenario.application_count,
            )
            graphs = [suite.graph(n) for n in scenario.use_case]
            per_node: dict = {}
            for (app, actor), profile in build_profiles(
                graphs
            ).items():
                proc = suite.mapping.processor_of(app, actor)
                per_node[proc] = (
                    per_node.get(proc, 0.0) + profile.probability
                )
            assert max(per_node.values()) <= DEFAULT_UTILIZATION_CAP

    def test_impossible_cap_fails_loudly(self):
        with pytest.raises(ExperimentError) as excinfo:
            generate_scenarios(count=5, utilization_cap=0.01)
        assert "utilization cap" in str(excinfo.value)


# The registry is read at collection time: registering a new model makes
# it appear here automatically.
@pytest.mark.parametrize("model_name", WAITING_MODELS.names())
class TestEveryRegisteredModel:
    def test_declared_semantics_hold_or_skip_is_justified(
        self, model_name, report
    ):
        model_report = report.report_for(model_name)
        info = WAITING_MODELS.get(model_name)
        skip = conformance_skip_reason(info)
        if skip is not None:
            assert model_report.status == "skipped"
            assert model_report.reason == skip
            return
        assert model_report.status == "passed", model_report.reason
        assert model_report.scenarios == SCENARIOS
        assert model_report.checks >= SCENARIOS
        if info.semantics == "conservative":
            assert model_report.ratio_low >= 1.0 - 1e-9
        else:
            assert (
                abs(1.0 - model_report.ratio_low) <= info.tolerance
            )
            assert (
                abs(1.0 - model_report.ratio_high) <= info.tolerance
            )


class TestNewModelsAreCovered:
    def test_both_new_models_are_auto_checked(self):
        covered = checkable_model_names()
        assert "priority_preemptive" in covered
        assert "weighted_round_robin" in covered

    def test_skips_are_exactly_the_documented_ones(self):
        skipped = tuple(
            info.name
            for info in WAITING_MODELS.infos()
            if conformance_skip_reason(info) is not None
        )
        assert skipped == ("order", "tdma")


class TestHarnessJudgement:
    def test_third_party_model_is_checked_without_test_code(self):
        """A freshly registered honest model passes via metadata only."""
        from repro.core.exact import ExactWaitingModel

        info = WaitingModelInfo(
            name="echo_exact",
            factory=ExactWaitingModel,
            summary="exact under a different name",
            semantics="mean",
            tolerance=0.45,
            arbiter="fcfs",
        )
        with WAITING_MODELS.temporary(info):
            outcome = run_conformance(
                scenarios_per_model=3,
                target_iterations=30,
                models=["echo_exact"],
            )
        assert outcome.passed
        assert outcome.report_for("echo_exact").scenarios == 3

    def test_false_conservative_claim_is_caught(self):
        """A model whose declared bound does not hold must fail."""

        class Optimist:
            name = "optimist"
            complexity = "O(1)"

            def waiting_time(self, own, others):
                return 0.0  # never waits, allegedly a sound bound

        info = WaitingModelInfo(
            name="optimist_bound",
            factory=Optimist,
            summary="claims a bound it cannot keep",
            semantics="conservative",
            supports_batch=False,
            arbiter="round_robin",
        )
        with WAITING_MODELS.temporary(info):
            outcome = run_conformance(
                scenarios_per_model=3,
                target_iterations=30,
                models=["optimist_bound"],
            )
        model_report = outcome.report_for("optimist_bound")
        assert not outcome.passed
        assert model_report.status == "failed"
        assert model_report.violations
        assert "worst violation" in model_report.reason

    def test_report_renders(self, report):
        rendered = report.render()
        assert "priority_preemptive" in rendered
        assert "upper-bounds sim" in rendered
        assert "scenarios" in rendered

    def test_unknown_model_selection_fails(self):
        with pytest.raises(Exception) as excinfo:
            run_conformance(models=["oracle"], scenarios_per_model=2)
        assert "unknown waiting model" in str(excinfo.value)

    def test_scenario_label_mentions_the_ingredients(self):
        scenario = Scenario(
            index=3,
            gallery_seed=2009,
            application_count=4,
            use_case=("A", "B"),
            priorities={"A": 1, "B": 0},
            weights={"A": 2, "B": 1},
        )
        label = scenario.label()
        assert "seed=2009" in label and "A+B" in label


class TestSimulationSharing:
    def test_priority_blind_arbiters_share_reference_runs(self, report):
        """FCFS/round-robin references are keyed without the scenario's
        priority/weight draws, so a (gallery, use-case) pair is
        simulated once per policy, not once per draw per model."""
        checkable = len(checkable_model_names())
        assert report.simulations_run < checkable * SCENARIOS
