"""Self-timed state-space execution tests."""

from __future__ import annotations


import pytest

from repro.exceptions import DeadlockError
from repro.sdf.builder import GraphBuilder
from repro.sdf.statespace import (
    self_timed_period,
    self_timed_schedule,
)


class TestSelfTimedPeriod:
    def test_paper_graph(self, app_a):
        assert self_timed_period(app_a) == pytest.approx(300.0)

    def test_simple_ring(self, simple_chain):
        assert self_timed_period(simple_chain) == pytest.approx(30.0)

    def test_pipelined_ring_bound_by_slowest_actor(self):
        graph = (
            GraphBuilder("ring")
            .actor("a", 10)
            .actor("b", 25)
            .cycle("a", "b", initial_tokens_on_back_edge=2)
            .build()
        )
        # Two tokens let both actors run concurrently; b binds at 25.
        assert self_timed_period(graph) == pytest.approx(25.0)

    def test_rational_execution_times_exact(self, app_a):
        inflated = app_a.with_execution_times(
            {
                "a0": 100 + 25 / 3,
                "a1": 50 + 50 / 3,
                "a2": 100 + 50 / 3,
            }
        )
        period = self_timed_period(inflated, exact=True)
        assert period == pytest.approx(1075 / 3, rel=1e-12)

    def test_float_mode_agrees_with_exact(self, app_a):
        assert self_timed_period(app_a, exact=False) == pytest.approx(
            self_timed_period(app_a, exact=True)
        )

    def test_deadlocked_graph_raises(self):
        graph = (
            GraphBuilder("dead")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        with pytest.raises(DeadlockError):
            self_timed_period(graph)

    def test_agrees_with_mcr_on_random_graphs(self):
        from repro.generation.random_sdf import random_sdf_graph
        from repro.sdf.analysis import period

        for seed in range(8):
            graph = random_sdf_graph(f"G{seed}", seed=seed)
            assert self_timed_period(graph) == pytest.approx(
                period(graph), rel=1e-9
            ), f"seed {seed}"


class TestSelfTimedSchedule:
    def test_schedule_covers_requested_iterations(self, app_a):
        schedule = self_timed_schedule(app_a, iterations=3)
        fires = {}
        for _, __, actor in schedule:
            fires[actor] = fires.get(actor, 0) + 1
        assert fires == {"a0": 3, "a1": 6, "a2": 3}

    def test_firings_do_not_overlap_per_actor(self, app_a):
        schedule = self_timed_schedule(app_a, iterations=4)
        by_actor = {}
        for start, end, actor in schedule:
            by_actor.setdefault(actor, []).append((start, end))
        for actor, intervals in by_actor.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9, f"{actor} overlaps itself"

    def test_durations_match_execution_times(self, app_a):
        for start, end, actor in self_timed_schedule(app_a, iterations=2):
            assert end - start == pytest.approx(
                app_a.execution_time(actor)
            )

    def test_first_iteration_of_paper_graph_is_sequential(self, app_a):
        schedule = self_timed_schedule(app_a, iterations=1)
        ordered = sorted(schedule)
        names = [actor for _, __, actor in ordered]
        assert names == ["a0", "a1", "a1", "a2"]
        assert ordered[-1][1] == pytest.approx(300.0)
