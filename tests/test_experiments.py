"""Experiment harness tests on a scaled-down suite."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.accuracy import (
    mean_absolute_percentage_error,
    summarize_by_size,
    summarize_sweep,
)
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.reporting import (
    render_bar_chart,
    render_series,
    render_table,
)
from repro.experiments.runner import SweepConfig, run_sweep, select_use_cases
from repro.experiments.setup import paper_benchmark_suite
from repro.experiments.table1 import run_table1
from repro.experiments.timing import run_timing


@pytest.fixture(scope="module")
def small_sweep(request):
    suite = paper_benchmark_suite(application_count=3)
    config = SweepConfig(
        target_iterations=30, samples_per_size=3, seed=5
    )
    return suite, run_sweep(suite, config=config)


class TestSetup:
    def test_suite_is_deterministic(self):
        first = paper_benchmark_suite(application_count=3)
        second = paper_benchmark_suite(application_count=3)
        assert first.application_names == second.application_names
        for a, b in zip(first.graphs, second.graphs):
            assert a.execution_times() == b.execution_times()

    def test_full_suite_shape(self, full_suite):
        assert full_suite.application_names == tuple("ABCDEFGHIJ")
        for graph in full_suite.graphs:
            assert 8 <= len(graph) <= 10
            assert graph.is_strongly_connected()
        assert len(full_suite.platform) == 10

    def test_mapping_colocates_by_index(self, full_suite):
        mapping = full_suite.mapping
        for graph in full_suite.graphs:
            for i, actor in enumerate(graph.actors):
                assert (
                    mapping.processor_of(graph.name, actor.name)
                    == f"proc{i}"
                )

    def test_isolation_periods_positive(self, full_suite):
        for name, value in full_suite.isolation_periods().items():
            assert value > 0, name


class TestAccuracyMetrics:
    def test_mape_basics(self):
        assert mean_absolute_percentage_error(
            [(110, 100), (90, 100)]
        ) == pytest.approx(10.0)

    def test_mape_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean_absolute_percentage_error([])

    def test_mape_bad_reference_rejected(self):
        with pytest.raises(ExperimentError):
            mean_absolute_percentage_error([(1.0, 0.0)])


class TestSweep:
    def test_use_case_selection_counts(self):
        names = tuple("ABCDE")
        cases = select_use_cases(names, samples_per_size=2, seed=0)
        sizes = [c.size for c in cases]
        # sizes 1..5 with at most 2 samples each (size 5 has only 1).
        assert sizes.count(1) == 2
        assert sizes.count(5) == 1

    def test_exhaustive_selection(self):
        names = tuple("ABC")
        cases = select_use_cases(names, samples_per_size=None, seed=0)
        assert len(cases) == 7

    def test_sweep_records(self, small_sweep):
        suite, sweep = small_sweep
        assert sweep.use_case_count >= 4
        for record in sweep.records:
            for name in record.use_case:
                assert record.simulated[name] > 0
                assert record.simulated_worst[name] >= record.simulated[
                    name
                ] * 0.999
                for method in sweep.methods:
                    assert record.estimates[method][name] > 0

    def test_estimates_exact_for_singleton_use_cases(self, small_sweep):
        suite, sweep = small_sweep
        for record in sweep.records_of_size(1):
            name = record.use_case.applications[0]
            for method in sweep.methods:
                assert record.estimates[method][name] == pytest.approx(
                    record.isolation[name]
                )

    def test_summaries_per_method(self, small_sweep):
        _, sweep = small_sweep
        summaries = summarize_sweep(sweep)
        assert {s.method for s in summaries} == set(sweep.methods)
        for summary in summaries:
            assert summary.period_percent >= 0
            assert summary.samples > 0

    def test_by_size_starts_at_zero(self, small_sweep):
        _, sweep = small_sweep
        by_size = summarize_by_size(sweep)
        for summary in by_size[1]:
            assert summary.period_percent == pytest.approx(0.0, abs=1e-6)

    def test_needs_methods(self):
        suite = paper_benchmark_suite(application_count=2)
        with pytest.raises(ExperimentError):
            run_sweep(suite, config=SweepConfig(methods=()))


class TestArtefacts:
    def test_table1(self, small_sweep):
        suite, sweep = small_sweep
        table = run_table1(suite, sweep=sweep)
        worst = table.summary_of("worst_case")
        second = table.summary_of("second_order")
        # The paper's headline: worst case is the clear loser.
        assert worst.period_percent > second.period_percent
        text = table.render()
        assert "Worst Case" in text
        assert "Second Order" in text

    def test_figure6(self, small_sweep):
        suite, sweep = small_sweep
        figure = run_figure6(suite, sweep=sweep)
        assert figure.sizes[0] == 1
        for method, series in figure.series.items():
            assert series[0] == pytest.approx(0.0, abs=1e-6), method
        # Worst case deteriorates faster than second order at max size.
        assert figure.series["worst_case"][-1] > figure.series[
            "second_order"
        ][-1]
        assert "Figure 6" in figure.render()

    def test_figure5_on_small_suite(self):
        suite = paper_benchmark_suite(application_count=3)
        figure = run_figure5(suite, target_iterations=40)
        assert figure.applications == ("A", "B", "C")
        for name in (
            "Analyzed Worst Case",
            "Simulated",
            "Original",
        ):
            assert name in figure.series
        assert all(v == 1.0 for v in figure.series["Original"])
        for wc, sim in zip(
            figure.series["Analyzed Worst Case"],
            figure.series["Simulated"],
        ):
            assert wc > sim
        assert "Figure 5" in figure.render()

    def test_timing(self, small_sweep):
        suite, sweep = small_sweep
        timing = run_timing(suite, sweep=sweep)
        assert timing.use_case_count == sweep.use_case_count
        assert timing.simulation_seconds_total > 0
        for method in sweep.methods:
            assert timing.speedup(method) > 0
        assert "Timing" in timing.render()


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1.0], ["bb", 22.5]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "22.5" in lines[-1]

    def test_render_series(self):
        text = render_series(
            "x", [1, 2], {"s": [0.5, 1.5]}, title="T"
        )
        assert text.startswith("T")
        assert "1.5" in text

    def test_render_bar_chart(self):
        text = render_bar_chart(["a", "b"], [1.0, 2.0])
        assert "#" in text

    def test_render_bar_chart_empty(self):
        assert render_bar_chart([], [], title="t") == "t"


class TestPlacementFrontier:
    def test_frontier_reveals_the_feasible_slack(self):
        from repro.experiments.placement import run_placement_frontier

        result = run_placement_frontier(
            applications=3, slacks=(2.5, 4.5), strategies=("greedy",)
        )
        assert result.frontier_slack == 4.5
        assert result.strategies_agree()
        rendered = result.render()
        assert "placement frontier" in rendered
        assert "frontier slack: 4.5" in rendered

    def test_strategies_agree_across_the_sweep(self):
        from repro.experiments.placement import run_placement_frontier

        result = run_placement_frontier(
            applications=3,
            slacks=(2.5, 4.5),
            strategies=("exhaustive", "greedy"),
        )
        assert result.strategies_agree()
        exhaustive = {
            point.slack: point
            for point in result.points
            if point.strategy == "exhaustive"
        }
        # The exhaustive scan always covers the whole space.
        assert all(
            point.evaluated == point.space_size
            for point in exhaustive.values()
        )

    def test_cli_entry_point(self, capsys):
        from repro.experiments.placement import main

        assert main(["--applications", "2", "--slacks", "4.5"]) == 0
        out = capsys.readouterr().out
        assert "frontier slack" in out
