"""Liveness (deadlock) analysis tests."""

from __future__ import annotations

import pytest

from repro.exceptions import DeadlockError
from repro.sdf.builder import GraphBuilder
from repro.sdf.liveness import assert_live, is_live


class TestLiveness:
    def test_paper_graphs_are_live(self, app_a, app_b):
        assert is_live(app_a)
        assert is_live(app_b)

    def test_tokenless_cycle_deadlocks(self):
        graph = (
            GraphBuilder("dead")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        assert not is_live(graph)
        with pytest.raises(DeadlockError):
            assert_live(graph)

    def test_token_on_any_cycle_edge_restores_liveness(self):
        for tokenized in ("a->b", "b->a"):
            graph = (
                GraphBuilder("ring")
                .actor("a", 1)
                .actor("b", 1)
                .channel("a", "b", initial_tokens=1 if tokenized == "a->b" else 0)
                .channel("b", "a", initial_tokens=1 if tokenized == "b->a" else 0)
                .build()
            )
            assert is_live(graph), tokenized

    def test_multirate_needs_enough_tokens(self):
        def ring(tokens: int):
            return (
                GraphBuilder("ring")
                .actor("a", 1)
                .actor("b", 1)
                .channel("a", "b", production=1, consumption=2)
                .channel(
                    "b", "a", production=2, consumption=1,
                    initial_tokens=tokens,
                )
                .build()
            )

        # b consumes 2 per firing; a needs 1 per firing and fires twice.
        # One token lets a fire once, producing 1 < 2 for b: deadlock.
        assert not is_live(ring(1))
        assert is_live(ring(2))

    def test_self_loop_with_token_is_live(self):
        graph = (
            GraphBuilder("g")
            .actor("a", 1)
            .channel("a", "a", initial_tokens=1)
            .build()
        )
        assert is_live(graph)

    def test_self_loop_without_token_deadlocks(self):
        graph = (
            GraphBuilder("g")
            .actor("a", 1)
            .channel("a", "a")
            .build()
        )
        assert not is_live(graph)

    def test_error_message_names_stuck_actor(self):
        graph = (
            GraphBuilder("dead")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        with pytest.raises(DeadlockError, match="dead"):
            assert_live(graph)
