"""Repetition vector / consistency tests (Definition 2)."""

from __future__ import annotations

import pytest

from repro.exceptions import InconsistentGraphError
from repro.sdf.builder import GraphBuilder
from repro.sdf.repetition import (
    consistency_report,
    iteration_workload,
    repetition_vector,
)


class TestRepetitionVector:
    def test_paper_application_a(self, app_a):
        assert repetition_vector(app_a) == {"a0": 1, "a1": 2, "a2": 1}

    def test_paper_application_b(self, app_b):
        assert repetition_vector(app_b) == {"b0": 2, "b1": 1, "b2": 1}

    def test_single_rate_ring_is_all_ones(self, simple_chain):
        assert repetition_vector(simple_chain) == {"src": 1, "dst": 1}

    def test_multirate_chain(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 1)
            .actor("c", 1)
            .channel("a", "b", production=3, consumption=2)
            .channel("b", "c", production=4, consumption=6)
            .build()
        )
        # q[a]*3 = q[b]*2 and q[b]*4 = q[c]*6 -> minimal [2, 3, 2].
        assert repetition_vector(graph) == {"a": 2, "b": 3, "c": 2}

    def test_balance_equations_hold(self, app_a):
        q = repetition_vector(app_a)
        for channel in app_a.channels:
            assert (
                q[channel.source] * channel.production_rate
                == q[channel.target] * channel.consumption_rate
            )

    def test_minimality(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b", production=2, consumption=2)
            .channel("b", "a", production=2, consumption=2, initial_tokens=2)
            .build()
        )
        # Rates share a factor but the minimal vector is still [1, 1].
        assert repetition_vector(graph) == {"a": 1, "b": 1}

    def test_disconnected_components_solved_independently(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 1)
            .actor("x", 1)
            .actor("y", 1)
            .channel("a", "b", production=2, consumption=1)
            .channel("b", "a", production=1, consumption=2, initial_tokens=2)
            .channel("x", "y", production=1, consumption=3)
            .channel("y", "x", production=3, consumption=1, initial_tokens=1)
            .build()
        )
        q = repetition_vector(graph)
        assert q == {"a": 1, "b": 2, "x": 3, "y": 1}

    def test_inconsistent_graph_raises(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b", production=2, consumption=1)
            .channel("b", "a", production=2, consumption=1)
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            repetition_vector(graph)

    def test_consistency_report_names_violated_channel(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b", production=2, consumption=1)
            .channel("b", "a", production=2, consumption=1)
            .build()
        )
        report = consistency_report(graph)
        assert not report.consistent
        assert report.violated_channel in {"a->b", "b->a"}
        assert report.repetition_vector == {}

    def test_empty_graph_is_consistent(self):
        from repro.sdf.graph import SDFGraph

        report = consistency_report(SDFGraph("empty", [], []))
        assert report.consistent
        assert report.repetition_vector == {}


class TestIterationWorkload:
    def test_paper_application_a(self, app_a):
        # 1*100 + 2*50 + 1*100 = 300.
        assert iteration_workload(app_a) == 300

    def test_scales_with_execution_time(self, app_a):
        doubled = app_a.with_execution_times(
            {a.name: 2 * a.execution_time for a in app_a.actors}
        )
        assert iteration_workload(doubled) == 600
