"""Platform, mapping and use-case tests."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError, MappingError
from repro.platform.mapping import Mapping, index_mapping
from repro.platform.platform import Platform, Processor
from repro.platform.usecase import (
    UseCase,
    all_use_cases,
    use_cases_of_size,
)


class TestPlatform:
    def test_homogeneous(self):
        platform = Platform.homogeneous(3)
        assert platform.processor_names == ("proc0", "proc1", "proc2")
        assert len(platform) == 3

    def test_processor_lookup(self):
        platform = Platform.homogeneous(2)
        assert platform.processor("proc1").name == "proc1"
        with pytest.raises(MappingError):
            platform.processor("nope")

    def test_duplicate_processor_rejected(self):
        with pytest.raises(MappingError):
            Platform([Processor("p"), Processor("p")])

    def test_empty_platform_rejected(self):
        with pytest.raises(MappingError):
            Platform.homogeneous(0)

    def test_heterogeneous_types(self):
        platform = Platform(
            [Processor("risc0", "risc"), Processor("dsp0", "dsp")]
        )
        assert platform.processor("dsp0").processor_type == "dsp"


class TestMapping:
    def test_index_mapping_binds_ith_actor_to_ith_processor(self, two_apps):
        mapping = index_mapping(list(two_apps))
        assert mapping.processor_of("A", "a0") == "proc0"
        assert mapping.processor_of("A", "a1") == "proc1"
        assert mapping.processor_of("B", "b2") == "proc2"

    def test_index_mapping_coloc_paper_example(self, two_apps):
        # The Section 3 example: a_i and b_i share Proc_i.
        mapping = index_mapping(list(two_apps))
        for i in range(3):
            assert mapping.processor_of("A", f"a{i}") == mapping.processor_of(
                "B", f"b{i}"
            )

    def test_actors_on_filters_by_application(self, two_apps):
        mapping = index_mapping(list(two_apps))
        residents = mapping.actors_on("proc0")
        assert set(residents) == {("A", "a0"), ("B", "b0")}
        only_a = mapping.actors_on("proc0", applications=["A"])
        assert only_a == [("A", "a0")]

    def test_unknown_binding_raises(self, two_apps):
        mapping = index_mapping(list(two_apps))
        with pytest.raises(MappingError):
            mapping.processor_of("A", "ghost")
        with pytest.raises(MappingError):
            mapping.processor_of("Z", "a0")

    def test_unknown_processor_in_bindings_rejected(self, app_a):
        platform = Platform.homogeneous(1)
        with pytest.raises(MappingError):
            Mapping(platform, {"A": {"a0": "procX"}})

    def test_validate_against_catches_unbound_actor(self, app_a):
        platform = Platform.homogeneous(3)
        mapping = Mapping(platform, {"A": {"a0": "proc0"}})
        with pytest.raises(MappingError):
            mapping.validate_against([app_a])

    def test_validate_against_catches_type_mismatch(self):
        from repro.sdf.actor import Actor
        from repro.sdf.channel import Channel
        from repro.sdf.graph import SDFGraph

        graph = SDFGraph(
            "G",
            [Actor("a", 1, processor_type="dsp")],
            [Channel("a", "a", initial_tokens=1)],
        )
        platform = Platform([Processor("proc0", "risc")])
        mapping = Mapping(platform, {"G": {"a": "proc0"}})
        with pytest.raises(MappingError):
            mapping.validate_against([graph])

    def test_platform_too_narrow_rejected(self, two_apps):
        with pytest.raises(MappingError):
            index_mapping(list(two_apps), Platform.homogeneous(2))

    def test_index_mapping_requires_graphs(self):
        with pytest.raises(MappingError):
            index_mapping([])


class TestUseCase:
    def test_basic(self):
        use_case = UseCase.of("A", "B")
        assert use_case.size == 2
        assert "A" in use_case
        assert list(use_case) == ["A", "B"]
        assert use_case.label() == "A+B"

    def test_duplicates_rejected(self):
        with pytest.raises(ExperimentError):
            UseCase.of("A", "A")

    def test_select_preserves_order(self, two_apps):
        use_case = UseCase.of("B", "A")
        selected = use_case.select(list(two_apps))
        assert [g.name for g in selected] == ["B", "A"]

    def test_select_unknown_app_raises(self, two_apps):
        with pytest.raises(ExperimentError):
            UseCase.of("Z").select(list(two_apps))

    def test_all_use_cases_power_set(self):
        names = ("A", "B", "C")
        cases = all_use_cases(names)
        assert len(cases) == 7  # 2^3 - 1
        assert len(all_use_cases(names, include_empty=True)) == 8

    def test_use_cases_of_size(self):
        cases = use_cases_of_size(tuple("ABCDE"), 2)
        assert len(cases) == 10
        assert all(c.size == 2 for c in cases)

    def test_sampling_is_deterministic(self):
        names = tuple("ABCDEFGHIJ")
        first = use_cases_of_size(names, 5, sample=7, seed=3)
        second = use_cases_of_size(names, 5, sample=7, seed=3)
        assert first == second
        assert len(first) == 7

    def test_sampling_differs_across_seeds(self):
        names = tuple("ABCDEFGHIJ")
        first = use_cases_of_size(names, 5, sample=7, seed=3)
        second = use_cases_of_size(names, 5, sample=7, seed=4)
        assert first != second

    def test_size_out_of_range(self):
        with pytest.raises(ExperimentError):
            use_cases_of_size(("A",), 2)
