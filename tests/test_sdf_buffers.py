"""Buffer capacity analysis tests."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError
from repro.sdf.analysis import period
from repro.sdf.buffers import (
    SPACE_PREFIX,
    max_channel_occupancy,
    minimal_capacities_preserving_period,
    with_buffer_capacities,
)
from repro.sdf.builder import GraphBuilder
from repro.sdf.liveness import is_live


class TestMaxOccupancy:
    def test_paper_graph(self, app_a):
        peaks = max_channel_occupancy(app_a)
        # a0 produces 2 tokens at once on a0->a1; consumed one per a1
        # firing: peak 2.  a1->a2 collects 2 before a2 fires: peak 2.
        assert peaks["a0->a1"] == 2
        assert peaks["a1->a2"] == 2
        assert peaks["a2->a0"] == 1

    def test_peak_never_below_initial_tokens(self, two_apps):
        for graph in two_apps:
            peaks = max_channel_occupancy(graph)
            for channel in graph.channels:
                assert peaks[channel.name] >= channel.initial_tokens

    def test_random_graphs_have_positive_peaks(self):
        from repro.generation.random_sdf import random_sdf_graph

        for seed in range(4):
            graph = random_sdf_graph("G", seed=seed)
            peaks = max_channel_occupancy(graph)
            assert all(p >= 1 for p in peaks.values())


class TestBoundedGraphs:
    def test_reverse_channels_added(self, app_a):
        bounded = with_buffer_capacities(app_a, {"a0->a1": 2})
        names = [c.name for c in bounded.channels]
        assert f"{SPACE_PREFIX}a0->a1" in names
        reverse = next(
            c for c in bounded.channels
            if c.name == f"{SPACE_PREFIX}a0->a1"
        )
        assert reverse.source == "a1"
        assert reverse.target == "a0"
        assert reverse.production_rate == 1
        assert reverse.consumption_rate == 2
        assert reverse.initial_tokens == 2

    def test_sufficient_capacities_preserve_period(self, app_a):
        capacities = max_channel_occupancy(app_a)
        bounded = with_buffer_capacities(app_a, capacities)
        assert is_live(bounded)
        assert period(bounded) == pytest.approx(period(app_a))

    def test_tight_capacity_can_slow_the_graph(self):
        graph = (
            GraphBuilder("pipe")
            .actor("a", 10)
            .actor("b", 10)
            .cycle("a", "b", initial_tokens_on_back_edge=3)
            .build()
        )
        # Unbounded (well, 3-deep) pipeline: period 10 per iteration.
        assert period(graph) == pytest.approx(10.0)
        # Permitting only one in-flight token serializes the ring.
        bounded = with_buffer_capacities(graph, {"a->b": 1})
        assert period(bounded) > 10.0

    def test_capacity_below_initial_tokens_rejected(self, app_a):
        with pytest.raises(AnalysisError):
            with_buffer_capacities(app_a, {"a2->a0": 0})

    def test_unknown_channel_rejected(self, app_a):
        with pytest.raises(AnalysisError):
            with_buffer_capacities(app_a, {"ghost": 3})


class TestMinimalCapacities:
    def test_minimal_capacities_still_feasible(self, app_a):
        capacities = minimal_capacities_preserving_period(app_a)
        bounded = with_buffer_capacities(app_a, capacities)
        assert is_live(bounded)
        assert period(bounded) == pytest.approx(period(app_a))

    def test_minimal_not_above_occupancy(self, app_a):
        minimal = minimal_capacities_preserving_period(app_a)
        occupancy = max_channel_occupancy(app_a)
        for name, capacity in minimal.items():
            assert capacity <= occupancy[name]

    def test_on_random_graph(self):
        from repro.generation.random_sdf import random_sdf_graph

        graph = random_sdf_graph("G", seed=3)
        minimal = minimal_capacities_preserving_period(graph)
        bounded = with_buffer_capacities(graph, minimal)
        assert period(bounded) == pytest.approx(period(graph))
