"""Command-line interface tests."""

from __future__ import annotations

import json


from repro.cli import main


def run_cli(capsys, *argv: str) -> str:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


class TestGenerate:
    def test_json_output_is_valid_graph(self, capsys, tmp_path):
        out = run_cli(capsys, "generate", "--seed", "7")
        data = json.loads(out)
        assert data["name"] == "G"
        assert len(data["actors"]) >= 8

    def test_dot_output(self, capsys):
        out = run_cli(capsys, "generate", "--seed", "7", "--dot")
        assert out.startswith('digraph "G"')

    def test_deterministic(self, capsys):
        first = run_cli(capsys, "generate", "--seed", "3")
        second = run_cli(capsys, "generate", "--seed", "3")
        assert first == second

    def test_actor_range(self, capsys):
        out = run_cli(
            capsys, "generate", "--seed", "1", "--actors", "4", "4"
        )
        assert len(json.loads(out)["actors"]) == 4


class TestInfo:
    def test_info_reports_analysis(self, capsys, tmp_path):
        out = run_cli(capsys, "generate", "--seed", "7")
        path = tmp_path / "g.json"
        path.write_text(out)
        info = run_cli(capsys, "info", str(path))
        assert "period (isolation)" in info
        assert "strongly connected" in info
        assert "True" in info

    def test_missing_file_fails(self, capsys):
        assert main(["info", "/nonexistent/g.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestEstimate:
    def test_suite_estimate(self, capsys):
        out = run_cli(
            capsys, "estimate", "--suite", "3", "--model", "exact"
        )
        assert "Estimate (exact)" in out
        assert "A+B+C" in out

    def test_use_case_restriction(self, capsys):
        out = run_cli(
            capsys, "estimate", "--suite", "3", "--apps", "A,B"
        )
        assert "A+B" in out
        assert "C" not in out.splitlines()[0].replace("use-case", "")

    def test_media_selection(self, capsys):
        out = run_cli(capsys, "estimate", "--media")
        assert "h263" in out

    def test_bad_model_fails(self, capsys):
        assert main(
            ["estimate", "--suite", "2", "--model", "psychic"]
        ) == 1

    def test_file_selection(self, capsys, tmp_path):
        graph_json = run_cli(capsys, "generate", "--seed", "5")
        path = tmp_path / "g.json"
        path.write_text(graph_json)
        out = run_cli(capsys, "estimate", "--file", str(path))
        assert "G" in out


class TestSimulate:
    def test_suite_simulation(self, capsys):
        out = run_cli(
            capsys,
            "simulate", "--suite", "2", "--iterations", "30",
        )
        assert "Simulation of use-case" in out
        assert "busiest processors" in out


class TestReproduce:
    def test_quick_reproduction_small_suite(self, capsys):
        out = run_cli(
            capsys, "reproduce", "--applications", "2"
        )
        assert "Figure 5" in out
        assert "Table 1" in out
        assert "Figure 6" in out
        assert "Timing" in out


class TestSweep:
    def test_mini_sweep(self, capsys):
        out = run_cli(
            capsys,
            "sweep", "--suite", "2", "--samples", "2",
            "--sim-iterations", "20",
        )
        assert "Mean absolute inaccuracy" in out
        assert "worst_case" in out
        assert "second_order" in out
        assert "#apps" in out

    def test_store_reports_misses_then_hits(self, capsys, tmp_path):
        store = tmp_path / "results.jsonl"
        first = run_cli(
            capsys,
            "sweep", "--suite", "2", "--samples", "2",
            "--estimates-only", "--store", str(store),
        )
        assert "0 hits, 3 misses" in first
        assert store.exists()
        second = run_cli(
            capsys,
            "sweep", "--suite", "2", "--samples", "2",
            "--estimates-only", "--store", str(store),
        )
        assert "3 hits, 0 misses" in second
        assert "Sweep service" in second

    def test_jobs_flag_runs_service(self, capsys):
        out = run_cli(
            capsys,
            "sweep", "--suite", "2", "--samples", "2",
            "--estimates-only", "--jobs", "2",
        )
        assert "jobs=2" in out

    def test_store_requires_estimates_only(self, capsys, tmp_path):
        assert main(
            [
                "sweep", "--suite", "2",
                "--store", str(tmp_path / "s.jsonl"),
            ]
        ) == 1
        assert "--estimates-only" in capsys.readouterr().err

    def test_store_rejects_file_galleries(self, capsys, tmp_path):
        graph_json = run_cli(capsys, "generate", "--seed", "5")
        path = tmp_path / "g.json"
        path.write_text(graph_json)
        assert main(
            [
                "sweep", "--file", str(path), "--estimates-only",
                "--store", str(tmp_path / "s.jsonl"),
            ]
        ) == 1
        assert "reproducible gallery" in capsys.readouterr().err


class TestRuntime:
    def test_replay_summary(self, capsys):
        out = run_cli(
            capsys,
            "runtime", "--suite", "2", "--events", "60",
            "--seed", "3", "--slack", "1.5",
        )
        assert "Runtime replay" in out
        assert "admission ratio" in out
        assert "decisions/sec" in out
        assert "mean utilization" in out

    def test_policies_and_arrivals(self, capsys):
        for policy in ("reject", "evict", "downgrade-greedy"):
            out = run_cli(
                capsys,
                "runtime", "--suite", "2", "--events", "40",
                "--policy", policy, "--arrival", "bursty",
            )
            assert "Runtime replay" in out

    def test_validate_prints_simulation_comparison(self, capsys):
        out = run_cli(
            capsys,
            "runtime", "--suite", "2", "--events", "80",
            "--validate", "1", "--slack", "3.0",
        )
        assert "prediction vs. discrete-event simulation" in out

    def test_save_trace_and_log(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        log_path = tmp_path / "log.json"
        run_cli(
            capsys,
            "runtime", "--suite", "2", "--events", "40",
            "--save-trace", str(trace_path),
            "--save-log", str(log_path),
        )
        trace = json.loads(trace_path.read_text())
        assert len(trace["events"]) == 40
        log = json.loads(log_path.read_text())
        assert len(log["records"]) == 40


class TestModels:
    def test_registry_table(self, capsys):
        out = run_cli(capsys, "models")
        assert "Registered contention models" in out
        assert "priority_preemptive" in out
        assert "weighted_round_robin" in out
        assert "conservative" in out and "mean" in out


class TestConformance:
    def test_reduced_batch_passes(self, capsys):
        out = run_cli(
            capsys,
            "conformance", "--suite", "4", "--scenarios", "3",
            "--sim-iterations", "25",
            "--models", "exact,worst_case,priority_preemptive",
        )
        assert "Conformance" in out
        assert "PASSED" in out
        assert "upper-bounds sim" in out

    def test_unknown_model_fails(self, capsys):
        code = main(
            ["conformance", "--suite", "3", "--models", "oracle"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown waiting model" in captured.err


class TestNewModelsEndToEnd:
    def test_sweep_accepts_priority_preemptive(self, capsys):
        out = run_cli(
            capsys,
            "sweep", "--suite", "3", "--samples", "2",
            "--estimates-only", "--model", "priority_preemptive",
        )
        assert "priority-preemptive" in out

    def test_sweep_accepts_weighted_round_robin_with_weights(
        self, capsys
    ):
        out = run_cli(
            capsys,
            "sweep", "--suite", "3", "--samples", "2",
            "--estimates-only", "--model",
            "weighted_round_robin:A=2,B=1",
        )
        assert "weighted-rr" in out

    def test_estimate_lists_models_on_bad_name(self, capsys):
        code = main(
            ["estimate", "--suite", "2", "--model", "oracle"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "registered waiting models" in captured.err
        assert "priority_preemptive" in captured.err


class TestPlace:
    def test_table_output_reports_feasibility(self, capsys):
        out = run_cli(
            capsys,
            "place", "--suite", "3", "--slack", "4.5",
            "--strategy", "greedy",
        )
        assert "Placement (greedy, total_period)" in out
        assert "feasible" in out
        assert "best: mapping=" in out

    def test_json_output_is_a_placement_result(self, capsys):
        out = run_cli(
            capsys,
            "place", "--suite", "3", "--slack", "4.5",
            "--strategy", "exhaustive", "--json",
        )
        data = json.loads(out)
        assert data["strategy"] == "exhaustive"
        assert data["feasible"] is True
        assert set(data["best"]["periods"]) == {"A", "B", "C"}

    def test_seeded_run_is_deterministic(self, capsys):
        argv = [
            "place", "--suite", "3", "--slack", "4.5",
            "--strategy", "local_search", "--seed", "11", "--json",
        ]
        first = run_cli(capsys, *argv)
        second = run_cli(capsys, *argv)
        assert first == second

    def test_explicit_targets(self, capsys):
        out = run_cli(
            capsys,
            "place", "--suite", "2",
            "--target", "A=2000", "--target", "B=2000",
        )
        assert "feasible" in out

    def test_bad_target_application_fails(self, capsys):
        code = main(
            ["place", "--suite", "2", "--target", "Zed=100"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "target" in captured.err

    def test_weights_none_disables_the_weight_axis(self, capsys):
        out = run_cli(
            capsys,
            "place", "--suite", "2", "--slack", "4.5",
            "--weights", "none", "--json",
        )
        data = json.loads(out)
        assert data["space"]["size"] == 3  # mappings only
