"""Property-based tests of the SDF substrate (hypothesis).

These pin the structural invariants the rest of the library leans on:
generated graphs are consistent/live/strongly-connected, both period
engines agree, HSDF expansion respects the repetition vector, and the
period scales linearly with execution times.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.sdf.analysis import AnalysisMethod, period
from repro.sdf.hsdf import to_hsdf
from repro.sdf.liveness import is_live
from repro.sdf.mcm import max_cycle_ratio
from repro.sdf.repetition import repetition_vector
from repro.sdf.statespace import self_timed_period

_CONFIGS = st.sampled_from(
    [
        GeneratorConfig(actor_count_range=(3, 6)),
        GeneratorConfig(actor_count_range=(3, 6), pipeline_depth=2),
        GeneratorConfig(
            actor_count_range=(4, 8),
            repetition_range=(1, 2),
            extra_edge_fraction=1.0,
        ),
        GeneratorConfig(actor_count_range=(2, 4), repetition_range=(1, 4)),
    ]
)

_slow_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(0, 10_000), config=_CONFIGS)
@_slow_settings
def test_generated_graphs_are_wellformed(seed, config):
    graph = random_sdf_graph("G", seed=seed, config=config)
    assert graph.is_strongly_connected()
    assert is_live(graph)
    vector = repetition_vector(graph)
    assert all(v >= 1 for v in vector.values())
    for channel in graph.channels:
        assert (
            vector[channel.source] * channel.production_rate
            == vector[channel.target] * channel.consumption_rate
        )


@given(seed=st.integers(0, 3_000), config=_CONFIGS)
@_slow_settings
def test_period_engines_agree(seed, config):
    graph = random_sdf_graph("G", seed=seed, config=config)
    analytical = period(graph, AnalysisMethod.MCR)
    executed = self_timed_period(graph)
    assert abs(analytical - executed) <= 1e-6 * max(1.0, analytical)


@given(seed=st.integers(0, 3_000))
@_slow_settings
def test_howard_matches_lawler(seed):
    graph = random_sdf_graph(
        "G", seed=seed, config=GeneratorConfig(actor_count_range=(3, 6))
    )
    hsdf = to_hsdf(graph)
    howard = max_cycle_ratio(hsdf, method="howard").ratio
    lawler = max_cycle_ratio(hsdf, method="lawler").ratio
    assert abs(howard - lawler) <= 1e-6 * max(1.0, howard)


@given(seed=st.integers(0, 3_000), config=_CONFIGS)
@_slow_settings
def test_hsdf_expansion_respects_repetition_vector(seed, config):
    graph = random_sdf_graph("G", seed=seed, config=config)
    vector = repetition_vector(graph)
    hsdf = to_hsdf(graph)
    assert hsdf.vertex_count == sum(vector.values())
    for edge in hsdf.edges:
        assert edge.delay >= 0


@given(seed=st.integers(0, 2_000), scale=st.integers(2, 5))
@_slow_settings
def test_period_scales_linearly_with_execution_times(seed, scale):
    graph = random_sdf_graph(
        "G", seed=seed, config=GeneratorConfig(actor_count_range=(3, 5))
    )
    scaled = graph.with_execution_times(
        {a.name: a.execution_time * scale for a in graph.actors}
    )
    assert period(scaled) == _approx(period(graph) * scale)


@given(seed=st.integers(0, 2_000))
@_slow_settings
def test_period_bounded_by_workload_and_bottleneck(seed):
    """Slowest-actor busy time <= period <= sequential workload.

    With pipeline_depth=1 the backbone serializes one iteration, so the
    sequential workload is exact; any actor's total busy time per
    iteration is a lower bound for any schedule.
    """
    graph = random_sdf_graph(
        "G",
        seed=seed,
        config=GeneratorConfig(actor_count_range=(3, 6), pipeline_depth=1),
    )
    vector = repetition_vector(graph)
    workload = sum(
        vector[a.name] * a.execution_time for a in graph.actors
    )
    bottleneck = max(
        vector[a.name] * a.execution_time for a in graph.actors
    )
    value = period(graph)
    assert bottleneck - 1e-9 <= value <= workload + 1e-9


def _approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-9)
