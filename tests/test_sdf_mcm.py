"""Maximum cycle ratio tests: Howard vs Lawler vs brute force,
plus warm-start / incremental-solver parity."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import AnalysisError, DeadlockError
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.sdf.builder import GraphBuilder
from repro.sdf.hsdf import to_hsdf
from repro.sdf.mcm import (
    IncrementalMCRSolver,
    RatioEdge,
    max_cycle_ratio,
    max_cycle_ratio_edges,
)


def ring_graph(times, tokens_on_back=1):
    builder = GraphBuilder("ring")
    names = [f"v{i}" for i in range(len(times))]
    for name, tau in zip(names, times):
        builder.actor(name, tau)
    builder.cycle(*names, initial_tokens_on_back_edge=tokens_on_back)
    return builder.build()


class TestOnSDFGraphs:
    def test_paper_graph_period(self, app_a):
        assert max_cycle_ratio(to_hsdf(app_a)).ratio == pytest.approx(300.0)

    def test_simple_ring(self):
        graph = ring_graph([10, 20, 30])
        assert max_cycle_ratio(to_hsdf(graph)).ratio == pytest.approx(60.0)

    def test_two_tokens_halve_the_period_with_auto_concurrency(self):
        graph = ring_graph([10, 20, 30], tokens_on_back=2)
        hsdf = to_hsdf(graph, auto_concurrency=True)
        assert max_cycle_ratio(hsdf).ratio == pytest.approx(30.0)

    def test_without_auto_concurrency_bottleneck_actor_binds(self):
        # Two tokens pipeline the ring, but each actor still serializes:
        # the slowest actor's self-cycle gives ratio 30/1.
        graph = ring_graph([10, 20, 30], tokens_on_back=2)
        hsdf = to_hsdf(graph)
        assert max_cycle_ratio(hsdf).ratio == pytest.approx(30.0)

    def test_all_methods_agree(self, app_a, app_b):
        for graph in (app_a, app_b):
            hsdf = to_hsdf(graph)
            howard = max_cycle_ratio(hsdf, method="howard").ratio
            lawler = max_cycle_ratio(hsdf, method="lawler").ratio
            brute = max_cycle_ratio(hsdf, method="brute").ratio
            assert howard == pytest.approx(brute, rel=1e-9)
            assert lawler == pytest.approx(brute, rel=1e-6)

    def test_zero_token_cycle_raises_deadlock(self):
        graph = ring_graph([10, 20], tokens_on_back=0)
        # Channels with no tokens anywhere on the cycle: remove... the
        # ring helper puts tokens on the back edge; 0 = deadlock.
        with pytest.raises(DeadlockError):
            max_cycle_ratio(to_hsdf(graph))

    def test_critical_cycle_is_reported(self, app_a):
        result = max_cycle_ratio(to_hsdf(app_a))
        assert len(result.cycle) >= 1


class TestOnRawEdges:
    def test_single_self_loop(self):
        result = max_cycle_ratio_edges(
            1, [RatioEdge(0, 0, weight=10.0, transit=2)]
        )
        assert result.ratio == pytest.approx(5.0)

    def test_picks_heavier_cycle(self):
        edges = [
            RatioEdge(0, 1, 10.0, 1),
            RatioEdge(1, 0, 10.0, 1),  # cycle ratio 10
            RatioEdge(0, 0, 50.0, 1),  # cycle ratio 50
        ]
        result = max_cycle_ratio_edges(2, edges)
        assert result.ratio == pytest.approx(50.0)
        assert tuple(result.cycle) == (0,)

    def test_transit_in_denominator(self):
        edges = [
            RatioEdge(0, 1, 30.0, 2),
            RatioEdge(1, 0, 30.0, 1),
        ]
        # (30 + 30) / (2 + 1) = 20.
        assert max_cycle_ratio_edges(2, edges).ratio == pytest.approx(20.0)

    def test_acyclic_graph_raises(self):
        edges = [RatioEdge(0, 1, 5.0, 1)]
        with pytest.raises(AnalysisError):
            max_cycle_ratio_edges(2, edges)

    def test_zero_transit_cycle_raises(self):
        edges = [
            RatioEdge(0, 1, 5.0, 0),
            RatioEdge(1, 0, 5.0, 0),
        ]
        with pytest.raises(DeadlockError):
            max_cycle_ratio_edges(2, edges)

    def test_multiple_sccs_max_taken(self):
        edges = [
            RatioEdge(0, 0, 10.0, 1),
            RatioEdge(1, 1, 99.0, 1),
            RatioEdge(0, 1, 1.0, 0),  # cross edge, not on a cycle
        ]
        assert max_cycle_ratio_edges(2, edges).ratio == pytest.approx(99.0)

    def test_parallel_edges_min_transit_binds(self):
        edges = [
            RatioEdge(0, 1, 10.0, 1),
            RatioEdge(0, 1, 10.0, 3),
            RatioEdge(1, 0, 10.0, 1),
        ]
        # The 1-transit parallel edge dominates: (10+10)/(1+1) = 10.
        for method in ("howard", "lawler", "brute"):
            assert max_cycle_ratio_edges(
                2, edges, method=method
            ).ratio == pytest.approx(10.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            max_cycle_ratio_edges(
                1, [RatioEdge(0, 0, 1.0, 1)], method="magic"
            )

    def test_methods_agree_on_dense_graph(self):
        import random

        rng = random.Random(7)
        n = 6
        edges = [
            RatioEdge(i, (i + 1) % n, float(rng.randint(1, 50)), 1)
            for i in range(n)
        ]
        for _ in range(8):
            u, v = rng.randrange(n), rng.randrange(n)
            edges.append(
                RatioEdge(
                    u, v, float(rng.randint(1, 50)), rng.randint(1, 3)
                )
            )
        howard = max_cycle_ratio_edges(n, edges, method="howard").ratio
        lawler = max_cycle_ratio_edges(n, edges, method="lawler").ratio
        brute = max_cycle_ratio_edges(n, edges, method="brute").ratio
        assert howard == pytest.approx(brute, rel=1e-9)
        assert lawler == pytest.approx(brute, rel=1e-6)


def _random_hsdf_problem(rng, n):
    """A random strongly-cyclic RatioEdge problem (ring + chords)."""
    edges = [
        RatioEdge(
            i,
            (i + 1) % n,
            float(rng.randint(1, 60)),
            1 if (i + 1) % n == 0 else rng.randint(0, 1),
        )
        for i in range(n)
    ]
    for _ in range(rng.randint(1, 2 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        edges.append(
            RatioEdge(
                u, v, float(rng.randint(1, 60)), rng.randint(1, 3)
            )
        )
    return edges


class TestWarmStart:
    """Warm-started Howard must match cold Howard, Lawler and brute."""

    def test_result_carries_policy_for_howard_only(self):
        edges = [RatioEdge(0, 1, 10.0, 1), RatioEdge(1, 0, 20.0, 1)]
        howard = max_cycle_ratio_edges(2, edges, method="howard")
        assert howard.policy is not None
        assert len(howard.policy) == 2
        assert all(index >= 0 for index in howard.policy)
        for method in ("lawler", "brute"):
            assert max_cycle_ratio_edges(2, edges, method=method).policy is None

    def test_policy_entries_are_valid_out_edges(self):
        rng = random.Random(11)
        edges = _random_hsdf_problem(rng, 7)
        result = max_cycle_ratio_edges(7, edges, method="howard")
        for vertex, edge_id in enumerate(result.policy):
            if edge_id >= 0:
                assert edges[edge_id].source == vertex

    def test_warm_start_is_identical_on_same_weights(self):
        rng = random.Random(23)
        for _ in range(20):
            n = rng.randint(2, 7)
            edges = _random_hsdf_problem(rng, n)
            cold = max_cycle_ratio_edges(n, edges, method="howard")
            warm = max_cycle_ratio_edges(
                n, edges, method="howard", initial_policy=cold.policy
            )
            assert warm.ratio == cold.ratio

    def test_warm_start_matches_all_methods_after_weight_drift(self):
        """Property: reusing the previous policy under perturbed weights
        converges to the same maximum as cold Howard, Lawler and brute."""
        rng = random.Random(5)
        for trial in range(25):
            n = rng.randint(2, 6)
            edges = _random_hsdf_problem(rng, n)
            previous = max_cycle_ratio_edges(n, edges, method="howard")
            drifted = [
                RatioEdge(
                    e.source,
                    e.target,
                    e.weight * rng.uniform(0.3, 3.0),
                    e.transit,
                )
                for e in edges
            ]
            warm = max_cycle_ratio_edges(
                n,
                drifted,
                method="howard",
                initial_policy=previous.policy,
            )
            cold = max_cycle_ratio_edges(n, drifted, method="howard")
            lawler = max_cycle_ratio_edges(n, drifted, method="lawler")
            brute = max_cycle_ratio_edges(n, drifted, method="brute")
            assert warm.ratio == pytest.approx(cold.ratio, rel=1e-9), trial
            assert warm.ratio == pytest.approx(brute.ratio, rel=1e-9), trial
            assert warm.ratio == pytest.approx(lawler.ratio, rel=1e-6), trial

    def test_warm_start_on_randomized_sdf_expansions(self):
        """Warm policy from the base expansion, re-solved with inflated
        execution times, agrees with cold Howard and brute on real HSDF
        expansions of randomized SDF graphs."""
        config = GeneratorConfig(
            actor_count_range=(3, 5), repetition_range=(1, 2)
        )
        for seed in range(12):
            graph = random_sdf_graph(f"G{seed}", seed=seed, config=config)
            hsdf = to_hsdf(graph)
            base = max_cycle_ratio(hsdf)
            rng = random.Random(1000 + seed)
            inflated = graph.with_execution_times(
                {
                    actor.name: actor.execution_time
                    * rng.uniform(1.0, 2.5)
                    for actor in graph.actors
                }
            )
            inflated_hsdf = to_hsdf(inflated)
            warm = max_cycle_ratio(
                inflated_hsdf, initial_policy=base.policy
            )
            cold = max_cycle_ratio(inflated_hsdf)
            brute = max_cycle_ratio(inflated_hsdf, method="brute")
            assert warm.ratio == pytest.approx(cold.ratio, rel=1e-9)
            assert warm.ratio == pytest.approx(brute.ratio, rel=1e-9)


class TestIncrementalSolver:
    def test_solver_matches_cold_over_weight_sequences(self):
        """Property: a solver reused across randomized weight updates
        (warm-starting itself) stays identical to cold solves."""
        rng = random.Random(97)
        for trial in range(10):
            n = rng.randint(2, 6)
            edges = _random_hsdf_problem(rng, n)
            solver = IncrementalMCRSolver(n, edges, method="howard")
            for _ in range(8):
                weights = [
                    e.weight * rng.uniform(0.2, 4.0) for e in edges
                ]
                reweighted = [
                    RatioEdge(e.source, e.target, w, e.transit)
                    for e, w in zip(edges, weights)
                ]
                incremental = solver.solve(weights)
                cold = max_cycle_ratio_edges(n, reweighted)
                brute = max_cycle_ratio_edges(
                    n, reweighted, method="brute"
                )
                assert incremental.ratio == pytest.approx(
                    cold.ratio, rel=1e-9
                ), trial
                assert incremental.ratio == pytest.approx(
                    brute.ratio, rel=1e-9
                ), trial

    def test_solver_keeps_last_policy(self):
        edges = [RatioEdge(0, 1, 10.0, 1), RatioEdge(1, 0, 20.0, 1)]
        solver = IncrementalMCRSolver(2, edges)
        assert solver.policy is None
        solver.solve()
        assert solver.policy is not None
        assert solver.solve_count == 1

    def test_solver_rejects_bad_weight_count(self):
        solver = IncrementalMCRSolver(1, [RatioEdge(0, 0, 5.0, 1)])
        with pytest.raises(AnalysisError):
            solver.solve([1.0, 2.0])

    def test_solver_rejects_unknown_method(self):
        with pytest.raises(AnalysisError):
            IncrementalMCRSolver(
                1, [RatioEdge(0, 0, 5.0, 1)], method="magic"
            )

    def test_solver_detects_deadlock_at_construction(self):
        edges = [RatioEdge(0, 1, 5.0, 0), RatioEdge(1, 0, 5.0, 0)]
        with pytest.raises(DeadlockError):
            IncrementalMCRSolver(2, edges)

    def test_solver_raises_on_acyclic_graph(self):
        solver = IncrementalMCRSolver(2, [RatioEdge(0, 1, 5.0, 1)])
        with pytest.raises(AnalysisError):
            solver.solve()
