"""Maximum cycle ratio tests: Howard vs Lawler vs brute force."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError, DeadlockError
from repro.sdf.builder import GraphBuilder
from repro.sdf.hsdf import to_hsdf
from repro.sdf.mcm import (
    CycleRatioResult,
    RatioEdge,
    max_cycle_ratio,
    max_cycle_ratio_edges,
)


def ring_graph(times, tokens_on_back=1):
    builder = GraphBuilder("ring")
    names = [f"v{i}" for i in range(len(times))]
    for name, tau in zip(names, times):
        builder.actor(name, tau)
    builder.cycle(*names, initial_tokens_on_back_edge=tokens_on_back)
    return builder.build()


class TestOnSDFGraphs:
    def test_paper_graph_period(self, app_a):
        assert max_cycle_ratio(to_hsdf(app_a)).ratio == pytest.approx(300.0)

    def test_simple_ring(self):
        graph = ring_graph([10, 20, 30])
        assert max_cycle_ratio(to_hsdf(graph)).ratio == pytest.approx(60.0)

    def test_two_tokens_halve_the_period_with_auto_concurrency(self):
        graph = ring_graph([10, 20, 30], tokens_on_back=2)
        hsdf = to_hsdf(graph, auto_concurrency=True)
        assert max_cycle_ratio(hsdf).ratio == pytest.approx(30.0)

    def test_without_auto_concurrency_bottleneck_actor_binds(self):
        # Two tokens pipeline the ring, but each actor still serializes:
        # the slowest actor's self-cycle gives ratio 30/1.
        graph = ring_graph([10, 20, 30], tokens_on_back=2)
        hsdf = to_hsdf(graph)
        assert max_cycle_ratio(hsdf).ratio == pytest.approx(30.0)

    def test_all_methods_agree(self, app_a, app_b):
        for graph in (app_a, app_b):
            hsdf = to_hsdf(graph)
            howard = max_cycle_ratio(hsdf, method="howard").ratio
            lawler = max_cycle_ratio(hsdf, method="lawler").ratio
            brute = max_cycle_ratio(hsdf, method="brute").ratio
            assert howard == pytest.approx(brute, rel=1e-9)
            assert lawler == pytest.approx(brute, rel=1e-6)

    def test_zero_token_cycle_raises_deadlock(self):
        graph = ring_graph([10, 20], tokens_on_back=0)
        # Channels with no tokens anywhere on the cycle: remove... the
        # ring helper puts tokens on the back edge; 0 = deadlock.
        with pytest.raises(DeadlockError):
            max_cycle_ratio(to_hsdf(graph))

    def test_critical_cycle_is_reported(self, app_a):
        result = max_cycle_ratio(to_hsdf(app_a))
        assert len(result.cycle) >= 1


class TestOnRawEdges:
    def test_single_self_loop(self):
        result = max_cycle_ratio_edges(
            1, [RatioEdge(0, 0, weight=10.0, transit=2)]
        )
        assert result.ratio == pytest.approx(5.0)

    def test_picks_heavier_cycle(self):
        edges = [
            RatioEdge(0, 1, 10.0, 1),
            RatioEdge(1, 0, 10.0, 1),  # cycle ratio 10
            RatioEdge(0, 0, 50.0, 1),  # cycle ratio 50
        ]
        result = max_cycle_ratio_edges(2, edges)
        assert result.ratio == pytest.approx(50.0)
        assert tuple(result.cycle) == (0,)

    def test_transit_in_denominator(self):
        edges = [
            RatioEdge(0, 1, 30.0, 2),
            RatioEdge(1, 0, 30.0, 1),
        ]
        # (30 + 30) / (2 + 1) = 20.
        assert max_cycle_ratio_edges(2, edges).ratio == pytest.approx(20.0)

    def test_acyclic_graph_raises(self):
        edges = [RatioEdge(0, 1, 5.0, 1)]
        with pytest.raises(AnalysisError):
            max_cycle_ratio_edges(2, edges)

    def test_zero_transit_cycle_raises(self):
        edges = [
            RatioEdge(0, 1, 5.0, 0),
            RatioEdge(1, 0, 5.0, 0),
        ]
        with pytest.raises(DeadlockError):
            max_cycle_ratio_edges(2, edges)

    def test_multiple_sccs_max_taken(self):
        edges = [
            RatioEdge(0, 0, 10.0, 1),
            RatioEdge(1, 1, 99.0, 1),
            RatioEdge(0, 1, 1.0, 0),  # cross edge, not on a cycle
        ]
        assert max_cycle_ratio_edges(2, edges).ratio == pytest.approx(99.0)

    def test_parallel_edges_min_transit_binds(self):
        edges = [
            RatioEdge(0, 1, 10.0, 1),
            RatioEdge(0, 1, 10.0, 3),
            RatioEdge(1, 0, 10.0, 1),
        ]
        # The 1-transit parallel edge dominates: (10+10)/(1+1) = 10.
        for method in ("howard", "lawler", "brute"):
            assert max_cycle_ratio_edges(
                2, edges, method=method
            ).ratio == pytest.approx(10.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            max_cycle_ratio_edges(
                1, [RatioEdge(0, 0, 1.0, 1)], method="magic"
            )

    def test_methods_agree_on_dense_graph(self):
        import random

        rng = random.Random(7)
        n = 6
        edges = [
            RatioEdge(i, (i + 1) % n, float(rng.randint(1, 50)), 1)
            for i in range(n)
        ]
        for _ in range(8):
            u, v = rng.randrange(n), rng.randrange(n)
            edges.append(
                RatioEdge(
                    u, v, float(rng.randint(1, 50)), rng.randint(1, 3)
                )
            )
        howard = max_cycle_ratio_edges(n, edges, method="howard").ratio
        lawler = max_cycle_ratio_edges(n, edges, method="lawler").ratio
        brute = max_cycle_ratio_edges(n, edges, method="brute").ratio
        assert howard == pytest.approx(brute, rel=1e-9)
        assert lawler == pytest.approx(brute, rel=1e-6)
