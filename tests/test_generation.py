"""Random generator and gallery tests."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.generation.gallery import (
    h263_decoder,
    jpeg_decoder,
    media_device_suite,
    modem,
    mp3_decoder,
    paper_figure1,
    paper_two_apps,
    sample_rate_converter,
)
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.sdf.analysis import period
from repro.sdf.liveness import is_live
from repro.sdf.repetition import repetition_vector


class TestRandomGenerator:
    def test_deterministic_for_seed(self):
        first = random_sdf_graph("G", seed=11)
        second = random_sdf_graph("G", seed=11)
        assert [a.name for a in first] == [a.name for a in second]
        assert first.execution_times() == second.execution_times()
        assert len(first.channels) == len(second.channels)
        assert period(first) == period(second)

    def test_different_seeds_differ(self):
        graphs = [random_sdf_graph("G", seed=s) for s in range(6)]
        periods = {period(g) for g in graphs}
        assert len(periods) > 1

    def test_actor_count_range_respected(self):
        config = GeneratorConfig(actor_count_range=(4, 4))
        for seed in range(5):
            assert len(random_sdf_graph("G", seed=seed, config=config)) == 4

    def test_execution_time_range_respected(self):
        config = GeneratorConfig(execution_time_range=(7, 9))
        graph = random_sdf_graph("G", seed=0, config=config)
        for actor in graph:
            assert 7 <= actor.execution_time <= 9

    def test_repetition_entries_in_range(self):
        config = GeneratorConfig(repetition_range=(1, 3))
        for seed in range(5):
            graph = random_sdf_graph("G", seed=seed, config=config)
            q = repetition_vector(graph)
            assert all(1 <= v <= 3 for v in q.values())

    def test_pipeline_depth_speeds_up_period(self):
        shallow = random_sdf_graph(
            "G", seed=5, config=GeneratorConfig(pipeline_depth=1)
        )
        deep = random_sdf_graph(
            "G", seed=5, config=GeneratorConfig(pipeline_depth=3)
        )
        assert period(deep) <= period(shallow)

    def test_no_extra_edges_option(self):
        config = GeneratorConfig(
            actor_count_range=(5, 5), extra_edge_fraction=0.0
        )
        graph = random_sdf_graph("G", seed=0, config=config)
        assert len(graph.channels) == 5  # backbone only

    def test_invalid_config_rejected(self):
        with pytest.raises(GraphError):
            GeneratorConfig(actor_count_range=(1, 1))
        with pytest.raises(GraphError):
            GeneratorConfig(pipeline_depth=0)
        with pytest.raises(GraphError):
            GeneratorConfig(extra_edge_fraction=-1)


class TestGallery:
    @pytest.mark.parametrize(
        "factory",
        [
            paper_figure1,
            h263_decoder,
            mp3_decoder,
            jpeg_decoder,
            modem,
            sample_rate_converter,
        ],
    )
    def test_graph_is_wellformed(self, factory):
        graph = factory()
        assert graph.is_strongly_connected()
        assert is_live(graph)
        assert period(graph) > 0

    def test_paper_two_apps_periods(self):
        a, b = paper_two_apps()
        assert period(a) == pytest.approx(300.0)
        assert period(b) == pytest.approx(300.0)

    def test_media_suite_names_unique(self):
        suite = media_device_suite()
        names = [g.name for g in suite]
        assert len(set(names)) == len(names) == 5

    def test_h263_rates(self):
        graph = h263_decoder()
        q = repetition_vector(graph)
        assert q["iq"] == 9 * q["vld"]
