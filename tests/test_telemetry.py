"""Tests of the telemetry layer: registry, tracer, exporters, wiring.

Unit coverage uses private registry/tracer instances so nothing leaks
through the process-global singletons; the end-to-end classes spin a
real ``EstimationServer`` on an ephemeral TCP port (same harness as
``test_service.py``) and assert the observable contracts: trace ids
propagate through the JSON-lines protocol into server-side spans and
back out in responses without cross-contamination, the ``metrics`` verb
returns a valid exposition, the ``stats`` verb stays a byte-compatible
view over the same registry counters, and the scrape endpoint serves
the merged exposition over HTTP.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro
from repro.conformance import _engine_profile_delta, _engine_profile_snapshot
from repro.exceptions import AnalysisError, TelemetryError
from repro.runtime.service import GallerySpec
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.server import EstimationServer
from repro.simulation.engine import record_engine_stats
from repro.simulation.metrics import EngineStats
from repro.telemetry import (
    JsonLinesSpanSink,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    chrome_trace_events,
    engine_stats_events,
    get_registry,
    get_tracer,
    log_buckets,
    render_merged,
    set_enabled,
    simulation_trace_events,
    snapshot_merged,
    span_to_dict,
    start_metrics_endpoint,
    validate_exposition,
    write_chrome_trace,
    write_span_log,
)
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
)

GALLERY = {"kind": "paper", "seed": 2007, "applications": 4}
SPEC = GallerySpec(kind="paper", seed=2007, application_count=4)


def names():
    return SPEC.application_names()


# ----------------------------------------------------------------------
# Buckets and bare instruments
# ----------------------------------------------------------------------
class TestBucketsAndInstruments:
    def test_log_buckets_cover_the_range(self):
        bounds = log_buckets(1e-3, 10.0, per_decade=1)
        assert bounds[0] <= 1e-3
        assert bounds[-1] >= 10.0
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_log_buckets_are_deterministic(self):
        assert log_buckets(1e-5, 10.0) == log_buckets(1e-5, 10.0)

    def test_log_buckets_reject_bad_ranges(self):
        for minimum, maximum, per_decade in [
            (0.0, 1.0, 4),
            (1.0, 1.0, 4),
            (1.0, 0.5, 4),
            (1e-3, 1.0, 0),
        ]:
            with pytest.raises(TelemetryError):
                log_buckets(minimum, maximum, per_decade)

    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(TelemetryError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0
        gauge.set_max(10.0)
        gauge.set_max(5.0)
        assert gauge.value == 10.0

    def test_histogram_counts_sum_and_mean(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(105.0)
        assert histogram.mean == pytest.approx(105.0 / 4)
        buckets = histogram.bucket_counts()
        assert buckets["1"] == 1
        assert buckets["2"] == 2
        assert buckets["4"] == 3
        assert buckets["+Inf"] == 4

    def test_histogram_quantiles_clamp_to_observed_extremes(self):
        histogram = Histogram((1.0, 10.0, 100.0))
        for value in (3.0, 4.0, 5.0):
            histogram.observe(value)
        # All samples share one bucket whose bound is 10; the clamp keeps
        # the answer inside [min, max].
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(0.0) >= 3.0
        assert histogram.quantile(1.0) == pytest.approx(5.0)
        with pytest.raises(TelemetryError):
            histogram.quantile(-0.1)

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram((1.0,)).quantile(0.5) == 0.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram(())
        with pytest.raises(TelemetryError):
            Histogram((2.0, 1.0))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_acquisition_is_idempotent_per_label_set(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("x_total", "x", flavour="a")
        again = registry.counter("x_total", "x", flavour="a")
        other = registry.counter("x_total", "x", flavour="b")
        assert first is again
        assert first is not other

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c_total") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h") is NULL_HISTOGRAM
        # Null instruments absorb writes and read as empty.
        NULL_COUNTER.inc()
        NULL_GAUGE.set(9)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_HISTOGRAM.bucket_counts() == {"+Inf": 0}
        assert registry.render_prometheus() == ""

    def test_always_instruments_stay_live_while_disabled(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("kept_total", "kept", always=True)
        counter.inc(3)
        assert registry.value("kept_total") == 3.0

    def test_kind_label_and_bucket_conflicts_are_refused(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c_total", "c")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("c_total")
        registry.gauge("g", "g", shard="0")
        with pytest.raises(TelemetryError, match="labels"):
            registry.gauge("g", "g", other="0")
        registry.histogram("h", "h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError, match="buckets"):
            registry.histogram("h", "h", buckets=(1.0, 4.0))

    def test_invalid_names_are_refused(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(TelemetryError, match="metric name"):
            registry.counter("not a name")
        with pytest.raises(TelemetryError, match="label name"):
            registry.counter("ok_total", **{"bad-label": 1})

    def test_value_and_label_values(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("events_total", "e", flavour="numpy").inc(5)
        registry.counter("events_total", "e", flavour="python").inc(2)
        registry.histogram("lat", "l", buckets=(1.0,)).observe(0.5)
        assert registry.value("events_total", flavour="numpy") == 5.0
        assert registry.value("events_total", flavour="missing") is None
        assert registry.value("absent_total") is None
        assert registry.value("lat") is None  # histograms have no scalar
        assert registry.label_values("events_total", "flavour") == [
            "numpy",
            "python",
        ]
        assert registry.label_values("absent_total", "flavour") == []

    def test_exposition_round_trips_through_the_validator(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("req_total", "requests", op="estimate").inc(7)
        registry.gauge("depth", "queue depth").set(2.5)
        histogram = registry.histogram(
            "wait_seconds", "waits", buckets=(0.001, 0.1, 10.0)
        )
        histogram.observe(0.05)
        histogram.observe(2.0)
        text = registry.render_prometheus()
        assert validate_exposition(text) == len(
            [line for line in text.splitlines() if not line.startswith("#")]
        )
        assert 'req_total{op="estimate"} 7' in text
        assert "wait_seconds_count 2" in text

    def test_snapshot_shape(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c_total", "help text", kind="x").inc()
        registry.histogram("h", "hist", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["type"] == "counter"
        assert snapshot["c_total"]["help"] == "help text"
        assert snapshot["c_total"]["samples"][0] == {
            "labels": {"kind": "x"},
            "value": 1.0,
        }
        sample = snapshot["h"]["samples"][0]
        assert sample["count"] == 1
        assert sample["mean"] == pytest.approx(0.5)
        assert sample["buckets"]["+Inf"] == 1
        json.dumps(snapshot)  # JSON-serialisable end to end

    def test_merged_views_let_the_earlier_registry_win(self):
        ours = MetricsRegistry(enabled=True)
        theirs = MetricsRegistry(enabled=True)
        ours.counter("shared_total", "ours").inc(1)
        theirs.counter("shared_total", "theirs").inc(9)
        theirs.counter("only_theirs_total", "t").inc(2)
        text = render_merged(ours, theirs)
        assert text.count("# TYPE shared_total") == 1
        assert "shared_total 1" in text
        assert "only_theirs_total 2" in text
        validate_exposition(text)
        merged = snapshot_merged(ours, theirs)
        assert merged["shared_total"]["help"] == "ours"
        assert "only_theirs_total" in merged

    def test_reset_drops_families(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("gone_total").inc()
        registry.reset()
        assert registry.value("gone_total") is None

    def test_global_toggle_flips_registry_and_tracer_together(self):
        registry_was = get_registry().enabled
        tracer_was = get_tracer().enabled
        try:
            set_enabled(False)
            assert get_registry().counter("tmp_toggle_total") is NULL_COUNTER
            assert get_tracer().span("tmp") is NULL_SPAN
        finally:
            set_enabled(True)
            get_registry().enabled = registry_was
            get_tracer().enabled = tracer_was


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_inherit_parent_and_trace_id(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", trace_id="t-1") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == "t-1"
        assert outer.parent_id is None
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert all(span.duration >= 0.0 for span in spans)
        assert spans[0].end >= spans[0].start

    def test_trace_context_binds_the_current_thread(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_trace_id() is None
        with tracer.trace("req-9"):
            assert tracer.current_trace_id() == "req-9"
            with tracer.span("work") as span:
                pass
        assert span.trace_id == "req-9"
        assert tracer.current_trace_id() is None

    def test_disabled_tracer_returns_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("ignored", anything=1)
        assert span is NULL_SPAN
        with span as entered:
            entered.set(more=2)  # all no-ops
        assert tracer.spans() == []

    def test_interleaved_exits_keep_parent_attribution_straight(self):
        # Async interleaving can exit an older span while a newer one is
        # still open; identity removal must not pop the newer span.
        tracer = Tracer(enabled=True)
        first = tracer.span("first").__enter__()
        second = tracer.span("second").__enter__()
        first.__exit__(None, None, None)
        with tracer.span("third") as third:
            pass
        second.__exit__(None, None, None)
        assert second.parent_id == first.span_id
        assert third.parent_id == second.span_id

    def test_set_attaches_midspan_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("solve", gallery="g") as span:
            span.set(batch=16)
        assert span.attributes == {"gallery": "g", "batch": 16}

    def test_record_registers_a_retroactive_span(self):
        tracer = Tracer(enabled=True)
        tracer.record("queue_wait", start=5.0, duration=0.25, trace_id="t", n=1)
        (record,) = tracer.spans()
        assert record.name == "queue_wait"
        assert record.end == pytest.approx(5.25)
        assert record.trace_id == "t"
        assert record.attributes == {"n": 1}
        tracer.clear()
        assert tracer.spans() == []

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]

    def test_sink_streams_each_finished_span(self):
        seen = []
        tracer = Tracer(enabled=True, sink=seen.append)
        with tracer.span("a"):
            pass
        tracer.set_sink(None)
        with tracer.span("b"):
            pass
        assert [span.name for span in seen] == ["a"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def finished_span(tracer, name, trace_id=None, **attributes):
    with tracer.span(name, trace_id=trace_id, **attributes) as span:
        pass
    return span


class TestExporters:
    def test_span_to_dict_drops_empty_optionals(self):
        tracer = Tracer(enabled=True)
        bare = span_to_dict(finished_span(tracer, "bare"))
        assert "parent_id" not in bare
        assert "trace" not in bare
        assert "attributes" not in bare
        rich = span_to_dict(
            finished_span(
                tracer, "rich", trace_id="t", obj=object(), seq=(1, 2)
            )
        )
        assert rich["trace"] == "t"
        assert rich["attributes"]["seq"] == ["1", "2"]
        json.dumps(rich)  # non-JSON attribute values were stringified

    def test_write_span_log_and_sink_agree(self, tmp_path):
        tracer = Tracer(enabled=True)
        sink_path = tmp_path / "stream.jsonl"
        sink = JsonLinesSpanSink(sink_path)
        tracer.set_sink(sink)
        for index in range(3):
            finished_span(tracer, f"s{index}", trace_id=f"t{index}")
        sink.close()
        batch_path = tmp_path / "batch.jsonl"
        assert write_span_log(batch_path, tracer.spans()) == 3
        streamed = sink_path.read_text(encoding="utf-8")
        assert streamed == batch_path.read_text(encoding="utf-8")
        assert [json.loads(line)["trace"] for line in streamed.splitlines()] == [
            "t0",
            "t1",
            "t2",
        ]

    def test_chrome_trace_events_track_threads_and_relative_time(self):
        tracer = Tracer(enabled=True)
        spans = [
            finished_span(tracer, "one", trace_id="t-1", size=4),
            finished_span(tracer, "two"),
        ]
        events = chrome_trace_events(spans)
        metadata = [event for event in events if event["ph"] == "M"]
        complete = [event for event in events if event["ph"] == "X"]
        assert metadata[0]["args"]["name"] == "repro service"
        # Both spans came from this thread: one thread_name record.
        assert len(metadata) == 2
        assert len(complete) == 2
        assert complete[0]["tid"] == complete[1]["tid"]
        assert min(event["ts"] for event in complete) == 0.0
        assert complete[0]["args"] == {"size": 4, "trace": "t-1"}
        assert chrome_trace_events([]) == []

    def test_simulation_trace_events_group_by_processor(self):
        entries = [
            SimpleNamespace(
                processor="p0", application="A", actor="a0", start=0, end=5
            ),
            SimpleNamespace(
                processor="p1", application="B", actor="b0", start=2, end=3
            ),
        ]
        events = simulation_trace_events(entries)
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {"A.a0", "B.b0"}
        assert complete[0]["tid"] != complete[1]["tid"]
        assert complete[0]["dur"] == pytest.approx(5e6)

    def test_engine_stats_events_lay_phases_end_to_end(self):
        stats = EngineStats(
            flavour="numpy",
            events_dispatched=10,
            stale_events=0,
            preemptions=0,
            phase_seconds={"setup": 0.5, "step": 1.5},
        )
        events = engine_stats_events({"numpy": stats})
        complete = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in complete] == ["setup", "step"]
        assert complete[1]["ts"] == pytest.approx(complete[0]["dur"])

    def test_write_chrome_trace_assembles_all_tracks(self, tmp_path):
        tracer = Tracer(enabled=True)
        finished_span(tracer, "solve")
        path = tmp_path / "trace.json"
        document = write_chrome_trace(
            path,
            spans=tracer.spans(),
            simulation_trace=[
                SimpleNamespace(
                    processor="p0", application="A", actor="a", start=0, end=1
                )
            ],
            engine_stats={
                "python": EngineStats(
                    flavour="python",
                    events_dispatched=1,
                    stale_events=0,
                    preemptions=0,
                    phase_seconds={"step": 0.1},
                )
            },
        )
        assert json.loads(path.read_text(encoding="utf-8")) == document
        pids = {event["pid"] for event in document["traceEvents"]}
        assert len(pids) == 3  # service + DES + engine tracks

    def test_validator_rejects_malformed_expositions(self):
        with pytest.raises(TelemetryError, match="TYPE declaration"):
            validate_exposition("orphan_total 1\n")
        with pytest.raises(TelemetryError, match="malformed sample"):
            validate_exposition(
                "# HELP x y\n# TYPE x counter\nx one\n"
            )
        with pytest.raises(TelemetryError, match="malformed TYPE"):
            validate_exposition("# TYPE x summary\n")
        with pytest.raises(TelemetryError, match="missing"):
            validate_exposition(
                "# HELP h y\n# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 1\nh_sum 1\n'
            )
        with pytest.raises(TelemetryError, match="unknown comment"):
            validate_exposition("# EOF\n")

    def test_validator_accepts_exponent_floats_and_infinities(self):
        assert (
            validate_exposition(
                "# HELP x y\n# TYPE x gauge\n"
                'x{kind="a"} 1e-06\nx{kind="b"} +Inf\nx{kind="c"} -2.5\n'
            )
            == 3
        )

    def test_scrape_endpoint_serves_and_404s(self):
        async def scenario():
            server, (host, port) = await start_metrics_endpoint(
                lambda: "# HELP x y\n# TYPE x counter\nx 1\n"
            )
            try:
                ok = await self._get(host, port, "/metrics")
                missing = await self._get(host, port, "/else")
            finally:
                server.close()
                await server.wait_closed()
            return ok, missing

        ok, missing = asyncio.run(scenario())
        assert "200 OK" in ok
        assert ok.endswith("x 1\n")
        assert "404" in missing

    @staticmethod
    async def _get(host, port, path):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        body = await reader.read()
        writer.close()
        await writer.wait_closed()
        return body.decode("utf-8")


# ----------------------------------------------------------------------
# Engine profile plumbing (conformance --profile)
# ----------------------------------------------------------------------
class TestEngineProfile:
    def test_engine_stats_merge_refuses_mixed_flavours(self):
        ours = EngineStats(
            flavour="python",
            events_dispatched=2,
            stale_events=1,
            preemptions=0,
            phase_seconds={"step": 0.5},
        )
        same = EngineStats(
            flavour="python",
            events_dispatched=3,
            stale_events=0,
            preemptions=2,
            phase_seconds={"step": 0.25, "setup": 0.1},
        )
        ours.merge(same)
        assert ours.events_dispatched == 5
        assert ours.preemptions == 2
        assert ours.phase_seconds["step"] == pytest.approx(0.75)
        alien = EngineStats(
            flavour="numpy",
            events_dispatched=1,
            stale_events=0,
            preemptions=0,
        )
        with pytest.raises(AnalysisError, match="cannot merge"):
            ours.merge(alien)

    def test_profile_delta_scopes_registry_growth(self):
        before = {
            "python": EngineStats(
                flavour="python",
                events_dispatched=10,
                stale_events=1,
                preemptions=0,
                phase_seconds={"step": 1.0},
            )
        }
        after = {
            "python": EngineStats(
                flavour="python",
                events_dispatched=15,
                stale_events=1,
                preemptions=2,
                phase_seconds={"step": 1.5, "setup": 0.0},
            ),
            "numpy": EngineStats(
                flavour="numpy",
                events_dispatched=0,
                stale_events=0,
                preemptions=0,
            ),
        }
        delta = _engine_profile_delta(before, after)
        assert set(delta) == {"python"}  # idle flavours are dropped
        assert delta["python"].events_dispatched == 5
        assert delta["python"].preemptions == 2
        assert delta["python"].phase_seconds == {"step": pytest.approx(0.5)}

    def test_snapshot_reads_back_recorded_runs(self):
        flavour = "test_profile_flavour"
        before = _engine_profile_snapshot()
        record_engine_stats(
            EngineStats(
                flavour=flavour,
                events_dispatched=7,
                stale_events=2,
                preemptions=1,
                phase_seconds={"step": 0.125, "collect": 0.25},
            )
        )
        delta = _engine_profile_delta(before, _engine_profile_snapshot())
        assert delta[flavour].events_dispatched == 7
        assert delta[flavour].stale_events == 2
        assert delta[flavour].preemptions == 1
        assert delta[flavour].phase_seconds["step"] == pytest.approx(0.125)


# ----------------------------------------------------------------------
# End to end: trace propagation, metrics verb, stats parity, scrape
# ----------------------------------------------------------------------
def serve(coroutine_factory, **server_kwargs):
    """Run one async scenario against a fresh TCP server."""

    async def scenario():
        server = EstimationServer(
            registry=MetricsRegistry(enabled=True),
            tracer=Tracer(enabled=True),
            **server_kwargs,
        )
        host, port = await server.start()
        try:
            return await coroutine_factory(server, host, port)
        finally:
            await server.aclose()

    return asyncio.run(scenario())


class TestServiceTelemetry:
    def test_trace_id_is_echoed_and_stamped_on_spans(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                traced = await client.estimate(
                    [names()[0]], gallery=GALLERY, trace="req-42"
                )
                plain = await client.estimate([names()[1]], gallery=GALLERY)
            finally:
                await client.aclose()
            return traced, plain, server.tracer.spans()

        traced, plain, spans = serve(scenario)
        assert traced["trace"] == "req-42"
        assert "trace" not in plain
        stamped = {
            span.name for span in spans if span.trace_id == "req-42"
        }
        assert "service.request" in stamped
        assert "service.queue_wait" in stamped
        assert "service.solve" in stamped

    def test_pipelined_traces_never_cross_contaminate(self):
        count = 8

        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(3)]
            try:
                results = await asyncio.gather(
                    *[
                        clients[index % len(clients)].estimate(
                            [names()[index % 4]],
                            gallery=GALLERY,
                            trace=f"client-{index}",
                        )
                        for index in range(count)
                    ]
                )
            finally:
                for client in clients:
                    await client.aclose()
            return results, server.snapshot(), server.tracer.spans()

        results, stats, spans = serve(
            scenario, batch_window=0.05, cache=ResultCache(0)
        )
        # Every answer carries exactly the id its request sent, even
        # though the questions were batched, grouped and deduplicated.
        for index, result in enumerate(results):
            assert result["trace"] == f"client-{index}"
            assert result["use_case"] == [names()[index % 4]]
        assert stats["batches"] < count
        # A multi-trace solve span lists every contributing trace id
        # instead of picking one arbitrarily.
        solve_ids = [
            set(span.attributes.get("trace_ids", ()))
            for span in spans
            if span.name == "service.solve"
        ]
        flattened = set().union(*solve_ids)
        assert flattened == {f"client-{index}" for index in range(count)}

    def test_metrics_verb_and_stats_stay_one_registry(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                for index in range(3):
                    await client.estimate([names()[index]], gallery=GALLERY)
                metrics = await client.metrics()
                # stats goes last: it is the final counted request, so its
                # view matches the registry read after shutdown exactly.
                stats = await client.stats()
            finally:
                await client.aclose()
            return stats, metrics, server

        stats, metrics, server = serve(scenario)
        validate_exposition(metrics["exposition"])
        snapshot = metrics["snapshot"]
        assert "repro_service_requests_total" in metrics["exposition"]
        assert "repro_service_batch_size" in snapshot
        # The stats verb is a view over the same counters: every scalar
        # it reports equals the registry's value for the backing metric.
        registry = server.registry
        for field, metric in [
            ("requests", "repro_service_requests_total"),
            ("estimate_requests", "repro_service_estimate_requests_total"),
            ("solved_queries", "repro_service_solved_queries_total"),
            ("batches", "repro_service_batches_total"),
            ("batched_queries", "repro_service_batched_queries_total"),
            ("shed", "repro_service_shed_total"),
            ("evicted", "repro_service_evicted_total"),
            ("max_batch", "repro_service_max_batch"),
        ]:
            assert stats[field] == int(registry.value(metric) or 0)
        assert stats["estimate_requests"] == 3
        # The snapshot froze at metrics time: 3 estimates + the metrics
        # request itself; the later stats request is not in it.
        (sample,) = snapshot["repro_service_requests_total"]["samples"]
        assert sample["value"] == 4.0
        assert stats["requests"] == 5

    def test_scrape_endpoint_serves_the_merged_exposition(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            endpoint, (mhost, mport) = await start_metrics_endpoint(
                server.render_metrics
            )
            try:
                await client.estimate([names()[0]], gallery=GALLERY)
                scraped = await TestExporters._get(mhost, mport, "/metrics")
            finally:
                endpoint.close()
                await endpoint.wait_closed()
                await client.aclose()
            return scraped

        scraped = serve(scenario)
        head, _, body = scraped.partition("\r\n\r\n")
        assert "200 OK" in head
        assert validate_exposition(body) > 0
        assert "repro_service_requests_total 1" in body  # the one estimate


# ----------------------------------------------------------------------
# CLI stdio: trace ids survive the subprocess framing too
# ----------------------------------------------------------------------
class TestStdioTrace:
    def test_stdio_session_propagates_trace_ids(self):
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--stdio",
                "--batch-window",
                "1",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        requests = [
            {
                "id": 1,
                "op": "estimate",
                "gallery": GALLERY,
                "use_case": [names()[0]],
                "trace": "stdio-a",
            },
            {
                "id": 2,
                "op": "estimate",
                "gallery": GALLERY,
                "use_case": [names()[1]],
                "trace": "stdio-b",
            },
            {"id": 3, "op": "metrics"},
            {"id": 4, "op": "shutdown"},
        ]
        stdin = "\n".join(json.dumps(r) for r in requests) + "\n"
        out, err = process.communicate(stdin, timeout=120)
        assert process.returncode == 0, err
        by_id = {
            response["id"]: response
            for response in map(json.loads, out.splitlines())
        }
        assert by_id[1]["result"]["trace"] == "stdio-a"
        assert by_id[2]["result"]["trace"] == "stdio-b"
        exposition = by_id[3]["result"]["exposition"]
        assert validate_exposition(exposition) > 0
        assert "repro_service_estimate_requests_total 2" in exposition
        assert by_id[4]["result"] == {"stopping": True}
