"""Workload generator: determinism, arrival processes, serialization."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ResourceManagerError
from repro.generation.workload import (
    ARRIVAL_PROCESSES,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.runtime.events import (
    EventKind,
    ScenarioEvent,
    Trace,
    trace_from_json,
    trace_to_json,
)

APPS = ("A", "B", "C")
LEVELS = ("high", "medium", "low")


def generator(**config_kwargs) -> WorkloadGenerator:
    return WorkloadGenerator(
        APPS,
        quality_levels=LEVELS,
        config=WorkloadConfig(**config_kwargs),
    )


class TestDeterminism:
    def test_same_seed_same_config_byte_identical(self):
        first = generator().generate(seed=11, events=500)
        second = generator().generate(seed=11, events=500)
        assert trace_to_json(first) == trace_to_json(second)

    def test_different_seeds_differ(self):
        first = generator().generate(seed=11, events=200)
        second = generator().generate(seed=12, events=200)
        assert trace_to_json(first) != trace_to_json(second)

    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_every_arrival_process_is_deterministic(self, arrival):
        first = generator(arrival=arrival).generate(seed=3, events=300)
        second = generator(arrival=arrival).generate(seed=3, events=300)
        assert trace_to_json(first) == trace_to_json(second)

    def test_different_config_different_trace(self):
        base = generator().generate(seed=5, events=200)
        bursty = generator(arrival="bursty").generate(seed=5, events=200)
        assert trace_to_json(base) != trace_to_json(bursty)


class TestStreamInvariants:
    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_times_are_nondecreasing(self, arrival):
        trace = generator(arrival=arrival).generate(seed=9, events=400)
        times = [event.time for event in trace]
        assert times == sorted(times)
        assert len(trace) == 400

    def test_stops_follow_starts(self):
        trace = generator().generate(seed=9, events=500)
        running = set()
        for event in trace:
            if event.kind is EventKind.START:
                assert event.application not in running
                running.add(event.application)
            elif event.kind is EventKind.STOP:
                assert event.application in running
                running.remove(event.application)
            else:  # adjust targets a running application
                assert event.application in running

    def test_adjust_carries_known_level_and_changes_it(self):
        trace = generator(adjust_fraction=0.5).generate(
            seed=2, events=500
        )
        current: dict = {}
        adjusts = 0
        for event in trace:
            if event.kind is EventKind.START:
                current[event.application] = event.quality
            elif event.kind is EventKind.ADJUST:
                adjusts += 1
                assert event.quality in LEVELS
                assert event.quality != current[event.application]
                current[event.application] = event.quality
            else:
                current.pop(event.application, None)
        assert adjusts > 0

    def test_start_quality_best_vs_random(self):
        best = generator().generate(seed=4, events=300)
        assert all(
            e.quality == "high"
            for e in best
            if e.kind is EventKind.START
        )
        randomized = generator(start_quality="random").generate(
            seed=4, events=300
        )
        start_levels = {
            e.quality
            for e in randomized
            if e.kind is EventKind.START
        }
        assert len(start_levels) > 1

    def test_applications_are_known(self):
        trace = generator().generate(seed=1, events=200)
        assert set(trace.applications) <= set(APPS)

    def test_bursty_clusters_interarrivals(self):
        # Bursty traces must show a much wider inter-arrival spread
        # than Poisson at the same mean setting.
        def spread(arrival):
            trace = generator(arrival=arrival).generate(
                seed=6, events=400
            )
            starts = [
                e.time for e in trace if e.kind is EventKind.START
            ]
            gaps = sorted(
                b - a for a, b in zip(starts, starts[1:])
            )
            lo = gaps[len(gaps) // 10]
            hi = gaps[(9 * len(gaps)) // 10]
            return hi / max(lo, 1e-9)

        assert spread("bursty") > 4 * spread("poisson")


class TestValidation:
    def test_rejects_unknown_arrival(self):
        with pytest.raises(ResourceManagerError):
            WorkloadConfig(arrival="fractal")

    def test_rejects_bad_rates(self):
        with pytest.raises(ResourceManagerError):
            WorkloadConfig(mean_interarrival=0)
        with pytest.raises(ResourceManagerError):
            WorkloadConfig(adjust_fraction=1.0)

    def test_rejects_empty_gallery_and_duplicates(self):
        with pytest.raises(ResourceManagerError):
            WorkloadGenerator([])
        with pytest.raises(ResourceManagerError):
            WorkloadGenerator(["A", "A"])

    def test_rejects_zero_events(self):
        with pytest.raises(ResourceManagerError):
            generator().generate(seed=1, events=0)


class TestTraceSerialization:
    def test_round_trip_preserves_everything(self):
        trace = generator(arrival="diurnal").generate(seed=8, events=250)
        clone = trace_from_json(trace_to_json(trace))
        assert clone == trace
        assert trace_to_json(clone) == trace_to_json(trace)

    def test_json_shape(self):
        trace = generator().generate(seed=8, events=50)
        data = json.loads(trace_to_json(trace))
        assert data["seed"] == 8
        assert data["metadata"]["applications"] == list(APPS)
        assert len(data["events"]) == 50
        assert data["events"][0]["kind"] in ("start", "stop", "adjust")

    def test_unordered_trace_rejected(self):
        with pytest.raises(ResourceManagerError):
            Trace(
                events=(
                    ScenarioEvent(10.0, EventKind.START, "A"),
                    ScenarioEvent(5.0, EventKind.STOP, "A"),
                )
            )

    def test_adjust_requires_quality(self):
        with pytest.raises(ResourceManagerError):
            ScenarioEvent(1.0, EventKind.ADJUST, "A")
