"""Resource manager: quality ladders, QoS policies, cold-path parity.

The headline acceptance test replays a seeded 10 000-event trace
through the :class:`~repro.runtime.manager.ResourceManager` end-to-end
and re-estimates every admit/reject decision's resident set from
scratch (fresh profiles, fresh composition, cold period analysis),
asserting <= 1e-9 relative parity on the predicted periods.
"""

from __future__ import annotations

import pytest

from repro.admission.controller import estimate_resident_periods
from repro.exceptions import ResourceManagerError
from repro.generation.gallery import paper_two_apps
from repro.generation.random_sdf import GeneratorConfig
from repro.generation.workload import WorkloadConfig, WorkloadGenerator
from repro.experiments.setup import paper_benchmark_suite
from repro.runtime.events import EventKind, ScenarioEvent, Trace
from repro.runtime.log import (
    DecisionRecord,
    RuntimeLog,
    log_from_json,
    log_to_json,
)
from repro.runtime.manager import (
    AppSpec,
    ResourceManager,
    gallery_from_graphs,
    make_qos_policy,
)
from repro.runtime.quality import QualityLadder, QualityLevel
from repro.runtime.validation import validate_log
from repro.sdf.analysis import period as analytical_period

TWO_LEVELS = (QualityLevel("high", 1.0), QualityLevel("low", 0.5))


def tiny_suite(applications=4):
    """Paper-style suite with 3-4 actor graphs (fast cold analyses)."""
    return paper_benchmark_suite(
        seed=77,
        application_count=applications,
        config=GeneratorConfig(actor_count_range=(3, 4)),
    )


class TestQualityLadder:
    def test_variant_scales_times_keeps_structure(self):
        a, _ = paper_two_apps()
        ladder = QualityLadder(a, levels=TWO_LEVELS)
        low = ladder.graph_at("low")
        assert low.actor_names == a.actor_names
        for actor in a.actors:
            assert low.execution_time(actor.name) == pytest.approx(
                actor.execution_time * 0.5
            )
        assert ladder.graph_at("high") is a
        # Halving every time halves the period.
        assert analytical_period(low) == pytest.approx(
            analytical_period(a) / 2
        )

    def test_navigation(self):
        a, _ = paper_two_apps()
        ladder = QualityLadder(a, levels=TWO_LEVELS)
        assert ladder.best == "high"
        assert ladder.worst == "low"
        assert ladder.below("high") == "low"
        assert ladder.below("low") is None
        with pytest.raises(ResourceManagerError):
            ladder.level("ultra")

    def test_rejects_non_decreasing_scales(self):
        a, _ = paper_two_apps()
        with pytest.raises(ResourceManagerError):
            QualityLadder(
                a,
                levels=(
                    QualityLevel("high", 0.5),
                    QualityLevel("low", 0.9),
                ),
            )


class TestBasicLifecycle:
    def test_start_stop_adjust(self):
        suite = tiny_suite(3)
        specs = gallery_from_graphs(list(suite.graphs), slack=5.0)
        manager = ResourceManager(specs, mapping=suite.mapping)

        record = manager.handle_event(
            ScenarioEvent(0.0, EventKind.START, "A")
        )
        assert record.outcome == "admitted"
        assert manager.residents == (("A", "high"),)
        assert record.predicted_periods["A"] > 0

        record = manager.handle_event(
            ScenarioEvent(1.0, EventKind.ADJUST, "A", quality="low")
        )
        assert record.outcome == "admitted"
        assert manager.quality_of("A") == "low"

        record = manager.handle_event(
            ScenarioEvent(2.0, EventKind.STOP, "A")
        )
        assert record.outcome == "stopped"
        assert manager.residents == ()

    def test_duplicate_start_and_foreign_stop_are_ignored(self):
        suite = tiny_suite(2)
        specs = gallery_from_graphs(list(suite.graphs), slack=5.0)
        manager = ResourceManager(specs, mapping=suite.mapping)
        manager.handle_event(ScenarioEvent(0.0, EventKind.START, "A"))
        again = manager.handle_event(
            ScenarioEvent(1.0, EventKind.START, "A")
        )
        assert again.outcome == "ignored"
        foreign = manager.handle_event(
            ScenarioEvent(2.0, EventKind.STOP, "B")
        )
        assert foreign.outcome == "ignored"

    def test_unknown_application_raises(self):
        suite = tiny_suite(2)
        specs = gallery_from_graphs(list(suite.graphs), slack=5.0)
        manager = ResourceManager(specs, mapping=suite.mapping)
        with pytest.raises(ResourceManagerError):
            manager.handle_event(
                ScenarioEvent(0.0, EventKind.START, "Z")
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ResourceManagerError):
            make_qos_policy("appease")


class TestEvictionPolicy:
    def build(self, priorities, slack=1.02):
        suite = tiny_suite(3)
        specs = gallery_from_graphs(
            list(suite.graphs), slack=slack, priorities=priorities
        )
        return (
            ResourceManager(
                specs, mapping=suite.mapping, policy="evict"
            ),
            specs,
        )

    def test_low_priority_resident_is_evicted(self):
        # Requirements so tight that two residents never coexist.
        manager, _ = self.build({"A": 1, "B": 2, "C": 3})
        assert (
            manager.handle_event(
                ScenarioEvent(0.0, EventKind.START, "A")
            ).outcome
            == "admitted"
        )
        record = manager.handle_event(
            ScenarioEvent(1.0, EventKind.START, "B")
        )
        assert record.outcome == "admitted"
        assert record.evicted == ("A",)
        assert manager.residents == (("B", "high"),)

    def test_higher_priority_resident_survives(self):
        manager, _ = self.build({"A": 9, "B": 2, "C": 3})
        manager.handle_event(ScenarioEvent(0.0, EventKind.START, "A"))
        record = manager.handle_event(
            ScenarioEvent(1.0, EventKind.START, "B")
        )
        assert record.outcome == "rejected"
        assert record.evicted == ()
        assert manager.residents == (("A", "high"),)


class TestDowngradePolicy:
    def specs_with_requirements(self, req_a, req_b, levels=TWO_LEVELS):
        a, b = paper_two_apps()
        return [
            AppSpec(QualityLadder(a, levels), required_period=req_a),
            AppSpec(QualityLadder(b, levels), required_period=req_b),
        ]

    def enumerate_feasible(self, manager, floor_assignment):
        """All level assignments at/below the floors that satisfy
        every requirement — the reference the policy must match."""
        import itertools

        apps = list(floor_assignment)
        ladders = {app: manager.spec_of(app).ladder for app in apps}
        options = [
            ladders[app].level_names[
                ladders[app].index_of(floor_assignment[app]):
            ]
            for app in apps
        ]
        feasible = []
        for combo in itertools.product(*options):
            assignment = dict(zip(apps, combo))
            if manager.assignment_is_feasible(assignment):
                feasible.append(assignment)
        return feasible

    def test_downgrade_admits_whenever_feasible(self):
        # Both at 'high' violate A's requirement (the paper's worked
        # example inflates both periods to ~359), but degraded
        # assignments exist.
        specs = self.specs_with_requirements(330.0, 1000.0)
        manager = ResourceManager(specs, policy="downgrade")
        manager.handle_event(ScenarioEvent(0.0, EventKind.START, "A"))

        feasible = self.enumerate_feasible(
            manager, {"A": "high", "B": "high"}
        )
        assert feasible, "test setup: some degraded assignment must fit"
        assert not manager.assignment_is_feasible(
            {"A": "high", "B": "high"}
        )

        record = manager.handle_event(
            ScenarioEvent(1.0, EventKind.START, "B")
        )
        assert record.outcome == "admitted"
        final = dict(manager.residents)
        assert final in feasible
        # Every constrained app stays within its requirement.
        periods = manager.controller.estimated_periods()
        for app in final:
            requirement = manager.spec_of(app).required_period
            assert periods[app] <= requirement * (1 + 1e-9)

    def test_rejects_when_no_assignment_is_feasible(self):
        # Single-level ladders: nothing to degrade, nothing fits.
        one_level = (QualityLevel("high", 1.0),)
        specs = self.specs_with_requirements(
            301.0, 301.0, levels=one_level
        )
        manager = ResourceManager(specs, policy="downgrade")
        manager.handle_event(ScenarioEvent(0.0, EventKind.START, "A"))
        assert not self.enumerate_feasible(
            manager, {"A": "high", "B": "high"}
        )
        record = manager.handle_event(
            ScenarioEvent(1.0, EventKind.START, "B")
        )
        assert record.outcome == "rejected"
        assert manager.residents == (("A", "high"),)

    def test_greedy_matches_exhaustive_on_chain_case(self):
        specs = self.specs_with_requirements(330.0, 1000.0)
        for policy in ("downgrade", "downgrade-greedy"):
            manager = ResourceManager(specs, policy=policy)
            manager.handle_event(
                ScenarioEvent(0.0, EventKind.START, "A")
            )
            record = manager.handle_event(
                ScenarioEvent(1.0, EventKind.START, "B")
            )
            assert record.outcome == "admitted", policy


@pytest.fixture(scope="module")
def replayed_10k():
    """The acceptance scenario: 10k events through a 4-app gallery."""
    suite = tiny_suite(4)
    specs = gallery_from_graphs(list(suite.graphs), slack=1.3)
    generator = WorkloadGenerator(
        [spec.name for spec in specs],
        quality_levels={
            spec.name: spec.ladder.level_names for spec in specs
        },
        config=WorkloadConfig(
            mean_interarrival=40.0, mean_holding=300.0
        ),
    )
    trace = generator.generate(seed=20_070_611, events=10_000)
    manager = ResourceManager(
        specs, mapping=suite.mapping, policy="reject"
    )
    log = manager.replay(trace)
    return suite, specs, trace, manager, log


class TestTenThousandEventParity:
    def test_replay_covers_the_whole_trace(self, replayed_10k):
        _, _, trace, _, log = replayed_10k
        assert len(log) == len(trace) == 10_000
        counts = log.counts_by_outcome()
        assert counts["admitted"] > 1000
        assert counts["rejected"] > 100
        assert counts["stopped"] > 500

    def test_every_decision_matches_cold_reestimate(self, replayed_10k):
        suite, specs, trace, manager, log = replayed_10k
        by_name = {spec.name: spec for spec in specs}
        checked = 0
        for record in log.records:
            if record.outcome not in ("admitted", "rejected"):
                continue
            graphs = {
                app: by_name[app].ladder.graph_at(quality)
                for app, quality in record.residents
            }
            if record.outcome == "rejected":
                event = record.event
                quality = (
                    event.quality
                    if event.quality is not None
                    else by_name[event.application].ladder.best
                )
                graphs[event.application] = by_name[
                    event.application
                ].ladder.graph_at(quality)
            # Cold path: fresh profiles, fresh composition, stateless
            # period analysis — no engines, no warm starts.
            cold = estimate_resident_periods(
                suite.mapping, graphs, engines=None
            )
            assert set(cold) == set(record.predicted_periods)
            for app, period in cold.items():
                recorded = record.predicted_periods[app]
                assert recorded == pytest.approx(period, rel=1e-9), (
                    record.index,
                    app,
                )
            checked += 1
        assert checked > 2000

    def test_rejections_were_justified(self, replayed_10k):
        *_, log = replayed_10k
        for record in log.records:
            if record.outcome != "rejected":
                continue
            assert any(
                record.predicted_periods[app]
                > requirement * (1 - 1e-9)
                for app, requirement in record.required_periods.items()
            )

    def test_admitted_states_meet_requirements(self, replayed_10k):
        *_, log = replayed_10k
        for record in log.records:
            if record.outcome != "admitted":
                continue
            for app, requirement in record.required_periods.items():
                assert (
                    record.predicted_periods[app]
                    <= requirement * (1 + 1e-9)
                )

    def test_log_round_trips_through_json(self, replayed_10k):
        *_, log = replayed_10k
        clone = log_from_json(log_to_json(log))
        assert len(clone) == len(log)
        assert clone.records[0] == log.records[0]
        assert clone.records[-1] == log.records[-1]
        assert clone.counts_by_outcome() == log.counts_by_outcome()
        assert log_to_json(clone) == log_to_json(log)


class TestSimulationValidation:
    def test_predictions_track_discrete_event_simulation(self):
        suite = paper_benchmark_suite(application_count=3)
        specs = gallery_from_graphs(list(suite.graphs), slack=2.0)
        generator = WorkloadGenerator(
            [spec.name for spec in specs],
            config=WorkloadConfig(mean_interarrival=60.0),
        )
        trace = generator.generate(seed=5, events=150)
        manager = ResourceManager(specs, mapping=suite.mapping)
        log = manager.replay(trace)
        points = validate_log(
            specs, suite.mapping, log, max_points=2,
            target_iterations=40,
        )
        assert points, "replay must produce multi-resident snapshots"
        for point in points:
            for app, ratio in point.ratios.items():
                # Figure-5 regime: the probabilistic estimate stays
                # within a small factor of the simulated mean.
                assert 0.5 < ratio < 2.0, (point.record_index, app)


class TestRuntimeLogStatistics:
    def test_counts_and_ratio(self):
        suite = tiny_suite(2)
        specs = gallery_from_graphs(list(suite.graphs), slack=5.0)
        manager = ResourceManager(specs, mapping=suite.mapping)
        trace = Trace(
            events=(
                ScenarioEvent(0.0, EventKind.START, "A"),
                ScenarioEvent(1.0, EventKind.START, "B"),
                ScenarioEvent(2.0, EventKind.STOP, "A"),
                ScenarioEvent(3.0, EventKind.STOP, "Q" * 0 + "B"),
            )
        )
        log = manager.replay(trace)
        assert log.admission_ratio == 1.0
        assert log.request_count == 2
        assert log.counts_by_outcome()["stopped"] == 2
        assert log.elapsed_seconds > 0
        assert log.decisions_per_second > 0
        assert set(log.mean_utilization()) == set(
            suite.platform.processor_names
        )

    def test_bad_outcome_rejected(self):
        with pytest.raises(ResourceManagerError):
            DecisionRecord(
                index=0,
                event=ScenarioEvent(0.0, EventKind.START, "A"),
                outcome="vanished",
                quality=None,
                reason="",
                predicted_periods={},
                required_periods={},
                residents=(),
            )
