"""DOT export and processor-load query tests."""

from __future__ import annotations

import pytest

from repro.platform.load import (
    bottleneck_processor,
    processor_loads,
    saturated_processors,
)
from repro.platform.mapping import index_mapping, modulo_mapping, spread_mapping
from repro.platform.platform import Platform
from repro.platform.usecase import UseCase
from repro.sdf.hsdf import to_hsdf
from repro.sdf.visualization import hsdf_to_dot, mapping_to_dot, to_dot


class TestDotExport:
    def test_sdf_dot_structure(self, app_a):
        dot = to_dot(app_a)
        assert dot.startswith('digraph "A"')
        assert '"a0" -> "a1"' in dot
        assert "2/1" in dot  # production/consumption annotation
        assert dot.rstrip().endswith("}")

    def test_initial_tokens_annotated(self, app_a):
        dot = to_dot(app_a)
        assert "&bull;" in dot  # the a2->a0 token

    def test_execution_times_toggle(self, app_a):
        with_times = to_dot(app_a, include_execution_times=True)
        without = to_dot(app_a, include_execution_times=False)
        assert "100" in with_times
        assert "\\n100" not in without

    def test_hsdf_dot(self, app_a):
        dot = hsdf_to_dot(to_hsdf(app_a))
        assert "a1_0" in dot and "a1_1" in dot
        assert "style=dashed" in dot  # sequencing edges dashed

    def test_mapping_dot_clusters(self, two_apps):
        mapping = index_mapping(list(two_apps))
        dot = mapping_to_dot(list(two_apps), mapping)
        assert "cluster_0" in dot
        assert '"A.a0"' in dot
        assert '"B.b0"' in dot

    def test_mapping_dot_use_case_filter(self, two_apps):
        mapping = index_mapping(list(two_apps))
        dot = mapping_to_dot(list(two_apps), mapping, use_case=["A"])
        assert '"A.a0"' in dot
        assert '"B.b0"' not in dot


class TestProcessorLoads:
    def test_paper_example_loads(self, two_apps):
        mapping = index_mapping(list(two_apps))
        loads = processor_loads(list(two_apps), mapping)
        # Each node hosts one actor of each app, each with P = 1/3.
        for processor in ("proc0", "proc1", "proc2"):
            assert loads[processor] == pytest.approx(2 / 3)

    def test_use_case_restriction(self, two_apps):
        mapping = index_mapping(list(two_apps))
        loads = processor_loads(
            list(two_apps), mapping, UseCase.of("A")
        )
        for processor in ("proc0", "proc1", "proc2"):
            assert loads[processor] == pytest.approx(1 / 3)

    def test_bottleneck(self, two_apps):
        mapping = index_mapping(list(two_apps))
        processor, load = bottleneck_processor(list(two_apps), mapping)
        assert processor in ("proc0", "proc1", "proc2")
        assert load == pytest.approx(2 / 3)

    def test_saturation_thresholds(self, two_apps):
        mapping = index_mapping(list(two_apps))
        assert saturated_processors(
            list(two_apps), mapping, threshold=0.5
        ) == ["proc0", "proc1", "proc2"]
        assert saturated_processors(
            list(two_apps), mapping, threshold=0.9
        ) == []

    def test_loads_match_simulated_utilization_when_unsaturated(
        self, two_apps
    ):
        """Analytical load = simulated busy fraction for feasible nodes.

        The paper pair achieves its isolation periods when run together,
        so every node's busy fraction equals the sum of its actors'
        blocking probabilities.
        """
        from repro.simulation.engine import SimulationConfig, simulate

        mapping = index_mapping(list(two_apps))
        loads = processor_loads(list(two_apps), mapping)
        result = simulate(
            list(two_apps),
            mapping=mapping,
            config=SimulationConfig(target_iterations=200),
        )
        for processor, load in loads.items():
            measured = result.processor_utilization[processor]
            assert measured == pytest.approx(load, rel=0.05), processor


class TestDensityMappings:
    def test_modulo_mapping_allows_narrow_platforms(self, app_a):
        platform = Platform.homogeneous(2)
        mapping = modulo_mapping([app_a], platform)
        assert mapping.processor_of("A", "a0") == "proc0"
        assert mapping.processor_of("A", "a2") == "proc0"
        assert mapping.processor_of("A", "a1") == "proc1"

    def test_spread_mapping_offsets_applications(self, two_apps):
        platform = Platform.homogeneous(4)
        mapping = spread_mapping(list(two_apps), platform)
        assert mapping.processor_of("A", "a0") == "proc0"
        assert mapping.processor_of("B", "b0") == "proc1"

    def test_narrower_platform_raises_load(self, app_a):
        wide = modulo_mapping([app_a], Platform.homogeneous(3))
        narrow = modulo_mapping([app_a], Platform.homogeneous(1))
        wide_peak = max(processor_loads([app_a], wide).values())
        narrow_peak = max(processor_loads([app_a], narrow).values())
        assert narrow_peak > wide_peak

    def test_empty_graphs_rejected(self):
        from repro.exceptions import MappingError

        with pytest.raises(MappingError):
            modulo_mapping([], Platform.homogeneous(2))
        with pytest.raises(MappingError):
            spread_mapping([], Platform.homogeneous(2))
