"""SDF -> HSDF expansion tests."""

from __future__ import annotations


from repro.sdf.builder import GraphBuilder
from repro.sdf.hsdf import to_hsdf
from repro.sdf.repetition import repetition_vector


class TestExpansionStructure:
    def test_copy_counts_match_repetition_vector(self, app_a):
        hsdf = to_hsdf(app_a)
        q = repetition_vector(app_a)
        for actor, quota in q.items():
            copies = [v for v in hsdf.vertices if v.actor == actor]
            assert len(copies) == quota
            assert {v.copy for v in copies} == set(range(quota))

    def test_vertex_count_is_sum_of_repetitions(self, app_a):
        hsdf = to_hsdf(app_a)
        assert hsdf.vertex_count == sum(repetition_vector(app_a).values())

    def test_execution_times_carried_over(self, app_a):
        hsdf = to_hsdf(app_a)
        for vertex in hsdf.vertices:
            assert (
                vertex.execution_time == app_a.execution_time(vertex.actor)
            )

    def test_delays_are_non_negative(self, app_a, app_b):
        for graph in (app_a, app_b):
            for edge in to_hsdf(graph).edges:
                assert edge.delay >= 0

    def test_no_duplicate_edges(self, app_a):
        hsdf = to_hsdf(app_a)
        seen = set()
        for edge in hsdf.edges:
            key = (edge.source, edge.target)
            assert key not in seen, f"parallel edge {key} not deduplicated"
            seen.add(key)


class TestSequencingCycle:
    def test_single_copy_actor_gets_self_loop(self, app_a):
        hsdf = to_hsdf(app_a)
        self_loops = [
            e
            for e in hsdf.edges
            if e.source == e.target and e.source[0] == "a0"
        ]
        assert len(self_loops) == 1
        assert self_loops[0].delay == 1

    def test_multi_copy_actor_gets_ring(self, app_a):
        # a1 has q = 2: copy0 -> copy1 (delay 0), copy1 -> copy0 (delay 1).
        hsdf = to_hsdf(app_a)
        forward = [
            e
            for e in hsdf.edges
            if e.source == ("a1", 0) and e.target == ("a1", 1)
        ]
        backward = [
            e
            for e in hsdf.edges
            if e.source == ("a1", 1) and e.target == ("a1", 0)
        ]
        assert forward and forward[0].delay == 0
        assert backward and backward[0].delay == 1

    def test_auto_concurrency_drops_sequencing_edges(self, app_a):
        hsdf = to_hsdf(app_a, auto_concurrency=True)
        a1_edges = [
            e
            for e in hsdf.edges
            if e.source[0] == "a1" and e.target[0] == "a1"
        ]
        assert a1_edges == []


class TestTokenRouting:
    def test_initial_tokens_become_delay(self, simple_chain):
        hsdf = to_hsdf(simple_chain)
        back = [
            e
            for e in hsdf.edges
            if e.source == ("dst", 0) and e.target == ("src", 0)
        ]
        assert back and back[0].delay == 1
        forward = [
            e
            for e in hsdf.edges
            if e.source == ("src", 0) and e.target == ("dst", 0)
        ]
        assert forward and forward[0].delay == 0

    def test_multirate_producer_feeds_correct_copies(self, app_a):
        # a0 produces 2 tokens consumed one each by a1 copy0 and copy1.
        hsdf = to_hsdf(app_a)
        targets = {
            e.target
            for e in hsdf.edges
            if e.source == ("a0", 0) and e.target[0] == "a1"
        }
        assert targets == {("a1", 0), ("a1", 1)}

    def test_many_initial_tokens_span_iterations(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 1)
            .channel("a", "b", initial_tokens=3)
            .channel("b", "a", initial_tokens=0)
            .build()
        )
        hsdf = to_hsdf(graph)
        ab = [
            e
            for e in hsdf.edges
            if e.source == ("a", 0) and e.target == ("b", 0)
        ]
        # b's first firing consumes an initial token produced three
        # iterations "before time zero".
        assert ab and ab[0].delay == 3
