"""Property-based tests of the admission controller under churn.

Random admit/withdraw sequences must keep the controller's incremental
aggregates consistent with a from-scratch recomposition — the paper's
claim that Eq. 8/9 make entering/leaving applications an incremental
update rather than a re-analysis.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.admission.controller import AdmissionController
from repro.experiments.setup import paper_benchmark_suite

_SUITE = paper_benchmark_suite(application_count=4)
_GRAPHS = {g.name: g for g in _SUITE.graphs}


@given(
    actions=st.lists(
        st.tuples(
            st.sampled_from(sorted(_GRAPHS)),
            st.booleans(),  # True = try to admit, False = try to withdraw
        ),
        min_size=1,
        max_size=24,
    )
)
@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,  # CI runs the same examples every time
    suppress_health_check=[HealthCheck.too_slow],
)
def test_churn_keeps_aggregates_consistent(actions):
    controller = AdmissionController(_SUITE.mapping)
    admitted = set()
    for name, admit in actions:
        if admit and name not in admitted:
            decision = controller.request_admission(_GRAPHS[name])
            assert decision.admitted  # no requirements registered
            admitted.add(name)
        elif not admit and name in admitted:
            controller.withdraw(name)
            admitted.remove(name)

    assert set(controller.admitted_applications) == admitted

    # Aggregates after arbitrary churn stay close to a clean rebuild
    # (the (x) operator drifts only in higher-order terms).
    drifted = {
        name: controller.aggregate_of(name)
        for name in _SUITE.platform.processor_names
    }
    controller.rebuild()
    for name, aggregate in drifted.items():
        rebuilt = controller.aggregate_of(name)
        assert aggregate.probability == pytest.approx(
            rebuilt.probability, abs=1e-6
        )
        # The (x)-inverse drifts in higher-order terms, so churn leaves
        # residue the rebuild does not have: interleaved admit/withdraw
        # sequences reach ~16% relative drift (A+,C+,B+,A-,C- on proc7)
        # and can leave ~0.1 absolute residue against a rebuilt value of
        # exactly 0 when every co-mapped actor was withdrawn.  The
        # relative bound is therefore 0.25 (the original 0.15 was below
        # reproducible drift and flaked), and only the zero-rebuild
        # case gets the absolute residue allowance.
        if abs(rebuilt.waiting_product) > 1e-6:
            assert aggregate.waiting_product == pytest.approx(
                rebuilt.waiting_product, rel=0.25, abs=1e-6
            )
        else:
            assert abs(aggregate.waiting_product) < 0.2

    # And the estimated periods of whoever remains are sane: at or
    # above isolation.
    isolation = _SUITE.isolation_periods()
    for name in admitted:
        assert controller.estimated_period(name) >= (
            isolation[name] - 1e-6
        )


@given(order=st.permutations(sorted(_GRAPHS)))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_admission_order_does_not_change_membership_estimates_much(order):
    """Admitting the same set in any order lands on nearly the same
    estimates (fold-order drift only)."""
    reference = None
    controller = AdmissionController(_SUITE.mapping)
    for name in order:
        controller.request_admission(_GRAPHS[name])
    estimates = {
        name: controller.estimated_period(name) for name in _GRAPHS
    }
    baseline_controller = AdmissionController(_SUITE.mapping)
    for name in sorted(_GRAPHS):
        baseline_controller.request_admission(_GRAPHS[name])
    for name in _GRAPHS:
        assert estimates[name] == pytest.approx(
            baseline_controller.estimated_period(name), rel=0.05
        )
