"""Incremental analysis engine: parity with the cold path + behaviour.

The acceptance bar of the engine layer is numerical parity: for every
waiting model and both analysis methods, an estimator running on cached
engines (shared HSDF expansion, warm-started Howard, response-time memo)
must reproduce the stateless cold path to <= 1e-9 relative over all
use-case sizes of a four-application gallery.
"""

from __future__ import annotations

import pytest

from repro.analysis_engine import AnalysisEngine, build_engines
from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import AnalysisError
from repro.generation.gallery import media_device_suite
from repro.platform.mapping import index_mapping
from repro.platform.usecase import all_use_cases
from repro.sdf.analysis import (
    AnalysisMethod,
    critical_cycle,
    period,
    period_with_response_times,
)

WAITING_MODELS = (
    "worst_case",
    "composability",
    "composability_incremental",
    "fourth_order",
    "second_order",
    "exact",
    "tdma",
)


@pytest.fixture(scope="module")
def gallery():
    """Four media applications + index mapping + every use-case."""
    graphs = media_device_suite()[:4]
    mapping = index_mapping(graphs)
    use_cases = all_use_cases(tuple(g.name for g in graphs))
    return graphs, mapping, use_cases


def _sweep_periods(graphs, mapping, use_cases, model, method, incremental):
    estimator = ProbabilisticEstimator(
        graphs,
        mapping=mapping,
        waiting_model=model,
        analysis_method=method,
        incremental=incremental,
    )
    results = estimator.estimate_many(use_cases)
    return {
        (result.use_case, name): result.periods[name]
        for result in results
        for name in result.periods
    }


class TestColdParity:
    """Engine sweep == cold sweep over all use-case sizes (4-app gallery)."""

    @pytest.mark.parametrize("model", WAITING_MODELS)
    def test_mcr_parity_all_sizes(self, gallery, model):
        graphs, mapping, use_cases = gallery
        cold = _sweep_periods(
            graphs, mapping, use_cases, model, AnalysisMethod.MCR, False
        )
        warm = _sweep_periods(
            graphs, mapping, use_cases, model, AnalysisMethod.MCR, True
        )
        assert cold.keys() == warm.keys()
        assert len({uc for uc, _ in cold}) == 15  # 2^4 - 1 use-cases
        for key, value in cold.items():
            assert warm[key] == pytest.approx(value, rel=1e-9), key

    @pytest.mark.parametrize("model", WAITING_MODELS)
    def test_state_space_parity_all_sizes(self, gallery, model):
        graphs, mapping, use_cases = gallery
        cold = _sweep_periods(
            graphs,
            mapping,
            use_cases,
            model,
            AnalysisMethod.STATE_SPACE,
            False,
        )
        warm = _sweep_periods(
            graphs,
            mapping,
            use_cases,
            model,
            AnalysisMethod.STATE_SPACE,
            True,
        )
        for key, value in cold.items():
            assert warm[key] == pytest.approx(value, rel=1e-9), key

    def test_mcr_lawler_engine_matches_cold(self, gallery):
        graphs, _, _ = gallery
        for graph in graphs:
            engine = AnalysisEngine(graph, mcr_algorithm="lawler")
            assert engine.period() == pytest.approx(
                period(graph, mcr_algorithm="lawler"), rel=1e-9
            )


class TestEngineBehaviour:
    def test_isolation_period_matches_stateless(self, gallery):
        graphs, _, _ = gallery
        for graph in graphs:
            engine = AnalysisEngine(graph)
            assert engine.isolation_period == pytest.approx(
                period(graph), rel=1e-12
            )

    def test_weight_only_update_matches_stateless(self, gallery):
        graphs, _, _ = gallery
        graph = graphs[0]
        engine = AnalysisEngine(graph)
        inflated = {
            name: time * 1.7
            for name, time in graph.execution_times().items()
        }
        assert engine.period(inflated) == pytest.approx(
            period_with_response_times(graph, inflated), rel=1e-12
        )

    def test_repeated_vector_hits_cache(self, gallery):
        graphs, _, _ = gallery
        engine = AnalysisEngine(graphs[0])
        inflated = {
            name: time + 5.0
            for name, time in graphs[0].execution_times().items()
        }
        first = engine.period(inflated)
        solves = engine.stats.solves
        second = engine.period(dict(inflated))
        assert second == first
        assert engine.stats.solves == solves  # no new solve
        assert engine.stats.cache_hits >= 1

    def test_partial_and_full_vectors_share_cache_key(self, gallery):
        """A mapping that omits actors at their base time must hit the
        same memo entry as the explicit full vector."""
        graphs, _, _ = gallery
        graph = graphs[0]
        engine = AnalysisEngine(graph)
        first_actor = graph.actor_names[0]
        partial = {first_actor: graph.execution_time(first_actor) + 3.0}
        full = dict(graph.execution_times())
        full[first_actor] = full[first_actor] + 3.0
        engine.period(partial)
        solves = engine.stats.solves
        engine.period(full)
        assert engine.stats.solves == solves

    def test_non_positive_response_times_rejected(self, gallery):
        """The engine keeps the cold path's Actor validation contract:
        non-positive times raise GraphError for both analysis methods."""
        from repro.exceptions import GraphError

        graphs, _, _ = gallery
        graph = graphs[0]
        first_actor = graph.actor_names[0]
        for method in (AnalysisMethod.MCR, AnalysisMethod.STATE_SPACE):
            engine = AnalysisEngine(graph, method=method)
            with pytest.raises(GraphError):
                engine.period({first_actor: -5.0})
            with pytest.raises(GraphError):
                engine.period({first_actor: 0.0})
        with pytest.raises(GraphError):
            AnalysisEngine(graph).critical_cycle({first_actor: -5.0})

    def test_warm_policy_is_kept_between_solves(self, gallery):
        graphs, _, _ = gallery
        engine = AnalysisEngine(graphs[0])
        assert engine.last_policy is None
        engine.period()
        assert engine.last_policy is not None

    def test_critical_cycle_matches_stateless(self, gallery):
        graphs, _, _ = gallery
        for graph in graphs:
            engine = AnalysisEngine(graph)
            stateless = critical_cycle(graph)
            from_engine = engine.critical_cycle()
            assert from_engine.ratio == pytest.approx(
                stateless.ratio, rel=1e-12
            )
            assert from_engine.firings == stateless.firings

    def test_state_space_engine_rejects_critical_cycle(self, gallery):
        graphs, _, _ = gallery
        engine = AnalysisEngine(
            graphs[0], method=AnalysisMethod.STATE_SPACE
        )
        with pytest.raises(AnalysisError):
            engine.critical_cycle()
        with pytest.raises(AnalysisError):
            engine.hsdf

    def test_cache_clear_keeps_structure(self, gallery):
        graphs, _, _ = gallery
        engine = AnalysisEngine(graphs[0])
        value = engine.period()
        engine.cache_clear()
        assert engine.period() == value
        assert engine.stats.solves == 2  # re-solved, not re-expanded


class TestEstimatorIntegration:
    def test_shared_engines_across_waiting_models(self, gallery):
        graphs, mapping, use_cases = gallery
        engines = build_engines(graphs)
        periods = {}
        for model in ("second_order", "composability"):
            estimator = ProbabilisticEstimator(
                graphs,
                mapping=mapping,
                waiting_model=model,
                engines=engines,
            )
            assert estimator.engines is engines
            periods[model] = _sweep_periods(
                graphs, mapping, use_cases, model, AnalysisMethod.MCR, False
            )
            for result in estimator.estimate_many(use_cases):
                for name, value in result.periods.items():
                    assert value == pytest.approx(
                        periods[model][(result.use_case, name)], rel=1e-9
                    )
        # One expansion per app served both models.
        assert all(e.stats.solves > 0 for e in engines.values())

    def test_estimate_many_equals_individual_estimates(self, gallery):
        graphs, mapping, use_cases = gallery
        estimator = ProbabilisticEstimator(graphs, mapping=mapping)
        batched = estimator.estimate_many(use_cases)
        for use_case, batch in zip(use_cases, batched):
            single = estimator.estimate(use_case)
            assert single.periods == batch.periods

    def test_sweep_all_sizes_exhaustive_counts(self, gallery):
        graphs, mapping, _ = gallery
        estimator = ProbabilisticEstimator(graphs, mapping=mapping)
        results = estimator.sweep_all_sizes()
        assert len(results) == 15
        sizes = sorted(r.use_case.size for r in results)
        assert sizes == [1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_sweep_all_sizes_sampling_is_deterministic(self, gallery):
        graphs, mapping, _ = gallery
        estimator = ProbabilisticEstimator(graphs, mapping=mapping)
        first = estimator.sweep_all_sizes(samples_per_size=2, seed=3)
        second = estimator.sweep_all_sizes(samples_per_size=2, seed=3)
        assert [r.use_case for r in first] == [r.use_case for r in second]
        assert all(
            len([r for r in first if r.use_case.size == s]) <= 2
            for s in (1, 2, 3, 4)
        )

    def test_engines_must_cover_every_application(self, gallery):
        graphs, mapping, _ = gallery
        engines = build_engines(graphs[:2])
        with pytest.raises(AnalysisError):
            ProbabilisticEstimator(
                graphs, mapping=mapping, engines=engines
            )

    def test_engines_must_match_graph_contents(self, gallery):
        """Engines built from a different design variant (same names,
        scaled timings) are rejected instead of answering silently for
        the wrong graph."""
        graphs, mapping, _ = gallery
        engines = build_engines(graphs)
        variants = [
            g.with_execution_times(
                {a.name: a.execution_time * 2.0 for a in g.actors}
            )
            for g in graphs
        ]
        with pytest.raises(AnalysisError):
            ProbabilisticEstimator(
                variants, mapping=mapping, engines=engines
            )

    def test_equal_content_graphs_are_accepted(self, gallery):
        """Re-built (non-identical) graphs with the same content share
        engines fine — the guard compares content, not identity."""
        graphs, mapping, use_cases = gallery
        engines = build_engines(graphs)
        rebuilt = [g.renamed(g.name) for g in graphs]  # fresh objects
        estimator = ProbabilisticEstimator(
            rebuilt, mapping=mapping, engines=engines
        )
        assert estimator.estimate(use_cases[-1]).periods

    def test_engines_with_cold_path_is_rejected(self, gallery):
        """Supplying engines while forcing the cold path is a
        contradiction; it raises instead of silently ignoring them."""
        graphs, mapping, _ = gallery
        with pytest.raises(AnalysisError):
            ProbabilisticEstimator(
                graphs,
                mapping=mapping,
                engines=build_engines(graphs),
                incremental=False,
            )

    def test_engines_must_match_analysis_method(self, gallery):
        graphs, mapping, _ = gallery
        engines = build_engines(graphs)
        with pytest.raises(AnalysisError):
            ProbabilisticEstimator(
                graphs,
                mapping=mapping,
                engines=engines,
                analysis_method=AnalysisMethod.STATE_SPACE,
            )

    def test_fixed_point_iterations_parity(self, gallery):
        graphs, mapping, use_cases = gallery
        for incremental in (True, False):
            estimator = ProbabilisticEstimator(
                graphs, mapping=mapping, incremental=incremental
            )
            result = estimator.estimate(use_cases[-1], iterations=4)
            if incremental:
                warm_periods = result.periods
            else:
                cold_periods = result.periods
        for name, value in cold_periods.items():
            assert warm_periods[name] == pytest.approx(value, rel=1e-9)


class TestEstimationResultLookups:
    """Satellite: unknown applications raise AnalysisError, not KeyError."""

    def test_normalized_period_of_unknown_app(self, gallery):
        graphs, mapping, _ = gallery
        result = ProbabilisticEstimator(graphs, mapping=mapping).estimate()
        with pytest.raises(AnalysisError):
            result.normalized_period_of("nope")

    def test_isolation_period_of_unknown_app(self, gallery):
        graphs, mapping, _ = gallery
        result = ProbabilisticEstimator(graphs, mapping=mapping).estimate()
        with pytest.raises(AnalysisError):
            result.isolation_period_of("nope")

    def test_known_app_lookups_still_work(self, gallery):
        graphs, mapping, _ = gallery
        result = ProbabilisticEstimator(graphs, mapping=mapping).estimate()
        name = graphs[0].name
        assert result.isolation_period_of(name) == pytest.approx(
            result.isolation_periods[name]
        )
        assert result.normalized_period_of(name) >= 1.0
