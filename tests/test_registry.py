"""The arbitration-model registry: metadata, dispatch, extensibility."""

from __future__ import annotations

import pytest

from repro.core.registry import (
    ARBITERS,
    WAITING_MODELS,
    ArbiterInfo,
    WaitingModelInfo,
    create_waiting_model,
    model_info_for,
    parse_model_spec,
    render_model_table,
)
from repro.core.waiting import make_waiting_model, supports_batch
from repro.exceptions import AnalysisError, MappingError
from repro.simulation.arbiter import Arbiter, make_arbiter


class EchoModel:
    """Scalar-only stand-in third-party model."""

    name = "echo"
    complexity = "O(1)"

    def waiting_time(self, own, others):
        return float(len(others))


def echo_info(name="echo_model", **overrides):
    fields = dict(
        name=name,
        factory=EchoModel,
        summary="test model",
        semantics="mean",
        tolerance=0.5,
        supports_batch=False,
        arbiter="fcfs",
    )
    fields.update(overrides)
    return WaitingModelInfo(**fields)


class TestCatalogue:
    def test_builtin_models_are_registered(self):
        names = WAITING_MODELS.names()
        for expected in (
            "exact",
            "second_order",
            "fourth_order",
            "order",
            "composability",
            "composability_incremental",
            "priority_preemptive",
            "worst_case",
            "weighted_round_robin",
            "tdma",
        ):
            assert expected in names

    def test_builtin_arbiters_are_registered(self):
        names = ARBITERS.names()
        for expected in (
            "fcfs",
            "round_robin",
            "weighted_round_robin",
            "priority",
            "priority_preemptive",
        ):
            assert expected in names

    def test_every_declared_arbiter_exists(self):
        """Model metadata never points at an unregistered policy."""
        for info in WAITING_MODELS.infos():
            if info.arbiter is not None:
                assert info.arbiter in ARBITERS, info.name

    def test_declared_batch_support_matches_reality(self):
        for info in WAITING_MODELS.infos():
            if info.requires_argument:
                continue
            model = create_waiting_model(info.name)
            assert supports_batch(model) == info.supports_batch, (
                info.name
            )

    def test_alias_resolves(self):
        assert WAITING_MODELS.get("wrr").name == "weighted_round_robin"
        model = make_waiting_model("wrr")
        assert model.name == "weighted-rr"

    def test_render_model_table_lists_everything(self):
        table = render_model_table()
        for info in WAITING_MODELS.infos():
            assert info.name in table
        assert "conservative" in table and "mean" in table


class TestUnknownNames:
    def test_unknown_waiting_model_lists_registered_names(self):
        with pytest.raises(AnalysisError) as excinfo:
            make_waiting_model("oracle")
        message = str(excinfo.value)
        assert "unknown waiting model 'oracle'" in message
        for name in WAITING_MODELS.names():
            assert name in message

    def test_unknown_arbiter_lists_registered_names(self):
        with pytest.raises(MappingError) as excinfo:
            make_arbiter("random", [1])
        message = str(excinfo.value)
        assert "unknown arbitration policy 'random'" in message
        for name in ARBITERS.names():
            assert name in message


class TestSpecParsing:
    def test_name_is_case_normalized_argument_is_not(self):
        assert parse_model_spec(" EXACT ") == ("exact", None)
        assert parse_model_spec("WRR:A=2") == ("wrr", "A=2")

    def test_argument_rejected_for_plain_models(self):
        with pytest.raises(AnalysisError):
            make_waiting_model("exact:3")

    def test_required_argument_enforced(self):
        with pytest.raises(AnalysisError) as excinfo:
            make_waiting_model("order")
        assert "requires an argument" in str(excinfo.value)

    def test_weights_argument_preserves_case(self):
        model = make_waiting_model("weighted_round_robin:A=2,b=3")
        assert model.weights == {"A": 2, "b": 3}


class TestMetadataValidation:
    def test_mean_without_tolerance_rejected(self):
        with pytest.raises(AnalysisError):
            echo_info(tolerance=None)

    def test_conservative_with_tolerance_rejected(self):
        with pytest.raises(AnalysisError):
            echo_info(semantics="conservative", tolerance=0.5)

    def test_bad_semantics_rejected(self):
        with pytest.raises(AnalysisError):
            echo_info(semantics="hopeful")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError):
            WAITING_MODELS.register(echo_info(name="exact"))


class TestThirdPartyRegistration:
    def test_temporary_registration_end_to_end(self, small_suite):
        """A registered model reaches the estimator, the sweep
        service's validation, the service protocol and the CLI table
        with zero core changes — and vanishes afterwards."""
        from repro.core.estimator import ProbabilisticEstimator
        from repro.runtime.service import GallerySpec, SweepService
        from repro.service.protocol import parse_estimate

        info = echo_info()
        with WAITING_MODELS.temporary(info):
            assert "echo_model" in WAITING_MODELS.names()
            model = make_waiting_model("echo_model")
            assert isinstance(model, EchoModel)

            estimator = ProbabilisticEstimator(
                list(small_suite.graphs),
                mapping=small_suite.mapping,
                waiting_model="echo_model",
            )
            result = estimator.estimate()
            assert result.model_name == "echo"

            outcome = SweepService().sweep(
                GallerySpec(application_count=3),
                model="echo_model",
                samples_per_size=1,
            )
            assert outcome.use_case_count > 0

            query = parse_estimate(
                {
                    "gallery": {"kind": "paper", "applications": 3},
                    "use_case": ["A", "B"],
                    "model": "echo_model",
                }
            )
            assert query.model == "echo_model"
            assert "echo_model" in render_model_table()
        assert "echo_model" not in WAITING_MODELS.names()

    def test_sweep_service_rejects_unknown_model_before_workers(self):
        from repro.runtime.service import GallerySpec, SweepService

        with pytest.raises(AnalysisError) as excinfo:
            SweepService().sweep(
                GallerySpec(application_count=3), model="oracle"
            )
        assert "registered waiting models" in str(excinfo.value)

    def test_protocol_rejects_unknown_model(self):
        from repro.exceptions import ServiceError
        from repro.service.protocol import parse_estimate

        with pytest.raises(ServiceError) as excinfo:
            parse_estimate(
                {
                    "gallery": {"kind": "paper", "applications": 3},
                    "use_case": ["A"],
                    "model": "oracle",
                }
            )
        message = str(excinfo.value)
        assert "bad waiting model" in message
        assert "registered waiting models" in message

    def test_temporary_arbiter_registration(self):
        class NullArbiter(Arbiter):
            def __init__(self, members, context=None):
                super().__init__(members)
                self._queue = list()

            def enqueue(self, actor_id, time):
                self._queue.append(actor_id)

            def pick(self):
                return self._queue.pop(0) if self._queue else None

            def pending(self):
                return len(self._queue)

        info = ArbiterInfo(
            name="null_policy",
            factory=NullArbiter,
            summary="test arbiter",
        )
        with ARBITERS.temporary(info):
            arbiter = make_arbiter("null_policy", [1, 2])
            arbiter.enqueue(2, 0.0)
            assert arbiter.pick() == 2
        with pytest.raises(MappingError):
            make_arbiter("null_policy", [1])


class TestCaseInsensitivity:
    def test_mixed_case_registration_is_reachable_from_specs(self):
        """The README's 'writing your own model' flow must work even
        with a mixed-case registry name (spec parsing case-folds)."""
        info = echo_info(name="MyModel")
        with WAITING_MODELS.temporary(info):
            assert "MyModel" in WAITING_MODELS.names()
            assert isinstance(make_waiting_model("MyModel"), EchoModel)
            assert isinstance(make_waiting_model("mymodel"), EchoModel)
            assert "mymodel" in WAITING_MODELS
        assert "MyModel" not in WAITING_MODELS

    def test_case_colliding_duplicate_rejected(self):
        with pytest.raises(AnalysisError):
            WAITING_MODELS.register(echo_info(name="EXACT"))


class TestDeepSpecValidation:
    def test_sweep_service_rejects_bad_argument_eagerly(self):
        from repro.runtime.service import GallerySpec, SweepService

        for spec in ("exact:5", "order", "order:x", "wrr:A=0"):
            with pytest.raises(AnalysisError):
                SweepService().sweep(
                    GallerySpec(application_count=3), model=spec
                )

    def test_protocol_rejects_bad_argument(self):
        from repro.exceptions import ServiceError
        from repro.service.protocol import parse_estimate

        for spec in ("exact:5", "order:x", "wrr:A=0"):
            with pytest.raises(ServiceError) as excinfo:
                parse_estimate(
                    {
                        "gallery": {
                            "kind": "paper",
                            "applications": 3,
                        },
                        "use_case": ["A"],
                        "model": spec,
                    }
                )
            assert "bad waiting model" in str(excinfo.value), spec


class TestWeightApplicationCheck:
    def test_estimator_rejects_weights_for_unknown_applications(
        self, small_suite
    ):
        """wrr:a=2 on an A/B/C/D gallery must fail loudly, not fall
        back to the unweighted bound (the argument is case-sensitive
        while the model name is not)."""
        from repro.core.estimator import ProbabilisticEstimator

        for spec in ("wrr:a=2", "wrr:Zed=5"):
            with pytest.raises(AnalysisError) as excinfo:
                ProbabilisticEstimator(
                    list(small_suite.graphs),
                    mapping=small_suite.mapping,
                    waiting_model=spec,
                )
            assert "unknown applications" in str(excinfo.value), spec

    def test_known_application_weights_accepted(self, small_suite):
        from repro.core.estimator import ProbabilisticEstimator

        estimator = ProbabilisticEstimator(
            list(small_suite.graphs),
            mapping=small_suite.mapping,
            waiting_model="wrr:A=2",
        )
        assert estimator.estimate().model_name == "weighted-rr"


class TestReplaceOverAlias:
    def test_replacing_an_alias_name_makes_it_reachable(self):
        """register(replace=True) under a name that was another
        entry's alias must win lookups, and restore cleanly."""
        builtin_wrr = WAITING_MODELS.get("weighted_round_robin")
        info = echo_info(name="wrr")
        with WAITING_MODELS.temporary(info, replace=True):
            assert WAITING_MODELS.get("wrr").name == "wrr"
            assert isinstance(make_waiting_model("wrr"), EchoModel)
            # The canonical spelling still reaches the builtin.
            assert (
                WAITING_MODELS.get("weighted_round_robin").name
                == "weighted_round_robin"
            )
        # Alias restored to the builtin afterwards.
        assert WAITING_MODELS.get("wrr") is builtin_wrr
