"""Property-based tests of the contention formulas and estimator.

Pins the structural behaviour the paper's argument depends on:
monotonicity of waiting in load, scale invariance of the whole pipeline,
insensitivity to actor ordering, and equality between independent
implementations of the same quantity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximation import waiting_time_order_m
from repro.core.blocking import build_profile
from repro.core.composability import compose_all
from repro.core.estimator import ProbabilisticEstimator
from repro.core.exact import waiting_time_exact
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.platform.mapping import index_mapping
from repro.platform.usecase import UseCase

_spec = st.tuples(
    st.floats(1.0, 150.0, allow_nan=False),
    st.floats(0.01, 0.9, allow_nan=False),
)


def _profiles(specs):
    return [
        build_profile("T", f"x{i}", tau=tau, repetitions=1,
                      period=tau / p)
        for i, (tau, p) in enumerate(specs)
    ]


class TestWaitingMonotonicity:
    @given(st.lists(_spec, min_size=1, max_size=6), _spec)
    @settings(max_examples=120, deadline=None)
    def test_adding_an_actor_never_reduces_exact_waiting(
        self, specs, extra
    ):
        base = _profiles(specs)
        extended = _profiles(specs + [extra])
        assert waiting_time_exact(extended) >= (
            waiting_time_exact(base) - 1e-9
        )

    @given(st.lists(_spec, min_size=1, max_size=6), _spec)
    @settings(max_examples=120, deadline=None)
    def test_adding_an_actor_never_reduces_second_order(
        self, specs, extra
    ):
        base = _profiles(specs)
        extended = _profiles(specs + [extra])
        assert waiting_time_order_m(extended, 2) >= (
            waiting_time_order_m(base, 2) - 1e-9
        )

    @given(
        st.lists(_spec, min_size=2, max_size=6),
        st.floats(1.05, 3.0, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_raising_one_probability_raises_exact_waiting(
        self, specs, factor
    ):
        base = _profiles(specs)
        tau, p = specs[0]
        raised = [
            build_profile(
                "T", "x0", tau=tau, repetitions=1,
                period=tau / min(p * factor, 1.0),
            ),
            *base[1:],
        ]
        assert waiting_time_exact(raised) >= (
            waiting_time_exact(base) - 1e-9
        )


class TestOrderingInsensitivity:
    @given(st.lists(_spec, min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_exact_and_orders_permutation_invariant(self, specs):
        profiles = _profiles(specs)
        reversed_profiles = profiles[::-1]
        assert waiting_time_exact(profiles) == pytest.approx(
            waiting_time_exact(reversed_profiles), rel=1e-9, abs=1e-9
        )
        assert waiting_time_order_m(profiles, 2) == pytest.approx(
            waiting_time_order_m(reversed_profiles, 2),
            rel=1e-9,
            abs=1e-9,
        )

    @given(st.lists(_spec, min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_compose_all_probability_permutation_invariant(self, specs):
        """(+) is exactly order-free; (x) drifts within a provable band.

        Folding n actors multiplies each mu_i P_i term by between 0 and
        n-1 factors of the form (1 + P/2) with P <= max probability, so
        any two fold orders agree within the compounded factor
        ``(1 + p_max/2)^(n-1)`` — the quantitative version of the
        paper's "associative only to second order".
        """
        profiles = _profiles(specs)
        forward = compose_all(profiles)
        backward = compose_all(profiles[::-1])
        # (+) is fully associative/commutative: exact equality expected.
        assert forward.probability == pytest.approx(
            backward.probability, abs=1e-12
        )
        p_max = max(p.probability for p in profiles)
        band = (1.0 + p_max / 2.0) ** (len(profiles) - 1)
        low, high = sorted(
            [forward.waiting_product, backward.waiting_product]
        )
        assert high <= low * band + 1e-9


class TestEstimatorInvariants:
    @given(seed=st.integers(0, 500), scale=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_scale_invariance(self, seed, scale):
        """Scaling every execution time by k scales every estimated
        period by exactly k (P and the schedule are scale-free)."""
        config = GeneratorConfig(actor_count_range=(3, 5))
        graphs = [
            random_sdf_graph("X", seed=seed, config=config),
            random_sdf_graph("Y", seed=seed + 1000, config=config),
        ]
        scaled = [
            g.with_execution_times(
                {a.name: a.execution_time * scale for a in g.actors}
            )
            for g in graphs
        ]
        mapping = index_mapping(graphs)
        scaled_mapping = index_mapping(scaled)
        base = ProbabilisticEstimator(graphs, mapping=mapping).estimate()
        inflated = ProbabilisticEstimator(
            scaled, mapping=scaled_mapping
        ).estimate()
        for name in ("X", "Y"):
            assert inflated.periods[name] == pytest.approx(
                base.periods[name] * scale, rel=1e-9
            )

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_estimates_deterministic(self, seed):
        config = GeneratorConfig(actor_count_range=(3, 5))
        graphs = [
            random_sdf_graph("X", seed=seed, config=config),
            random_sdf_graph("Y", seed=seed + 1, config=config),
        ]
        mapping = index_mapping(graphs)
        first = ProbabilisticEstimator(graphs, mapping=mapping).estimate()
        second = ProbabilisticEstimator(
            graphs, mapping=mapping
        ).estimate()
        assert first.periods == second.periods
        assert first.waiting_times == second.waiting_times

    @given(seed=st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_inactive_applications_do_not_disturb_estimates(self, seed):
        """Estimating use-case {X} must not depend on whether the
        estimator also knows about Y and Z."""
        config = GeneratorConfig(actor_count_range=(3, 5))
        graphs = [
            random_sdf_graph(name, seed=seed + offset, config=config)
            for offset, name in enumerate(("X", "Y", "Z"))
        ]
        mapping = index_mapping(graphs)
        wide = ProbabilisticEstimator(graphs, mapping=mapping)
        narrow = ProbabilisticEstimator([graphs[0]], mapping=mapping)
        use_case = UseCase.of("X")
        assert wide.estimate(use_case).periods == pytest.approx(
            narrow.estimate(use_case).periods
        )

    @given(seed=st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_growing_use_case_is_monotone(self, seed):
        config = GeneratorConfig(actor_count_range=(3, 5))
        graphs = [
            random_sdf_graph(name, seed=seed + offset, config=config)
            for offset, name in enumerate(("X", "Y", "Z"))
        ]
        estimator = ProbabilisticEstimator(
            graphs, mapping=index_mapping(graphs)
        )
        alone = estimator.estimate(UseCase.of("X")).periods["X"]
        pair = estimator.estimate(UseCase.of("X", "Y")).periods["X"]
        trio = estimator.estimate(UseCase.of("X", "Y", "Z")).periods["X"]
        assert alone <= pair + 1e-9
        assert pair <= trio + 1e-9
