"""Period/throughput façade tests (Definition 3)."""

from __future__ import annotations

import pytest

from repro.sdf.analysis import (
    AnalysisMethod,
    period,
    period_with_response_times,
    throughput,
)


class TestPeriod:
    def test_both_engines_agree(self, app_a, app_b):
        for graph in (app_a, app_b):
            assert period(graph, AnalysisMethod.MCR) == pytest.approx(
                period(graph, AnalysisMethod.STATE_SPACE)
            )

    def test_mcr_algorithms_agree(self, app_a):
        for algorithm in ("howard", "lawler", "brute"):
            assert period(
                app_a, mcr_algorithm=algorithm
            ) == pytest.approx(300.0, rel=1e-6)

    def test_throughput_is_inverse_period(self, app_a):
        assert throughput(app_a) == pytest.approx(1.0 / 300.0)


class TestPeriodWithResponseTimes:
    def test_paper_inflation(self, app_a):
        # Section 3.1: response times {108.33, 66.67, 116.67} -> ~358.33
        # (the paper rounds to 359).
        new_period = period_with_response_times(
            app_a,
            {"a0": 100 + 25 / 3, "a1": 50 + 50 / 3, "a2": 100 + 50 / 3},
        )
        assert new_period == pytest.approx(1075 / 3)

    def test_partial_override_keeps_other_times(self, app_a):
        unchanged = period_with_response_times(app_a, {})
        assert unchanged == pytest.approx(300.0)

    def test_original_graph_not_mutated(self, app_a):
        period_with_response_times(app_a, {"a0": 500.0})
        assert app_a.execution_time("a0") == 100

    def test_state_space_engine_supported(self, app_a):
        new_period = period_with_response_times(
            app_a,
            {"a0": 100 + 25 / 3, "a1": 50 + 50 / 3, "a2": 100 + 50 / 3},
            method=AnalysisMethod.STATE_SPACE,
        )
        assert new_period == pytest.approx(1075 / 3)
