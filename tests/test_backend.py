"""Unit tests for the array-backend layer itself.

Parity of whole estimates lives in ``test_backend_parity.py``; this
file covers the building blocks — backend selection, the batched
symmetric-polynomial/waiting kernels against their scalar references,
``IncrementalMCRSolver.solve_many``, ``AnalysisEngine.period_for``, and
the ``DiscreteTime`` weight validation fix.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis_engine import AnalysisEngine
from repro.backend import (
    BACKEND_ENV_VAR,
    NumpyBackend,
    PythonBackend,
    get_backend,
    numpy_available,
)
from repro.core.blocking import (
    blocking_probabilities_batch,
    build_profile,
    resident_vectors,
)
from repro.core.distributions import DiscreteTime
from repro.core.exact import ExactWaitingModel
from repro.core.symmetric import (
    elementary_symmetric_all,
    elementary_symmetric_batch,
)
from repro.core.waiting import make_waiting_model, supports_batch
from repro.exceptions import AnalysisError, GraphError
from repro.sdf.builder import GraphBuilder
from repro.sdf.mcm import IncrementalMCRSolver, RatioEdge

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)


class TestBackendSelection:
    def test_python_backend_is_always_available(self):
        backend = get_backend("python")
        assert isinstance(backend, PythonBackend)
        assert not backend.vectorized

    def test_unknown_name_is_rejected(self):
        with pytest.raises(AnalysisError, match="unknown array backend"):
            get_backend("cupy")

    def test_instances_pass_through(self):
        backend = PythonBackend()
        assert get_backend(backend) is backend

    def test_environment_variable_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert get_backend(None).name == "python"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert get_backend(None).name in ("numpy", "python")

    @needs_numpy
    def test_numpy_backend_reductions_match_python(self):
        values = (3.0, 5.0, 11.0)
        weights = (0.25, 0.5, 0.25)
        scalar = PythonBackend()
        vector = NumpyBackend()
        assert vector.dot(values, weights) == pytest.approx(
            scalar.dot(values, weights), rel=1e-12
        )
        assert vector.weighted_second_moment(
            values, weights
        ) == pytest.approx(
            scalar.weighted_second_moment(values, weights), rel=1e-12
        )
        assert vector.sum(values) == pytest.approx(
            scalar.sum(values), rel=1e-12
        )

    def test_all_builtin_models_support_batching(self):
        for name in (
            "exact",
            "second_order",
            "fourth_order",
            "order:3",
            "composability",
            "composability_incremental",
            "worst_case",
            "tdma",
        ):
            assert supports_batch(make_waiting_model(name)), name

    def test_scalar_only_models_are_detected(self):
        class ScalarOnly:
            name = "scalar-only"
            complexity = "O(1)"

            def waiting_time(self, own, others):
                return 0.0

        assert not supports_batch(ScalarOnly())


@needs_numpy
class TestBatchedKernels:
    def test_elementary_symmetric_batch_matches_scalar(self):
        import numpy as np

        rng = random.Random(5)
        values = [rng.random() for _ in range(6)]
        include = np.asarray(
            [
                [1.0 if rng.random() < 0.6 else 0.0 for _ in values]
                for _ in range(16)
            ]
        )
        batch = elementary_symmetric_batch(
            np.asarray(values), include, 6, np
        )
        for row in range(16):
            selected = [
                v for v, keep in zip(values, include[row]) if keep
            ]
            reference = elementary_symmetric_all(selected, max_order=6)
            for order, expected in enumerate(reference):
                assert batch[row, order] == pytest.approx(
                    expected, rel=1e-12, abs=1e-12
                )
            # Orders beyond the sub-multiset size vanish exactly.
            for order in range(len(selected) + 1, 7):
                assert batch[row, order] == 0.0

    def test_exact_batch_matches_scalar_model(self):
        import numpy as np

        rng = random.Random(1)
        profiles = [
            build_profile(
                f"A{i}", "a", rng.uniform(5, 40), 1, 400.0
            )
            for i in range(5)
        ]
        vectors = resident_vectors(profiles, np)
        active = np.asarray(
            [[1.0, 1.0, 0.0, 1.0, 1.0], [1.0, 0.0, 0.0, 0.0, 1.0]]
        )
        inc = active[:, None, :] * (1.0 - np.eye(5))[None, :, :]
        model = ExactWaitingModel()
        batch = model.waiting_times_batch(vectors, inc, active, np)
        for row in range(2):
            for own in range(5):
                if not active[row, own]:
                    continue
                others = [
                    profiles[i]
                    for i in range(5)
                    if i != own and active[row, i]
                ]
                assert batch[row, own] == pytest.approx(
                    model.waiting_time(profiles[own], others),
                    rel=1e-12,
                    abs=1e-12,
                )

    def test_blocking_probabilities_batch_validates(self):
        import numpy as np

        taus = np.asarray([10.0, 20.0])
        repetitions = np.asarray([1.0, 1.0])
        result = blocking_probabilities_batch(
            taus, repetitions, 100.0, np
        )
        assert result.tolist() == [0.1, 0.2]
        with pytest.raises(AnalysisError, match="period must be positive"):
            blocking_probabilities_batch(taus, repetitions, 0.0, np)
        with pytest.raises(AnalysisError, match="exceeds 1"):
            blocking_probabilities_batch(taus, repetitions, 15.0, np)


@needs_numpy
class TestSolveMany:
    def _ring(self, seed: int):
        rng = random.Random(seed)
        vertex_count = rng.randint(4, 10)
        edges = [
            RatioEdge(
                i,
                (i + 1) % vertex_count,
                rng.uniform(1, 30),
                rng.randint(1, 2),
            )
            for i in range(vertex_count)
        ]
        for _ in range(vertex_count):
            source = rng.randrange(vertex_count)
            target = rng.randrange(vertex_count)
            edges.append(
                RatioEdge(
                    source,
                    target,
                    rng.uniform(1, 30),
                    rng.randint(0 if source != target else 1, 2),
                )
            )
        return vertex_count, edges

    def test_matches_scalar_solver(self):
        import numpy as np

        rng = random.Random(13)
        for seed in range(6):
            vertex_count, edges = self._ring(seed)
            batched = IncrementalMCRSolver(vertex_count, edges)
            reference = IncrementalMCRSolver(vertex_count, edges)
            weight_rows = np.asarray(
                [
                    [rng.uniform(1, 40) for _ in edges]
                    for _ in range(25)
                ]
            )
            ratios = batched.solve_many(weight_rows, np)
            for row in range(25):
                expected = reference.solve(list(weight_rows[row])).ratio
                assert ratios[row] == pytest.approx(
                    expected, rel=1e-9
                ), (seed, row)
            assert batched.batch_accepted + batched.batch_fallbacks >= 25

    def test_certified_results_are_plain_floats(self):
        import numpy as np

        vertex_count, edges = self._ring(3)
        solver = IncrementalMCRSolver(vertex_count, edges)
        rows = np.asarray([[e.weight for e in edges]] * 3)
        ratios = solver.solve_many(rows, np)
        assert all(type(r) is float for r in ratios)

    def test_without_module_handle_falls_back_to_scalar(self):
        vertex_count, edges = self._ring(4)
        batched = IncrementalMCRSolver(vertex_count, edges)
        reference = IncrementalMCRSolver(vertex_count, edges)
        rows = [[e.weight * 1.5 for e in edges]] * 2
        assert batched.solve_many(rows, None) == [
            reference.solve(list(row)).ratio for row in rows
        ]
        assert batched.batch_accepted == 0

    def test_shape_mismatch_is_rejected(self):
        import numpy as np

        vertex_count, edges = self._ring(5)
        solver = IncrementalMCRSolver(vertex_count, edges)
        with pytest.raises(AnalysisError, match="weight matrix"):
            solver.solve_many(np.zeros((2, len(edges) + 1)), np)


class TestPeriodFor:
    @pytest.fixture
    def graph(self):
        return (
            GraphBuilder("ring")
            .actor("a", 10)
            .actor("b", 20)
            .actor("c", 15)
            .channel("a", "b")
            .channel("b", "c")
            .channel("c", "a", initial_tokens=1)
            .build()
        )

    def test_matches_scalar_period(self, graph):
        engine = AnalysisEngine(graph)
        scalar_engine = AnalysisEngine(graph)
        vectors = [
            [10.0, 20.0, 15.0],
            [12.0, 25.0, 15.5],
            [10.0, 20.0, 15.0],  # repeat: must come from the memo
        ]
        for backend in (
            ("python",)
            + (("numpy",) if numpy_available() else ())
        ):
            periods = engine.period_for(vectors, backend)
            for row, vector in enumerate(vectors):
                names = graph.actor_names
                expected = scalar_engine.period(
                    dict(zip(names, vector))
                )
                assert periods[row] == pytest.approx(
                    expected, rel=1e-9
                )
            assert all(type(p) is float for p in periods)

    @needs_numpy
    def test_batched_queries_never_pollute_the_scalar_memo(self, graph):
        """Shared engines stay byte-deterministic on the scalar path.

        A batch-certified ratio may differ from the scalar Howard
        result in the last bits; :meth:`AnalysisEngine.period` (the
        path the admission/runtime layer shares) must keep returning
        exactly what a never-batched engine returns.
        """
        engine = AnalysisEngine(graph)
        fresh = AnalysisEngine(graph)
        names = graph.actor_names
        seed_vector = [10.0, 20.0, 15.0]
        certified_vector = [11.5, 23.0, 16.5]
        engine.period_for([seed_vector, certified_vector], "numpy")
        for vector in (seed_vector, certified_vector):
            assert engine.period(
                dict(zip(names, vector))
            ) == fresh.period(dict(zip(names, vector)))

    @needs_numpy
    def test_rejects_non_positive_times(self, graph):
        engine = AnalysisEngine(graph)
        with pytest.raises(GraphError, match="must be positive"):
            engine.period_for([[10.0, -1.0, 15.0]], "numpy")

    @needs_numpy
    def test_rejects_wrong_width(self, graph):
        engine = AnalysisEngine(graph)
        with pytest.raises(AnalysisError, match="times per"):
            engine.period_for([[10.0, 20.0]], "numpy")


@needs_numpy
class TestScalarErrorParity:
    """Batched kernels must raise exactly where the scalar path does."""

    def _vectors_and_inc(self, profiles, active):
        import numpy as np

        count = len(profiles)
        vectors = resident_vectors(profiles, np)
        inc = (
            active[:, None, :] * (1.0 - np.eye(count))[None, :, :]
        )
        return vectors, inc

    def test_incremental_composability_p1_raises_like_scalar(self):
        import numpy as np

        model = make_waiting_model("composability_incremental")
        saturated = build_profile("A", "a", 100.0, 1, 100.0)  # P = 1
        other = build_profile("B", "b", 20.0, 1, 200.0)
        assert saturated.probability == 1.0
        with pytest.raises(AnalysisError, match="P_b != 1"):
            model.waiting_time(saturated, [other])
        active = np.asarray([[1.0, 1.0]])
        vectors, inc = self._vectors_and_inc(
            [saturated, other], active
        )
        with pytest.raises(AnalysisError, match="P_b != 1"):
            model.waiting_times_batch(vectors, inc, active, np)

    def test_inactive_saturated_actor_does_not_raise(self):
        import numpy as np

        model = make_waiting_model("composability_incremental")
        saturated = build_profile("A", "a", 100.0, 1, 100.0)
        others = [
            build_profile("B", "b", 20.0, 1, 200.0),
            build_profile("C", "c", 30.0, 1, 300.0),
        ]
        # The saturated actor is inactive in every row, so the scalar
        # loop would never decompose it — no error either way.
        active = np.asarray([[0.0, 1.0, 1.0]])
        vectors, inc = self._vectors_and_inc(
            [saturated, *others], active
        )
        batch = model.waiting_times_batch(vectors, inc, active, np)
        expected = model.waiting_time(others[0], [others[1]])
        assert batch[0, 1] == pytest.approx(expected, rel=1e-12)

    def test_tdma_zero_tau_raises_like_scalar(self):
        import numpy as np

        model = make_waiting_model("tdma")
        idle = build_profile("A", "a", 0.0, 1, 100.0, mu=1.0)
        other = build_profile("B", "b", 20.0, 1, 200.0)
        with pytest.raises(AnalysisError, match="slice length"):
            model.waiting_time(idle, [other])
        active = np.asarray([[1.0, 1.0]])
        vectors, inc = self._vectors_and_inc([idle, other], active)
        with pytest.raises(AnalysisError, match="slice length"):
            model.waiting_times_batch(vectors, inc, active, np)

    def test_tdma_zero_tau_alone_or_inactive_is_fine(self):
        import numpy as np

        model = make_waiting_model("tdma")
        idle = build_profile("A", "a", 0.0, 1, 100.0, mu=1.0)
        other = build_profile("B", "b", 20.0, 1, 200.0)
        # Scalar: no contenders -> waiting 0 and no slice is built.
        assert model.waiting_time(idle, []) == 0.0
        active = np.asarray([[0.0, 1.0]])
        vectors, inc = self._vectors_and_inc([idle, other], active)
        batch = model.waiting_times_batch(vectors, inc, active, np)
        assert batch[0, 1] == 0.0
        assert not np.isnan(batch).any()


class TestDiscreteTimeBackends:
    def test_default_bits_do_not_depend_on_environment(
        self, monkeypatch
    ):
        pairs = [(120.0, 0.1), (80.0, 0.3), (40.0, 0.6)]
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        scalar = DiscreteTime.of(pairs)
        monkeypatch.setenv(
            BACKEND_ENV_VAR,
            "numpy" if numpy_available() else "python",
        )
        vector = DiscreteTime.of(pairs)
        assert scalar.mean() == vector.mean()
        assert scalar.second_moment() == vector.second_moment()
        assert scalar._normalized() == vector._normalized()

    @needs_numpy
    def test_explicit_numpy_backend_agrees_with_scalar(self):
        pairs = [(120.0, 0.1), (80.0, 0.3), (40.0, 0.6)]
        scalar = DiscreteTime.of(pairs)
        vector = DiscreteTime.of(pairs, backend="numpy")
        assert vector.mean() == pytest.approx(
            scalar.mean(), rel=1e-12
        )
        assert vector.second_moment() == pytest.approx(
            scalar.second_moment(), rel=1e-12
        )
        assert vector.mean_residual() == pytest.approx(
            scalar.mean_residual(), rel=1e-12
        )


class TestDiscreteTimeValidation:
    def test_zero_weight_is_rejected_with_context(self):
        with pytest.raises(AnalysisError) as excinfo:
            DiscreteTime.of([(120.0, 0.5), (80.0, 0.0)])
        message = str(excinfo.value)
        assert "strictly positive" in message
        assert "0.0" in message
        assert "80.0" in message
        assert "index 1" in message

    def test_negative_weight_is_rejected_with_context(self):
        with pytest.raises(AnalysisError) as excinfo:
            DiscreteTime.of([(120.0, -0.25), (80.0, 1.0)])
        message = str(excinfo.value)
        assert "strictly positive" in message
        assert "-0.25" in message
        assert "index 0" in message

    def test_nan_weight_is_rejected(self):
        with pytest.raises(AnalysisError, match="strictly positive"):
            DiscreteTime.of([(120.0, float("nan"))])

    def test_positive_weights_still_work(self):
        dist = DiscreteTime.of([(120.0, 1.0), (80.0, 3.0)])
        assert dist.mean() == pytest.approx(90.0)
