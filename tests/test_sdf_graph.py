"""Unit tests for actors, channels and the SDF graph container."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.sdf.actor import Actor
from repro.sdf.builder import GraphBuilder
from repro.sdf.channel import Channel
from repro.sdf.graph import SDFGraph


class TestActor:
    def test_attributes(self):
        actor = Actor("a0", 100)
        assert actor.name == "a0"
        assert actor.execution_time == 100
        assert actor.processor_type == "proc"

    def test_rejects_zero_execution_time(self):
        with pytest.raises(GraphError):
            Actor("a0", 0)

    def test_rejects_negative_execution_time(self):
        with pytest.raises(GraphError):
            Actor("a0", -5)

    def test_rejects_empty_name(self):
        with pytest.raises(GraphError):
            Actor("", 10)

    def test_with_execution_time_returns_new_actor(self):
        actor = Actor("a0", 100, processor_type="dsp")
        inflated = actor.with_execution_time(117)
        assert inflated.execution_time == 117
        assert inflated.name == "a0"
        assert inflated.processor_type == "dsp"
        assert actor.execution_time == 100

    def test_frozen(self):
        actor = Actor("a0", 100)
        with pytest.raises(AttributeError):
            actor.execution_time = 50  # type: ignore[misc]


class TestChannel:
    def test_defaults(self):
        channel = Channel("a", "b")
        assert channel.production_rate == 1
        assert channel.consumption_rate == 1
        assert channel.initial_tokens == 0
        assert channel.name == "a->b"

    def test_custom_name_preserved(self):
        channel = Channel("a", "b", name="data")
        assert channel.name == "data"

    def test_rejects_zero_production(self):
        with pytest.raises(GraphError):
            Channel("a", "b", production_rate=0)

    def test_rejects_zero_consumption(self):
        with pytest.raises(GraphError):
            Channel("a", "b", consumption_rate=0)

    def test_rejects_negative_tokens(self):
        with pytest.raises(GraphError):
            Channel("a", "b", initial_tokens=-1)

    def test_self_loop_detection(self):
        assert Channel("a", "a").is_self_loop
        assert not Channel("a", "b").is_self_loop


class TestSDFGraph:
    def _graph(self) -> SDFGraph:
        return SDFGraph(
            "G",
            [Actor("a", 10), Actor("b", 20), Actor("c", 30)],
            [
                Channel("a", "b"),
                Channel("b", "c"),
                Channel("c", "a", initial_tokens=1),
            ],
        )

    def test_actor_lookup(self):
        graph = self._graph()
        assert graph.actor("b").execution_time == 20
        assert graph.has_actor("a")
        assert not graph.has_actor("z")

    def test_unknown_actor_raises(self):
        with pytest.raises(GraphError):
            self._graph().actor("nope")

    def test_duplicate_actor_rejected(self):
        with pytest.raises(GraphError):
            SDFGraph("G", [Actor("a", 1), Actor("a", 2)], [])

    def test_dangling_channel_rejected(self):
        with pytest.raises(GraphError):
            SDFGraph("G", [Actor("a", 1)], [Channel("a", "ghost")])

    def test_edges(self):
        graph = self._graph()
        assert [c.target for c in graph.out_edges("a")] == ["b"]
        assert [c.source for c in graph.in_edges("a")] == ["c"]

    def test_successors_predecessors(self):
        graph = self._graph()
        assert graph.successors("a") == ("b",)
        assert graph.predecessors("a") == ("c",)

    def test_len_iter_contains(self):
        graph = self._graph()
        assert len(graph) == 3
        assert {a.name for a in graph} == {"a", "b", "c"}
        assert "a" in graph
        assert "z" not in graph

    def test_strongly_connected_ring(self):
        assert self._graph().is_strongly_connected()

    def test_not_strongly_connected_without_back_edge(self):
        graph = SDFGraph(
            "G",
            [Actor("a", 1), Actor("b", 1)],
            [Channel("a", "b")],
        )
        assert not graph.is_strongly_connected()

    def test_with_execution_times_copies(self):
        graph = self._graph()
        inflated = graph.with_execution_times({"a": 15.5})
        assert inflated.execution_time("a") == 15.5
        assert inflated.execution_time("b") == 20
        assert graph.execution_time("a") == 10

    def test_with_execution_times_preserves_channels(self):
        graph = self._graph()
        inflated = graph.with_execution_times({"a": 99})
        assert len(inflated.channels) == len(graph.channels)
        assert inflated.total_initial_tokens() == 1

    def test_renamed(self):
        renamed = self._graph().renamed("H")
        assert renamed.name == "H"
        assert len(renamed) == 3

    def test_execution_times_mapping(self):
        assert self._graph().execution_times() == {
            "a": 10,
            "b": 20,
            "c": 30,
        }


class TestGraphBuilder:
    def test_build_chain(self):
        graph = (
            GraphBuilder("G")
            .actor("x", 5)
            .actor("y", 6)
            .channel("x", "y", production=3, consumption=2)
            .build()
        )
        assert len(graph) == 2
        assert graph.channels[0].production_rate == 3

    def test_actors_shorthand(self):
        graph = GraphBuilder("G").actors(("x", 5), ("y", 6)).build()
        assert {a.name for a in graph} == {"x", "y"}

    def test_cycle_helper(self):
        graph = (
            GraphBuilder("G")
            .actor("a", 1)
            .actor("b", 2)
            .actor("c", 3)
            .cycle("a", "b", "c", initial_tokens_on_back_edge=2)
            .build()
        )
        back = [c for c in graph.channels if c.source == "c"][0]
        assert back.target == "a"
        assert back.initial_tokens == 2

    def test_cycle_needs_two_actors(self):
        with pytest.raises(GraphError):
            GraphBuilder("G").actor("a", 1).cycle("a")

    def test_single_build(self):
        builder = GraphBuilder("G").actor("a", 1)
        builder.build()
        with pytest.raises(GraphError):
            builder.build()
