"""Worst-case baseline tests (references [6] and [3])."""

from __future__ import annotations

import pytest

from repro.core.blocking import build_profiles
from repro.exceptions import AnalysisError
from repro.wcrt.round_robin import (
    WorstCaseRRWaitingModel,
    worst_case_response_time,
)
from repro.wcrt.tdma import TDMAWaitingModel, tdma_response_time
from tests.test_core_exact import profile


class TestRoundRobinWCRT:
    def test_response_time_formula(self):
        assert worst_case_response_time(100, [50, 30]) == 180

    def test_no_contention(self):
        assert worst_case_response_time(100, []) == 100

    def test_model_ignores_probabilities(self):
        model = WorstCaseRRWaitingModel()
        own = profile(100, 0.3, "own")
        rarely = [profile(50, 0.001, "rare")]
        often = [profile(50, 0.999, "busy")]
        # Worst case does not care how often the other actor runs.
        assert model.waiting_time(own, rarely) == model.waiting_time(
            own, often
        )

    def test_grows_linearly_with_residents(self):
        model = WorstCaseRRWaitingModel()
        own = profile(10, 0.1, "own")
        others = [profile(20, 0.1, f"o{i}") for i in range(8)]
        waits = [
            model.waiting_time(own, others[:k]) for k in range(1, 9)
        ]
        diffs = [b - a for a, b in zip(waits, waits[1:])]
        assert all(d == pytest.approx(20.0) for d in diffs)

    def test_dominates_exact_estimate(self, two_apps):
        from repro.core.exact import ExactWaitingModel

        profiles = build_profiles(list(two_apps))
        own = profiles[("B", "b0")]
        others = [profiles[("A", "a0")]]
        wc = WorstCaseRRWaitingModel().waiting_time(own, others)
        exact = ExactWaitingModel().waiting_time(own, others)
        assert wc > exact
        # b0 waits at most the whole of a0: tau(a0) = 100.
        assert wc == pytest.approx(100.0)


class TestTDMA:
    def test_single_resident_is_execution_time(self):
        assert tdma_response_time(100, 1, 10) == 100

    def test_two_residents_equal_slices(self):
        # tau=100, slice=100, wheel=200: one foreign slice of 100.
        assert tdma_response_time(100, 2, 100) == 200

    def test_small_slices_hurt(self):
        # tau=100 in slices of 10 with 3 residents: 10 rotations, each
        # paying 20 foreign time units.
        assert tdma_response_time(100, 3, 10) == 100 + 10 * 20

    def test_validation(self):
        with pytest.raises(AnalysisError):
            tdma_response_time(10, 0, 5)
        with pytest.raises(AnalysisError):
            tdma_response_time(10, 2, 0)

    def test_model_waiting(self):
        model = TDMAWaitingModel()
        own = profile(100, 0.3, "own")
        others = [profile(50, 0.2, "o1"), profile(60, 0.1, "o2")]
        # Default slice = own tau -> one full rotation of 2 foreign
        # slices of 100 each.
        assert model.waiting_time(own, others) == pytest.approx(200.0)

    def test_model_no_contention(self):
        model = TDMAWaitingModel()
        assert model.waiting_time(profile(100, 0.3, "own"), []) == 0.0

    def test_tdma_more_pessimistic_than_round_robin_for_small_slices(self):
        own = profile(100, 0.3, "own")
        others = [profile(50, 0.2, "o1")]
        tdma = TDMAWaitingModel(slice_length=10).waiting_time(own, others)
        rr = WorstCaseRRWaitingModel().waiting_time(own, others)
        assert tdma > rr


class TestFactoryIntegration:
    def test_waiting_model_factory(self):
        from repro.core.waiting import make_waiting_model

        assert isinstance(
            make_waiting_model("worst_case"), WorstCaseRRWaitingModel
        )
        assert isinstance(make_waiting_model("tdma"), TDMAWaitingModel)

    def test_factory_rejects_unknown(self):
        from repro.core.waiting import make_waiting_model

        with pytest.raises(AnalysisError):
            make_waiting_model("oracle")
        with pytest.raises(AnalysisError):
            make_waiting_model("order:x")

    def test_factory_order_spec(self):
        from repro.core.waiting import make_waiting_model

        model = make_waiting_model("order:5")
        assert model.order == 5
