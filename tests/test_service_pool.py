"""Tests of the multiprocess solver pool behind the estimation server.

Every scenario runs real worker *processes* (single-worker
``ProcessPoolExecutor`` slots) — parity against the thread-mode server,
gallery affinity, strided group splitting, crash respawn/re-drive,
graceful shutdown that leaves no child process behind, plus the two
concurrency fixes that make the pool safe to operate: eager reaping of
disconnected clients' pending queries and the invalidation fence that
keeps an in-flight solve from re-populating the cache with stale
results.

Worker counts are capped at ``os.cpu_count()`` in production; tests
monkeypatch the count up so multi-worker placement is exercised even
on one-core runners (correctness does not depend on real parallelism).
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import threading

import pytest

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.protocol import encode_message, parse_estimate
from repro.service.server import EstimationServer
from repro.service.workers import SolverPool
from repro.telemetry import MetricsRegistry

GALLERY = {"kind": "paper", "seed": 2007, "applications": 4}


def names():
    from repro.runtime.service import GallerySpec

    return GallerySpec(
        kind="paper", seed=2007, application_count=4
    ).application_names()


def all_single_queries():
    """One parsed query per application — distinct, same gallery."""
    return [
        parse_estimate({"gallery": GALLERY, "use_case": [name]})
        for name in names()
    ]


def serve(coroutine_factory, **server_kwargs):
    """Run one async scenario against a fresh TCP server."""

    async def scenario():
        server = EstimationServer(**server_kwargs)
        host, port = await server.start()
        try:
            return await coroutine_factory(server, host, port)
        finally:
            await server.aclose()

    return asyncio.run(scenario())


@pytest.fixture
def many_cpus(monkeypatch):
    """Lift the worker cap so placement tests see several slots."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


# ----------------------------------------------------------------------
# SolverPool directly
# ----------------------------------------------------------------------
class TestSolverPool:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError, match="workers"):
            SolverPool(0)
        with pytest.raises(ServiceError, match="split_threshold"):
            SolverPool(1, split_threshold=0)

    def test_worker_count_capped_at_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        pool = SolverPool(8, registry=MetricsRegistry(enabled=True))
        assert pool.workers == 2

    def test_affinity_is_stable_per_gallery(self, many_cpus):
        pool = SolverPool(4, registry=MetricsRegistry(enabled=True))
        label = "paper:2007:4"
        home = pool.worker_for(label)
        assert all(pool.worker_for(label) == home for _ in range(16))
        # Different galleries spread over slots (not all on one).
        homes = {
            pool.worker_for(f"paper:{seed}:4") for seed in range(40)
        }
        assert len(homes) > 1

    def test_small_group_stays_on_home_worker(self, many_cpus):
        pool = SolverPool(
            4, split_threshold=16, registry=MetricsRegistry(enabled=True)
        )
        queries = all_single_queries()
        plan = pool._plan(queries)
        assert len(plan) == 1
        assert plan[0][0] == pool.worker_for(queries[0].gallery.label())
        assert plan[0][1] == queries

    def test_large_group_splits_stride_wise(self, many_cpus):
        pool = SolverPool(
            4, split_threshold=1, registry=MetricsRegistry(enabled=True)
        )
        queries = all_single_queries()
        plan = pool._plan(queries)
        assert len(plan) == 4
        slots = [slot for slot, _ in plan]
        assert len(set(slots)) == 4
        assert slots[0] == pool.worker_for(queries[0].gallery.label())
        # Strided chunks cover every query exactly once.
        covered = [query for _, chunk in plan for query in chunk]
        assert sorted(q.key for q in covered) == sorted(
            q.key for q in queries
        )

    def test_solve_merges_split_results_in_query_order(self, many_cpus):
        async def scenario():
            pool = SolverPool(
                2,
                split_threshold=1,
                registry=MetricsRegistry(enabled=True),
            )
            try:
                queries = all_single_queries()
                whole = SolverPool(
                    1, registry=MetricsRegistry(enabled=True)
                )
                try:
                    split_payloads = await pool.solve(queries)
                    whole_payloads = await whole.solve(queries)
                finally:
                    whole.shutdown()
                assert [p["use_case"] for p in split_payloads] == [
                    [name] for name in names()
                ]
                for split, reference in zip(split_payloads, whole_payloads):
                    assert split["use_case"] == reference["use_case"]
                    for app, period in reference["periods"].items():
                        assert split["periods"][app] == pytest.approx(
                            period, rel=1e-9
                        )
                snapshot = pool.local_snapshot()
                assert [
                    entry["batches"]
                    for entry in snapshot["per_worker"]
                ] == [1, 1]
            finally:
                pool.shutdown()

        asyncio.run(scenario())

    def test_crashed_worker_respawns_and_redrives(self):
        async def scenario():
            pool = SolverPool(1, registry=MetricsRegistry(enabled=True))
            try:
                queries = all_single_queries()
                first = await pool.solve(queries)
                # Kill the worker process under the pool.
                with contextlib.suppress(Exception):
                    pool._executors[0].submit(os._exit, 1).result()
                # The next solve sees BrokenProcessPool, respawns the
                # slot and re-drives — the caller just gets answers.
                second = await pool.solve(queries)
                snapshot = pool.local_snapshot()
                assert snapshot["respawns"] >= 1
                assert snapshot["redrives"] >= 1
                for a, b in zip(first, second):
                    assert a["use_case"] == b["use_case"]
                    for app, period in a["periods"].items():
                        assert b["periods"][app] == pytest.approx(
                            period, rel=1e-9
                        )
            finally:
                pool.shutdown()

        asyncio.run(scenario())

    def test_invalidate_reaches_slots_spawned_later(self, many_cpus):
        """``invalidate`` can only await slots that already exist; a
        slot spawned lazily afterwards (or respawned after a crash)
        must replay the invalidation history before its first solve,
        so no slot can ever serve pre-invalidate warm state."""

        async def scenario():
            from repro.runtime.service import GallerySpec

            pool = SolverPool(
                2,
                split_threshold=1,
                registry=MetricsRegistry(enabled=True),
            )
            try:
                spec = GallerySpec(
                    kind="paper", seed=2007, application_count=4
                )
                # Invalidate before ANY slot exists: there is nothing
                # to await, only history to record.
                assert await pool.invalidate(spec) == 0
                # The first solve lazily spawns the home slot — the
                # replay must already be queued ahead of the solve.
                await pool.solve(all_single_queries()[:1])
                snapshot = await pool.snapshot()
                spawned = [
                    entry
                    for entry in snapshot["per_worker"]
                    if entry["spawned"]
                ]
                assert len(spawned) == 1
                assert spawned[0]["replayed_invalidations"] == [
                    "paper:2007:4"
                ]
                local = pool.local_snapshot()
                assert local["invalidation_replays"] == 1
                assert local["invalidated_galleries"] == ["paper:2007:4"]
                # Crash the slot: the respawned process must replay the
                # history too, not just freshly spawned ones.
                slot = spawned[0]["worker"]
                with contextlib.suppress(Exception):
                    pool._executors[slot].submit(os._exit, 1).result()
                await pool.solve(all_single_queries()[:1])
                snapshot = await pool.snapshot()
                respawned = next(
                    entry
                    for entry in snapshot["per_worker"]
                    if entry["worker"] == slot
                )
                assert respawned["replayed_invalidations"] == [
                    "paper:2007:4"
                ]
                assert pool.local_snapshot()["invalidation_replays"] == 2
            finally:
                pool.shutdown()

        asyncio.run(scenario())

    def test_shutdown_joins_all_worker_processes(self):
        async def scenario():
            pool = SolverPool(1, registry=MetricsRegistry(enabled=True))
            await pool.solve(all_single_queries()[:1])
            assert multiprocessing.active_children()
            pool.shutdown(wait=True)
            assert multiprocessing.active_children() == []
            with pytest.raises(ServiceError, match="closed"):
                await pool.solve(all_single_queries()[:1])

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# The server in worker mode
# ----------------------------------------------------------------------
class TestWorkerModeServer:
    def test_rejects_negative_workers(self):
        with pytest.raises(ServiceError, match="solver_workers"):
            EstimationServer(solver_workers=-1)

    def test_parity_with_thread_mode(self, many_cpus):
        """The exhaustive single-app query set answers identically in
        worker mode (split across processes) and thread mode."""

        async def ask_all(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                return await asyncio.gather(
                    *[
                        client.estimate([name], gallery=GALLERY)
                        for name in names()
                    ]
                )
            finally:
                await client.aclose()

        threaded = serve(ask_all, batch_window=0.05)
        pooled = serve(
            ask_all,
            batch_window=0.05,
            solver_workers=2,
            split_threshold=1,
        )
        for a, b in zip(threaded, pooled):
            assert a["use_case"] == b["use_case"]
            for app, period in a["periods"].items():
                assert b["periods"][app] == pytest.approx(period, rel=1e-9)

    def test_stats_reports_worker_view(self, many_cpus):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                await client.estimate([names()[0]], gallery=GALLERY)
                return await client.stats()
            finally:
                await client.aclose()

        stats = serve(scenario, batch_window=0.0, solver_workers=2)
        view = stats["workers"]
        assert view["workers"] == 2
        assert view["respawns"] == 0
        spawned = [
            entry for entry in view["per_worker"] if entry["spawned"]
        ]
        assert len(spawned) == 1  # affinity: one gallery, one worker
        assert spawned[0]["batches"] == 1
        # The deep view carries the worker's own engine-pool counters.
        assert spawned[0]["galleries"] == ["paper:2007:4"]

    def test_graceful_shutdown_drains_pool_to_real_answers(
        self, many_cpus
    ):
        """Shutdown with queries in flight: every future drains to a
        real answer and every worker process is joined."""

        async def scenario():
            server = EstimationServer(
                batch_window=0.2, solver_workers=2, split_threshold=1
            )
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            control = await ServiceClient.connect(host, port)
            try:
                pending = [
                    asyncio.ensure_future(
                        client.estimate([name], gallery=GALLERY)
                    )
                    for name in names()
                ]
                await asyncio.sleep(0.05)  # let them enter the queue
                await control.shutdown()
                results = await asyncio.gather(*pending)
            finally:
                await client.aclose()
                await control.aclose()
            await server.aclose()
            return results

        results = asyncio.run(scenario())
        assert len(results) == len(names())
        for result in results:
            assert result["periods"]
        assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Concurrency fixes: disconnect reaping and the invalidation fence
# ----------------------------------------------------------------------
class TestDisconnectReaping:
    def test_disconnected_clients_queries_are_dropped_eagerly(self):
        """A client that vanishes mid-batch must not occupy
        ``max_pending``: its entries are reaped on disconnect, so the
        next client's queries are admitted, not shed."""

        async def scenario(server, host, port):
            # A ghost client files one query and vanishes before the
            # (long) batch window fires.
            _, writer = await asyncio.open_connection(host, port)
            writer.write(
                encode_message(
                    {
                        "id": 1,
                        "op": "estimate",
                        "gallery": GALLERY,
                        "use_case": [names()[0]],
                    }
                )
            )
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.1)  # server observes the disconnect
            # With max_pending=2, both live queries only fit if the
            # ghost's entry was reaped.
            client = await ServiceClient.connect(host, port)
            try:
                results = await asyncio.gather(
                    client.estimate([names()[1]], gallery=GALLERY),
                    client.estimate([names()[2]], gallery=GALLERY),
                )
            finally:
                await client.aclose()
            return results, server.snapshot()

        results, stats = serve(
            scenario, batch_window=0.5, max_pending=2
        )
        assert all(result["periods"] for result in results)
        assert stats["disconnects"] == 1
        assert stats["shed"] == 0
        # The reaped query was never solved on the ghost's behalf.
        assert stats["solved_queries"] == 2

    def test_live_connection_is_not_reaped(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            other = await ServiceClient.connect(host, port)
            try:
                pending = asyncio.ensure_future(
                    client.estimate([names()[0]], gallery=GALLERY)
                )
                await asyncio.sleep(0.05)
                await other.aclose()  # a *different* client leaves
                result = await pending
            finally:
                await client.aclose()
            return result, server.snapshot()

        result, stats = serve(scenario, batch_window=0.2)
        assert result["periods"]
        assert stats["disconnects"] == 0


class TestInvalidationFence:
    def test_invalidate_during_solve_keeps_stale_result_out_of_cache(
        self,
    ):
        """A solve dispatched before ``invalidate`` may finish after
        it; its results answer their waiters but must not re-populate
        the cache for the invalidated gallery."""
        solving = threading.Event()
        release = threading.Event()

        async def scenario(server, host, port):
            inner = server._solve_group

            def gated(queries, trace_ids=()):
                solving.set()
                assert release.wait(timeout=10)
                return inner(queries, trace_ids)

            server._solve_group = gated
            client = await ServiceClient.connect(host, port)
            control = await ServiceClient.connect(host, port)
            try:
                pending = asyncio.ensure_future(
                    client.estimate([names()[0]], gallery=GALLERY)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, solving.wait
                )
                # The solve is in flight: invalidate the gallery, then
                # let the stale solve finish.  The epoch bump happens
                # synchronously on the loop before the invalidation
                # touches the (blocked) solver thread, so wait for it
                # rather than for the full response.
                invalidated = asyncio.ensure_future(
                    control.invalidate(GALLERY)
                )
                while not server._gallery_versions.get("paper:2007:4"):
                    await asyncio.sleep(0.01)
                release.set()
                await invalidated
                stale = await pending
                # Same question again: a cache hit here would be the
                # stale answer — the fence forces a fresh solve.
                again = await client.estimate(
                    [names()[0]], gallery=GALLERY
                )
            finally:
                await client.aclose()
                await control.aclose()
            return stale, again, server.snapshot()

        stale, again, stats = serve(scenario, batch_window=0.0)
        assert stale["periods"] == again["periods"]
        assert not again["cached"]
        assert stats["cache"]["hits"] == 0
        assert stats["solved_queries"] == 2

    def test_invalidate_after_solve_does_not_fence_the_cache(self):
        """The epoch only fences solves that were actually in flight:
        a query after the invalidation caches normally."""

        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                await client.invalidate(GALLERY)
                await client.estimate([names()[0]], gallery=GALLERY)
                result = await client.estimate(
                    [names()[0]], gallery=GALLERY
                )
            finally:
                await client.aclose()
            return result, server.snapshot()

        result, stats = serve(scenario, batch_window=0.0)
        assert result["cached"]
        assert stats["cache"]["hits"] == 1
