"""Stochastic execution-time extension tests."""

from __future__ import annotations

import random

import pytest

from repro.core.distributions import (
    DiscreteTime,
    DistributionTimeModel,
    FixedTime,
    NormalTime,
    UniformTime,
)
from repro.exceptions import AnalysisError


class TestFixedTime:
    def test_reduces_to_paper_mu(self):
        dist = FixedTime(100)
        assert dist.mean() == 100
        # mu = E[X^2]/(2E[X]) = tau/2 for constant tau (Eq. 2).
        assert dist.mean_residual() == pytest.approx(50.0)

    def test_sample_is_constant(self):
        dist = FixedTime(42)
        rng = random.Random(0)
        assert all(dist.sample(rng) == 42 for _ in range(5))

    def test_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            FixedTime(0)


class TestUniformTime:
    def test_moments(self):
        dist = UniformTime(60, 140)
        assert dist.mean() == pytest.approx(100.0)
        # Var = 80^2/12; E[X^2] = Var + 100^2.
        assert dist.second_moment() == pytest.approx(
            80 * 80 / 12 + 10_000
        )

    def test_mean_residual_exceeds_half_mean(self):
        # Inspection paradox: variability raises the residual above
        # mean/2.
        dist = UniformTime(60, 140)
        assert dist.mean_residual() > dist.mean() / 2

    def test_sample_range(self):
        dist = UniformTime(10, 20)
        rng = random.Random(1)
        for _ in range(100):
            assert 10 <= dist.sample(rng) <= 20

    def test_empirical_moments_match(self):
        dist = UniformTime(50, 150)
        rng = random.Random(7)
        samples = [dist.sample(rng) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        second = sum(s * s for s in samples) / len(samples)
        assert mean == pytest.approx(dist.mean(), rel=0.02)
        assert second == pytest.approx(dist.second_moment(), rel=0.03)

    def test_rejects_bad_range(self):
        with pytest.raises(AnalysisError):
            UniformTime(20, 10)
        with pytest.raises(AnalysisError):
            UniformTime(0, 10)


class TestNormalTime:
    def test_moments(self):
        dist = NormalTime(100, 10)
        assert dist.mean() == 100
        assert dist.second_moment() == pytest.approx(100 * 100 + 100)

    def test_rejects_heavy_truncation(self):
        with pytest.raises(AnalysisError):
            NormalTime(10, 10)

    def test_samples_positive(self):
        dist = NormalTime(100, 20)
        rng = random.Random(3)
        assert all(dist.sample(rng) > 0 for _ in range(200))


class TestDiscreteTime:
    def test_moments(self):
        # I/P/B-frame style: 120 (10%), 80 (30%), 40 (60%).
        dist = DiscreteTime.of([(120, 0.1), (80, 0.3), (40, 0.6)])
        expected_mean = 120 * 0.1 + 80 * 0.3 + 40 * 0.6
        assert dist.mean() == pytest.approx(expected_mean)
        assert dist.mean_residual() == pytest.approx(
            (120**2 * 0.1 + 80**2 * 0.3 + 40**2 * 0.6)
            / (2 * expected_mean)
        )

    def test_sampling_respects_support(self):
        dist = DiscreteTime.of([(10, 1), (20, 1)])
        rng = random.Random(5)
        assert {dist.sample(rng) for _ in range(100)} == {10, 20}

    def test_validation(self):
        with pytest.raises(AnalysisError):
            DiscreteTime.of([])
        with pytest.raises(AnalysisError):
            DiscreteTime.of([(0, 1)])
        with pytest.raises(AnalysisError):
            DiscreteTime(values=(1.0,), weights=(1.0, 2.0))


class TestDistributionTimeModel:
    def test_assigned_actor_uses_distribution(self):
        model = DistributionTimeModel({("A", "x"): FixedTime(33)})
        rng = random.Random(0)
        assert model.sample("A", "x", 100, rng) == 33

    def test_unassigned_actor_uses_nominal(self):
        model = DistributionTimeModel({})
        rng = random.Random(0)
        assert model.sample("A", "x", 100, rng) == 100

    def test_mu_overrides(self):
        model = DistributionTimeModel(
            {("A", "x"): UniformTime(60, 140)}
        )
        mus = model.mus()
        assert mus[("A", "x")] == pytest.approx(
            UniformTime(60, 140).mean_residual()
        )
        assert model.mean_times()[("A", "x")] == pytest.approx(100.0)
