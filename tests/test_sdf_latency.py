"""Latency analysis tests."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError
from repro.sdf.builder import GraphBuilder
from repro.sdf.latency import (
    actor_start_times,
    iteration_makespan,
    source_to_sink_latency,
)


class TestIterationMakespan:
    def test_paper_graph_cold_start(self, app_a):
        # One iteration of the sequential ring: 100 + 2*50 + 100 = 300.
        assert iteration_makespan(app_a) == pytest.approx(300.0)

    def test_multiple_iterations_respect_period(self, app_a):
        # Steady state adds one period (300) per extra iteration.
        three = iteration_makespan(app_a, iterations=3)
        one = iteration_makespan(app_a, iterations=1)
        assert three - one == pytest.approx(2 * 300.0)

    def test_pipelined_graph_makespan_below_sum(self):
        graph = (
            GraphBuilder("pipe")
            .actor("a", 10)
            .actor("b", 10)
            .cycle("a", "b", initial_tokens_on_back_edge=2)
            .build()
        )
        # a and b overlap: two iterations in 30, not 40.
        assert iteration_makespan(graph, iterations=2) == pytest.approx(
            30.0
        )

    def test_invalid_iterations(self, app_a):
        with pytest.raises(AnalysisError):
            iteration_makespan(app_a, iterations=0)


class TestSourceToSinkLatency:
    def test_chain_latency(self, app_a):
        # a0 starts an iteration; a2 ends it 300 later (sequential ring).
        latency = source_to_sink_latency(app_a, "a0", "a2")
        assert latency == pytest.approx(300.0)

    def test_same_actor_latency_is_busy_time(self, app_a):
        # a0 to itself: its single firing of 100 per iteration.
        latency = source_to_sink_latency(app_a, "a0", "a0")
        assert latency == pytest.approx(100.0)

    def test_unknown_actor_rejected(self, app_a):
        with pytest.raises(AnalysisError):
            source_to_sink_latency(app_a, "a0", "ghost")

    def test_invalid_window_rejected(self, app_a):
        with pytest.raises(AnalysisError):
            source_to_sink_latency(
                app_a, "a0", "a2", measure_iterations=0
            )


class TestActorStartTimes:
    def test_counts_match_repetition_vector(self, app_a):
        starts = actor_start_times(app_a, iterations=2)
        assert len(starts["a0"]) == 2
        assert len(starts["a1"]) == 4
        assert len(starts["a2"]) == 2

    def test_paper_schedule_structure(self, app_a):
        starts = actor_start_times(app_a, iterations=1)
        assert starts["a0"] == [0.0]
        assert starts["a1"] == [100.0, 150.0]
        assert starts["a2"] == [200.0]
