"""m-th order approximation tests (Eq. 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximation import (
    OrderMWaitingModel,
    waiting_time_order_m,
)
from repro.core.exact import waiting_time_exact
from repro.exceptions import AnalysisError
from tests.test_core_exact import profile


class TestSecondOrder:
    def test_matches_eq5_expansion(self):
        actors = [
            profile(100, 0.3, "a"),
            profile(50, 0.2, "b"),
            profile(80, 0.5, "c"),
        ]
        expected = sum(
            x.mu
            * x.probability
            * (
                1
                + 0.5
                * sum(
                    y.probability for y in actors if y is not x
                )
            )
            for x in actors
        )
        assert waiting_time_order_m(actors, 2) == pytest.approx(expected)

    def test_two_actors_second_order_is_exact(self):
        # With two actors the series stops at e_1, so m=2 is exact.
        actors = [profile(100, 0.3, "a"), profile(50, 0.6, "b")]
        assert waiting_time_order_m(actors, 2) == pytest.approx(
            waiting_time_exact(actors)
        )

    def test_second_order_overestimates_for_three_plus(self):
        # Eq. 5 drops the negative e_2 correction, so it is conservative
        # (the paper: "the second order estimate is always more
        # conservative than the fourth order estimate").
        actors = [
            profile(100, 0.3, "a"),
            profile(50, 0.4, "b"),
            profile(80, 0.5, "c"),
            profile(20, 0.25, "d"),
        ]
        second = waiting_time_order_m(actors, 2)
        fourth = waiting_time_order_m(actors, 4)
        exact = waiting_time_exact(actors)
        assert second >= fourth - 1e-12
        assert second >= exact - 1e-12


class TestConvergenceToExact:
    @given(
        st.lists(
            st.tuples(
                st.floats(1.0, 150.0, allow_nan=False),
                st.floats(0.01, 0.95, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_order_at_least_n_equals_exact(self, specs):
        actors = [
            profile(tau, p, f"x{i}") for i, (tau, p) in enumerate(specs)
        ]
        exact = waiting_time_exact(actors)
        for order in (len(actors), len(actors) + 1, len(actors) + 3):
            assert waiting_time_order_m(actors, order) == pytest.approx(
                exact, rel=1e-9, abs=1e-9
            )

    @given(
        st.lists(
            st.tuples(
                st.floats(1.0, 150.0, allow_nan=False),
                st.floats(0.01, 0.6, allow_nan=False),
            ),
            min_size=3,
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_even_orders_sandwich_exact(self, specs):
        """Truncating after a positive term overshoots, after a negative
        term undershoots: order 2 >= exact, and order 3 <= exact."""
        actors = [
            profile(tau, p, f"x{i}") for i, (tau, p) in enumerate(specs)
        ]
        exact = waiting_time_exact(actors)
        second = waiting_time_order_m(actors, 2)
        third = waiting_time_order_m(actors, 3)
        assert second >= exact - 1e-9
        assert third <= exact + 1e-9


class TestInterface:
    def test_order_one_ignores_others_probabilities(self):
        actors = [profile(100, 0.3, "a"), profile(50, 0.6, "b")]
        # Order 1 keeps only sum of mu_i P_i.
        expected = sum(x.mu * x.probability for x in actors)
        assert waiting_time_order_m(actors, 1) == pytest.approx(expected)

    def test_invalid_order_rejected(self):
        with pytest.raises(AnalysisError):
            waiting_time_order_m([], 0)
        with pytest.raises(AnalysisError):
            OrderMWaitingModel(0)

    def test_model_names(self):
        assert OrderMWaitingModel(2).name == "order-2"
        assert OrderMWaitingModel(4).complexity == "O(n^4)"

    def test_empty_set(self):
        assert waiting_time_order_m([], 2) == 0.0
