"""Property-based numpy-vs-python backend parity.

The vectorized pipeline must never drift from the scalar reference:
for *any* gallery, mapping, waiting model and analysis method, both
backends have to produce the same periods, waiting times and response
times to <= 1e-9 relative (in practice they agree to ~1e-15; the looser
bound is the documented contract).  Hypothesis drives random galleries
and use-case batches through both flavours; dedicated tests pin the
corner cases the strategies reach rarely (stacked mappings,
same-application exclusion, the state-space analysis method) and the
admission controller's warm path, which must stay *bit-identical*
across backends because the runtime determinism suite byte-compares its
decision logs.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.admission.controller import AdmissionController
from repro.exceptions import AnalysisError
from repro.analysis_engine import build_engines
from repro.backend import get_backend, numpy_available
from repro.core.estimator import ProbabilisticEstimator
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.platform.mapping import index_mapping, modulo_mapping
from repro.platform.platform import Platform
from repro.platform.usecase import UseCase, all_use_cases
from repro.sdf.analysis import AnalysisMethod

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

TOLERANCE = 1e-9

MODELS = (
    "exact",
    "second_order",
    "fourth_order",
    "order:1",
    "composability",
    "composability_incremental",
    "worst_case",
    "tdma",
)

_SMALL = GeneratorConfig(actor_count_range=(3, 5))


def _gallery(seeds):
    return [
        random_sdf_graph(f"G{index}", seed=seed, config=_SMALL)
        for index, seed in enumerate(seeds)
    ]


def _assert_parity(scalar_results, vector_results):
    for scalar, vector in zip(scalar_results, vector_results):
        assert scalar.use_case == vector.use_case
        assert scalar.model_name == vector.model_name
        assert scalar.iterations_used == vector.iterations_used
        for app, period in scalar.periods.items():
            assert vector.periods[app] == pytest.approx(
                period, rel=TOLERANCE
            ), (scalar.use_case, app)
        for key, waiting in scalar.waiting_times.items():
            assert (
                abs(vector.waiting_times[key] - waiting)
                <= TOLERANCE * max(1.0, abs(waiting))
            ), (scalar.use_case, key)
        for key, response in scalar.response_times.items():
            assert vector.response_times[key] == pytest.approx(
                response, rel=TOLERANCE
            ), (scalar.use_case, key)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seeds=st.lists(
        st.integers(0, 10_000), min_size=2, max_size=4, unique=True
    ),
    model=st.sampled_from(MODELS),
)
def test_every_waiting_model_agrees_across_backends(seeds, model):
    """Random gallery, exhaustive use-cases, every waiting model.

    Parity covers the error surface too: a gallery outside a model's
    domain (e.g. an actor with blocking probability 1, which Eq. 8's
    incremental composition cannot decompose) must be refused by both
    backends with the same error, not answered by one of them.
    """
    graphs = _gallery(seeds)
    use_cases = all_use_cases([g.name for g in graphs])
    try:
        scalar = ProbabilisticEstimator(
            graphs, waiting_model=model, backend="python"
        ).estimate_many(use_cases)
    except AnalysisError as scalar_error:
        with pytest.raises(AnalysisError) as vector_error:
            ProbabilisticEstimator(
                graphs, waiting_model=model, backend="numpy"
            ).estimate_many(use_cases)
        assert str(vector_error.value) == str(scalar_error)
        return
    vector = ProbabilisticEstimator(
        graphs, waiting_model=model, backend="numpy"
    ).estimate_many(use_cases)
    _assert_parity(scalar, vector)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seeds=st.lists(
        st.integers(0, 10_000), min_size=2, max_size=3, unique=True
    ),
    method=st.sampled_from(
        [AnalysisMethod.MCR, AnalysisMethod.STATE_SPACE]
    ),
)
def test_both_analysis_methods_agree_across_backends(seeds, method):
    """MCR and the state-space engine, python vs numpy."""
    graphs = _gallery(seeds)
    use_cases = all_use_cases([g.name for g in graphs])
    scalar = ProbabilisticEstimator(
        graphs, analysis_method=method, backend="python"
    ).estimate_many(use_cases)
    vector = ProbabilisticEstimator(
        graphs, analysis_method=method, backend="numpy"
    ).estimate_many(use_cases)
    _assert_parity(scalar, vector)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seeds=st.lists(
        st.integers(0, 10_000), min_size=2, max_size=3, unique=True
    ),
    width=st.integers(2, 3),
    include_same_application=st.booleans(),
    model=st.sampled_from(
        ("second_order", "exact", "composability", "worst_case")
    ),
)
def test_stacked_mapping_parity(
    seeds, width, include_same_application, model
):
    """Narrow platforms stack several actors per node — including
    several actors of the *same* application, which exercises the
    same-application exclusion masks of the batched kernels."""
    graphs = _gallery(seeds)
    mapping = modulo_mapping(graphs, Platform.homogeneous(width))
    use_cases = all_use_cases([g.name for g in graphs])
    scalar = ProbabilisticEstimator(
        graphs,
        mapping=mapping,
        waiting_model=model,
        include_same_application=include_same_application,
        backend="python",
    ).estimate_many(use_cases)
    vector = ProbabilisticEstimator(
        graphs,
        mapping=mapping,
        waiting_model=model,
        include_same_application=include_same_application,
        backend="numpy",
    ).estimate_many(use_cases)
    _assert_parity(scalar, vector)


def _run_admission_sequence(graphs, mapping):
    """Admit everything, withdraw one, re-admit — all on warm engines."""
    controller = AdmissionController(
        mapping,
        engines=build_engines(graphs),
    )
    quotes = []
    for graph in graphs:
        decision = controller.request_admission(graph)
        quotes.append(
            (
                graph.name,
                decision.admitted,
                dict(decision.estimated_periods),
            )
        )
    controller.withdraw(graphs[0].name)
    decision = controller.request_admission(graphs[0])
    quotes.append(
        (
            graphs[0].name,
            decision.admitted,
            dict(decision.estimated_periods),
        )
    )
    return quotes


def test_admission_warm_path_is_bit_identical_across_backends(
    monkeypatch,
):
    """The controller's warm O(1) path never touches the array layer.

    Its quotes must therefore be *bit-identical* whichever backend the
    environment selects — the property the runtime byte-determinism
    suite builds on.
    """
    graphs = _gallery([11, 22, 33])
    mapping = index_mapping(graphs)
    monkeypatch.setenv("REPRO_BACKEND", "python")
    scalar_quotes = _run_admission_sequence(graphs, mapping)
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    vector_quotes = _run_admission_sequence(graphs, mapping)
    assert scalar_quotes == vector_quotes


def test_explicit_backend_overrides_environment(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert get_backend(None).name == "python"
    assert get_backend("numpy").name == "numpy"
    graphs = _gallery([5, 6])
    estimator = ProbabilisticEstimator(graphs, backend="numpy")
    assert estimator.backend.vectorized
    # And with no override the environment decides.
    assert ProbabilisticEstimator(graphs).backend.name == "python"


def test_single_estimate_matches_batched_single(monkeypatch):
    """estimate() and estimate_many([uc]) agree on both backends."""
    graphs = _gallery([3, 4, 9])
    use_case = UseCase.of(graphs[0].name, graphs[2].name)
    for backend in ("python", "numpy"):
        estimator = ProbabilisticEstimator(graphs, backend=backend)
        single = estimator.estimate(use_case)
        batched = estimator.estimate_many([use_case])[0]
        assert single.periods == batched.periods
        assert single.waiting_times == batched.waiting_times
