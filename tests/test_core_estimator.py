"""Fig.-4 estimator tests beyond the golden paper example."""

from __future__ import annotations

import pytest

from repro.core.estimator import (
    ProbabilisticEstimator,
    estimate_use_case,
)
from repro.exceptions import AnalysisError
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.usecase import UseCase
from repro.sdf.analysis import period


class TestBasics:
    def test_isolated_use_case_equals_isolation_period(self, two_apps):
        estimator = ProbabilisticEstimator(list(two_apps))
        result = estimator.estimate(UseCase.of("A"))
        assert result.periods["A"] == pytest.approx(period(two_apps[0]))
        assert all(w == 0 for w in result.waiting_times.values())

    def test_estimate_only_covers_active_apps(self, two_apps):
        estimator = ProbabilisticEstimator(list(two_apps))
        result = estimator.estimate(UseCase.of("A"))
        assert set(result.periods) == {"A"}

    def test_waiting_grows_with_contention(self, two_apps):
        estimator = ProbabilisticEstimator(list(two_apps))
        alone = estimator.estimate(UseCase.of("A")).periods["A"]
        together = estimator.estimate(UseCase.of("A", "B")).periods["A"]
        assert together > alone

    def test_normalized_period(self, two_apps):
        result = estimate_use_case(list(two_apps))
        assert result.normalized_period_of("A") == pytest.approx(
            (1075 / 3) / 300
        )

    def test_throughput_inverse(self, two_apps):
        result = estimate_use_case(list(two_apps))
        assert result.throughput_of("A") == pytest.approx(
            1.0 / result.periods["A"]
        )

    def test_unknown_app_raises(self, two_apps):
        result = estimate_use_case(list(two_apps))
        with pytest.raises(AnalysisError):
            result.period_of("Z")

    def test_model_accepts_instances(self, two_apps):
        from repro.core.exact import ExactWaitingModel

        estimator = ProbabilisticEstimator(
            list(two_apps), waiting_model=ExactWaitingModel()
        )
        assert estimator.estimate().model_name == "exact"

    def test_duplicate_names_rejected(self, app_a):
        with pytest.raises(AnalysisError):
            ProbabilisticEstimator([app_a, app_a.renamed("A")])

    def test_empty_graphs_rejected(self):
        with pytest.raises(AnalysisError):
            ProbabilisticEstimator([])


class TestSameApplicationContention:
    def _stacked_mapping(self, graphs):
        """All actors of all apps on one processor."""
        platform = Platform.homogeneous(1)
        bindings = {
            g.name: {a: "proc0" for a in g.actor_names} for g in graphs
        }
        return Mapping(platform, bindings)

    def test_same_app_actors_counted_by_default(self, app_a):
        mapping = self._stacked_mapping([app_a])
        estimator = ProbabilisticEstimator([app_a], mapping=mapping)
        result = estimator.estimate()
        # a0's waiting includes a1 and a2 of its own application.
        assert result.waiting_times[("A", "a0")] > 0

    def test_same_app_exclusion_flag(self, app_a):
        mapping = self._stacked_mapping([app_a])
        estimator = ProbabilisticEstimator(
            [app_a], mapping=mapping, include_same_application=False
        )
        result = estimator.estimate()
        assert all(w == 0 for w in result.waiting_times.values())
        assert result.periods["A"] == pytest.approx(300.0)


class TestFixedPointIterations:
    def test_multiple_iterations_reduce_probabilities(self, two_apps):
        estimator = ProbabilisticEstimator(list(two_apps))
        single = estimator.estimate(iterations=1)
        refined = estimator.estimate(iterations=10)
        # Second pass derives P from the *contended* (longer) periods,
        # so estimated contention and thus the period shrink.
        assert refined.periods["A"] <= single.periods["A"] + 1e-9
        assert refined.iterations_used >= 2

    def test_converges(self, two_apps):
        estimator = ProbabilisticEstimator(list(two_apps))
        r10 = estimator.estimate(iterations=10)
        r11 = estimator.estimate(iterations=11)
        assert r10.periods["A"] == pytest.approx(
            r11.periods["A"], rel=1e-4
        )

    def test_invalid_iterations(self, two_apps):
        estimator = ProbabilisticEstimator(list(two_apps))
        with pytest.raises(AnalysisError):
            estimator.estimate(iterations=0)


class TestAllModelsRunEndToEnd:
    @pytest.mark.parametrize(
        "model",
        [
            "exact",
            "second_order",
            "fourth_order",
            "order:3",
            "composability",
            "composability_incremental",
            "worst_case",
            "tdma",
        ],
    )
    def test_model(self, two_apps, model):
        result = estimate_use_case(list(two_apps), waiting_model=model)
        for name in ("A", "B"):
            assert result.periods[name] >= 300.0 - 1e-9

    def test_worst_case_dominates_probabilistic(self, two_apps):
        worst = estimate_use_case(list(two_apps), waiting_model="worst_case")
        second = estimate_use_case(
            list(two_apps), waiting_model="second_order"
        )
        for name in ("A", "B"):
            assert worst.periods[name] > second.periods[name]
