"""Golden tests: every number printed in the paper's Section 3.

The worked example of Figure 2 / Section 3.1 gives exact intermediate
values — blocking probabilities, average blocking times, waiting times,
response times, and the resulting period estimate — all reproduced here
verbatim.
"""

from __future__ import annotations

import pytest

from repro.core.blocking import build_profiles
from repro.core.estimator import ProbabilisticEstimator
from repro.sdf.analysis import period
from repro.simulation.engine import SimulationConfig, simulate


class TestIsolationNumbers:
    def test_periods_are_300(self, two_apps):
        # "Per(A) = 300 in Figure 2 ... (Note that actor a1 has to
        # execute twice.)"
        for graph in two_apps:
            assert period(graph) == pytest.approx(300.0)

    def test_repetition_vectors(self, two_apps):
        from repro.sdf.repetition import repetition_vector

        a, b = two_apps
        assert repetition_vector(a) == {"a0": 1, "a1": 2, "a2": 1}
        assert repetition_vector(b) == {"b0": 2, "b1": 1, "b2": 1}


class TestBlockingNumbers:
    def test_all_probabilities_are_one_third(self, two_apps):
        profiles = build_profiles(list(two_apps))
        for profile in profiles.values():
            assert profile.probability == pytest.approx(1 / 3)

    def test_average_blocking_times(self, two_apps):
        profiles = build_profiles(list(two_apps))
        assert [profiles[("A", f"a{i}")].mu for i in range(3)] == [
            50,
            25,
            50,
        ]
        assert [profiles[("B", f"b{i}")].mu for i in range(3)] == [
            25,
            50,
            50,
        ]


class TestWaitingAndResponseTimes:
    def test_introduction_example(self, two_apps):
        # "the average time actor b0 has to wait is ... 50/3 ~= 17 time
        # units.  The response time of b0 will therefore be ~= 67."
        estimator = ProbabilisticEstimator(
            list(two_apps), waiting_model="exact"
        )
        result = estimator.estimate()
        assert result.waiting_times[("B", "b0")] == pytest.approx(50 / 3)
        assert result.response_times[("B", "b0")] == pytest.approx(
            50 + 50 / 3
        )

    def test_waiting_vectors(self, two_apps):
        # twait[b0 b1 b2] = [50/3 25/3 50/3],
        # twait[a0 a1 a2] = [25/3 50/3 50/3].
        estimator = ProbabilisticEstimator(
            list(two_apps), waiting_model="exact"
        )
        result = estimator.estimate()
        assert result.waiting_times[("B", "b0")] == pytest.approx(50 / 3)
        assert result.waiting_times[("B", "b1")] == pytest.approx(25 / 3)
        assert result.waiting_times[("B", "b2")] == pytest.approx(50 / 3)
        assert result.waiting_times[("A", "a0")] == pytest.approx(25 / 3)
        assert result.waiting_times[("A", "a1")] == pytest.approx(50 / 3)
        assert result.waiting_times[("A", "a2")] == pytest.approx(50 / 3)

    def test_response_times_match_figure3(self, two_apps):
        # Figure 3 annotates the response times {108, 67, 117} for A and
        # {67, 108, 117} for B (rounded; exact: 108.33, 66.67, 116.67).
        estimator = ProbabilisticEstimator(
            list(two_apps), waiting_model="exact"
        )
        result = estimator.estimate()
        assert result.response_times[("A", "a0")] == pytest.approx(
            100 + 25 / 3
        )
        assert result.response_times[("A", "a1")] == pytest.approx(
            50 + 50 / 3
        )
        assert result.response_times[("A", "a2")] == pytest.approx(
            100 + 50 / 3
        )
        assert result.response_times[("B", "b0")] == pytest.approx(
            50 + 50 / 3
        )
        assert result.response_times[("B", "b1")] == pytest.approx(
            100 + 25 / 3
        )
        assert result.response_times[("B", "b2")] == pytest.approx(
            100 + 50 / 3
        )


class TestEstimatedPeriod:
    @pytest.mark.parametrize(
        "model",
        ["exact", "second_order", "fourth_order", "composability"],
    )
    def test_new_period_is_359(self, two_apps, model):
        # "The new period of SDFG A and B is computed as 359 time units
        # for both" (exact value 1075/3 = 358.33).
        estimator = ProbabilisticEstimator(
            list(two_apps), waiting_model=model
        )
        result = estimator.estimate()
        assert result.periods["A"] == pytest.approx(1075 / 3)
        assert result.periods["B"] == pytest.approx(1075 / 3)

    def test_simulated_period_is_300(self, two_apps):
        # "the period that these application graphs would achieve in
        # practice is only 300 time units" — the estimate is a
        # conservative ~20% above, which the paper itself points out.
        result = simulate(
            list(two_apps),
            config=SimulationConfig(target_iterations=100),
        )
        assert result.period_of("A") == pytest.approx(300.0)
        assert result.period_of("B") == pytest.approx(300.0)

    def test_estimate_between_simulated_regimes(self, two_apps):
        # The paper notes the estimate (~359) sits between the measured
        # 300 (anticlockwise B) and 400 (clockwise B): "roughly equal to
        # the mean of period obtained in either of the cases".
        estimator = ProbabilisticEstimator(list(two_apps))
        estimate = estimator.estimate().periods["A"]
        assert 300.0 < estimate < 400.0
        assert estimate == pytest.approx((300 + 400) / 2, rel=0.03)
