"""End-to-end integration tests: estimates vs. the simulator.

These check the paper's headline claims on freshly generated systems:
probabilistic estimates land near simulation (the paper reports ~15%
for the maximum-contention case and within ~20% across use-cases) while
the worst-case bound is far above it, and the analysis pipeline is
orders of magnitude cheaper than simulating.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator


@pytest.fixture(scope="module")
def estimators_and_simulation():
    suite = paper_benchmark_suite(application_count=5)
    use_case = UseCase(suite.application_names)
    simulation = Simulator(
        list(suite.graphs),
        mapping=suite.mapping,
        config=SimulationConfig(target_iterations=120),
    ).run()
    estimates = {
        model: ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model=model,
        ).estimate(use_case)
        for model in (
            "exact",
            "second_order",
            "fourth_order",
            "composability",
            "worst_case",
        )
    }
    return suite, simulation, estimates


class TestAccuracyClaims:
    def test_probabilistic_estimates_track_simulation(
        self, estimators_and_simulation
    ):
        suite, simulation, estimates = estimators_and_simulation
        for model in ("exact", "second_order", "fourth_order",
                      "composability"):
            for name in suite.application_names:
                simulated = simulation.period_of(name)
                estimated = estimates[model].periods[name]
                error = abs(estimated - simulated) / simulated
                # Paper: within ~15-20% in the maximum-contention case;
                # allow headroom for the scaled-down setup.
                assert error < 0.40, (model, name, error)

    def test_worst_case_is_far_more_pessimistic(
        self, estimators_and_simulation
    ):
        suite, simulation, estimates = estimators_and_simulation
        # At five concurrent applications the bound is already ~1.7x the
        # simulated period per application (it reaches ~4x at ten apps,
        # the paper's Figure 5 regime).
        for name in suite.application_names:
            simulated = simulation.period_of(name)
            worst = estimates["worst_case"].periods[name]
            second = estimates["second_order"].periods[name]
            assert worst > 1.4 * simulated
            assert worst > 1.25 * second

    def test_second_order_at_least_fourth_order(
        self, estimators_and_simulation
    ):
        # "the second order estimate is always more conservative than
        # the fourth order estimate".
        suite, _, estimates = estimators_and_simulation
        for name in suite.application_names:
            assert (
                estimates["second_order"].periods[name]
                >= estimates["fourth_order"].periods[name] - 1e-9
            )

    def test_composability_close_to_second_order(
        self, estimators_and_simulation
    ):
        # Figure 6: "the second order estimate is almost exactly equal
        # to the composability-based approach".
        suite, _, estimates = estimators_and_simulation
        for name in suite.application_names:
            second = estimates["second_order"].periods[name]
            composed = estimates["composability"].periods[name]
            assert composed == pytest.approx(second, rel=0.05)

    def test_estimates_never_below_isolation(
        self, estimators_and_simulation
    ):
        suite, _, estimates = estimators_and_simulation
        isolation = suite.isolation_periods()
        for model, result in estimates.items():
            for name in suite.application_names:
                assert (
                    result.periods[name] >= isolation[name] - 1e-9
                ), (model, name)


class TestScalability:
    def test_waiting_time_grows_with_active_apps(self):
        suite = paper_benchmark_suite(application_count=6)
        estimator = ProbabilisticEstimator(
            list(suite.graphs), mapping=suite.mapping
        )
        names = suite.application_names
        previous = 0.0
        for k in range(1, 7):
            result = estimator.estimate(UseCase(names[:k]))
            total_waiting = sum(result.waiting_times.values())
            assert total_waiting >= previous - 1e-9
            previous = total_waiting

    def test_estimation_much_faster_than_simulation(self):
        import time

        suite = paper_benchmark_suite(application_count=6)
        use_case = UseCase(suite.application_names)

        started = time.perf_counter()
        Simulator(
            list(suite.graphs),
            mapping=suite.mapping,
            config=SimulationConfig(target_iterations=150),
        ).run()
        simulation_seconds = time.perf_counter() - started

        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="second_order",
        )
        started = time.perf_counter()
        estimator.estimate(use_case)
        estimation_seconds = time.perf_counter() - started
        assert estimation_seconds < simulation_seconds


class TestStochasticExtension:
    @pytest.mark.slow
    def test_estimate_tracks_simulation_with_variable_times(self):
        """The 'varying execution times' extension: replace fixed times
        with uniform distributions; the estimator uses mean residual
        lives for mu and must stay near the (stochastic) simulation."""
        from repro.core.distributions import (
            DistributionTimeModel,
            UniformTime,
        )
        from repro.generation.gallery import paper_two_apps
        from repro.platform.mapping import index_mapping

        a, b = paper_two_apps()
        graphs = [a, b]
        mapping = index_mapping(graphs)
        spread = 0.5  # +/- 50% of nominal
        distributions = {}
        for graph in graphs:
            for actor in graph.actors:
                nominal = actor.execution_time
                distributions[(graph.name, actor.name)] = UniformTime(
                    nominal * (1 - spread), nominal * (1 + spread)
                )
        time_model = DistributionTimeModel(distributions)

        simulation = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=400,
                time_model=time_model,
                seed=13,
            ),
        ).run()

        estimator = ProbabilisticEstimator(
            graphs,
            mapping=mapping,
            waiting_model="exact",
            mus=time_model.mus(),
        )
        estimate = estimator.estimate()
        for name in ("A", "B"):
            simulated = simulation.period_of(name)
            estimated = estimate.periods[name]
            assert abs(estimated - simulated) / simulated < 0.30, (
                name,
                estimated,
                simulated,
            )
