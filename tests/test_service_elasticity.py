"""Tests of fleet elasticity: live resharding, cache replication,
router micro-batching and the churn-safety fixes.

Every scenario runs a real in-process fleet (TCP servers behind a
:class:`~repro.service.router.ShardRouter`) and asserts on the wire:

* ``join`` warms the new shard with exactly the ~1/N key space it now
  owns (planned on a preview ring) before it serves a single query;
  ``leave`` hands a shard's cached answers to each gallery's new owner
  before retiring it;
* every fresh answer replicates to the ring successor, so a shard
  death fails over to a *warm* replica instead of a cold re-solve;
* the router micro-batcher coalesces concurrent same-gallery queries
  into one framed ``estimate_batch`` per shard hop, deduplicated by
  query key, with per-member trace echo;
* the stale-rejoin regression: an ``invalidate`` broadcast that a down
  shard missed is queued by epoch and replayed before the shard may
  rejoin the ring — a resurrected shard can never serve its stale
  cache (this test fails on the pre-fix router);
* the failover-recompute regression: retry candidates are recomputed
  from the live ring per attempt, so a retry never burns its budget on
  a shard a concurrent ``_mark_down`` already declared dead;
* join + leave mid-load: zero lost queries, every answer at <= 1e-9
  parity with the stable-fleet reference.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ServiceConnectionError, ServiceError
from repro.experiments.service_load import LoadConfig, run_load
from repro.runtime.service import GallerySpec
from repro.service.client import ServiceClient
from repro.service.hashring import HashRing
from repro.service.router import ShardRouter
from repro.service.server import EstimationServer

GALLERY = {"kind": "paper", "seed": 2007, "applications": 4}
SPEC = GallerySpec(kind="paper", seed=2007, application_count=4)


def names():
    return SPEC.application_names()


def gallery_payload(seed: int):
    return {"kind": "paper", "seed": seed, "applications": 4}


def fleet(coroutine_factory, shards=2, **router_kwargs):
    """Run one async scenario against a fresh N-shard fleet."""

    async def scenario():
        servers = [
            EstimationServer(batch_window=0.01) for _ in range(shards)
        ]
        addresses = [await server.start() for server in servers]
        router = ShardRouter(
            addresses, **dict({"health_interval": 0.0}, **router_kwargs)
        )
        address = await router.start()
        client = await ServiceClient.connect(*address)
        try:
            return await coroutine_factory(client, router, servers, addresses)
        finally:
            await client.aclose()
            await router.aclose()
            for server in servers:
                await server.aclose()

    return asyncio.run(scenario())


def assert_parity(result, expected):
    for app, period in expected["periods"].items():
        assert result["periods"][app] == pytest.approx(period, rel=1e-9)


# ----------------------------------------------------------------------
# Preview ring
# ----------------------------------------------------------------------
class TestHashRingPreview:
    def test_with_node_only_remaps_keys_to_the_new_node(self):
        ring = HashRing(["a", "b", "c"])
        preview = ring.with_node("d")
        keys = [f"paper:{seed}:4" for seed in range(300)]
        moved = [
            key for key in keys if preview.node_for(key) != ring.node_for(key)
        ]
        assert moved  # the joiner owns a real share of the key space
        assert all(preview.node_for(key) == "d" for key in moved)
        # ~1/N of the keys move, nothing close to a full reshuffle.
        assert len(moved) < len(keys) / 2
        # The live ring is untouched by planning.
        assert "d" not in ring
        assert ring.nodes == ["a", "b", "c"]


# ----------------------------------------------------------------------
# cache_export / cache_import / estimate_batch (server ops)
# ----------------------------------------------------------------------
class TestCacheTransfer:
    def test_export_import_round_trip_is_a_warm_start(self):
        async def scenario():
            source = EstimationServer(batch_window=0.0)
            target = EstimationServer(batch_window=0.0)
            addresses = [await source.start(), await target.start()]
            a = await ServiceClient.connect(*addresses[0])
            b = await ServiceClient.connect(*addresses[1])
            try:
                fresh = await a.estimate([names()[0]], gallery=GALLERY)
                export = await a.cache_export()
                imported = await b.cache_import(export["entries"])
                warm = await b.estimate([names()[0]], gallery=GALLERY)
                empty = await a.cache_export(
                    galleries=["paper:2007:4"], limit=0
                )
                return fresh, export, imported, warm, empty
            finally:
                await a.aclose()
                await b.aclose()
                await source.aclose()
                await target.aclose()

        fresh, export, imported, warm, empty = asyncio.run(scenario())
        assert export["galleries"] == ["paper:2007:4"]
        assert len(export["entries"]) == 1
        assert imported["imported"] == 1
        # The importer answers from cache without ever solving.
        assert warm["cached"] is True
        assert_parity(warm, fresh)
        # limit=0 lists galleries but moves nothing.
        assert empty["galleries"] == ["paper:2007:4"]
        assert empty["entries"] == []

    def test_import_rejects_malformed_entries(self):
        async def scenario():
            server = EstimationServer(batch_window=0.0)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="entries"):
                    await client._call({"op": "cache_import"})
                with pytest.raises(ServiceError, match="4-element"):
                    await client.cache_import([[["just", "three", "parts"], {}]])
                return await client.ping()
            finally:
                await client.aclose()
                await server.aclose()

        assert asyncio.run(scenario())["pong"] is True


class TestEstimateBatchOp:
    def test_batch_answers_match_single_estimates(self):
        async def scenario():
            server = EstimationServer(batch_window=0.005)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            try:
                singles = [
                    await client.estimate([name], gallery=GALLERY)
                    for name in names()
                ]
                batch = await client.estimate_batch(
                    [[name] for name in names()], gallery=GALLERY
                )
                return singles, batch
            finally:
                await client.aclose()
                await server.aclose()

        singles, batch = asyncio.run(scenario())
        results = batch["results"]
        assert len(results) == len(names())
        for single, member in zip(singles, results):
            assert member["use_case"] == single["use_case"]
            assert member["cached"] is True  # the singles warmed the cache
            assert_parity(member, single)

    def test_batch_validation_is_loud(self):
        async def scenario():
            server = EstimationServer(batch_window=0.0)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="use_cases"):
                    await client.estimate_batch([], gallery=GALLERY)
                with pytest.raises(ServiceError, match="outside gallery"):
                    await client.estimate_batch(
                        [["Nope"]], gallery=GALLERY
                    )
                return await client.ping()
            finally:
                await client.aclose()
                await server.aclose()

        assert asyncio.run(scenario())["pong"] is True


# ----------------------------------------------------------------------
# Live resharding: join / leave
# ----------------------------------------------------------------------
class TestJoin:
    def test_join_warms_the_joiner_with_its_key_space(self):
        async def scenario():
            servers = [
                EstimationServer(batch_window=0.01) for _ in range(3)
            ]
            addresses = [await server.start() for server in servers]
            router = ShardRouter(addresses[:2], health_interval=0.0)
            address = await router.start()
            client = await ServiceClient.connect(*address)
            try:
                seeds = list(range(2000, 2040))
                for seed in seeds:
                    await client.estimate(["A"], gallery=gallery_payload(seed))
                new_name = f"{addresses[2][0]}:{addresses[2][1]}"
                labels = [f"paper:{seed}:4" for seed in seeds]
                preview = router._ring.with_node(new_name)
                movers = [
                    label
                    for label in labels
                    if preview.node_for(label) == new_name
                ]
                stay = {
                    label: router._ring.node_for(label)
                    for label in labels
                    if label not in set(movers)
                }
                summary = await client.join(new_name)
                after = {
                    label: router._ring.node_for(label) for label in stay
                }
                routed = [
                    await client.estimate(
                        ["A"], gallery=gallery_payload(int(label.split(":")[1]))
                    )
                    for label in movers
                ]
                return summary, movers, stay, after, routed, router.snapshot()
            finally:
                await client.aclose()
                await router.aclose()
                for server in servers:
                    await server.aclose()

        summary, movers, stay, after, routed, stats = asyncio.run(scenario())
        assert movers  # 40 galleries over 3 nodes: some must move
        # The hand-off moved exactly the joiner's new key space.
        assert summary["handoff"]["galleries"] == sorted(movers)
        assert summary["handoff"]["entries"] == len(movers)
        assert summary["live_shards"] == 3
        # Bounded remap: every non-mover keeps its owner.
        assert stay == after
        # The joiner serves its galleries *warm* — no cold start.
        new_name = summary["shard"]
        for result in routed:
            assert result["shard"] == new_name
            assert result["cached"] is True
        assert stats["joins"] == 1
        assert stats["handoff_entries"] == len(movers)
        assert stats["stale_risk"] == 0

    def test_join_duplicate_and_unreachable_fail_loudly(self):
        async def scenario(client, router, servers, addresses):
            with pytest.raises(ServiceError, match="already part"):
                await client.join(f"{addresses[0][0]}:{addresses[0][1]}")
            # A server that no longer listens cannot join.
            ghost = EstimationServer(batch_window=0.0)
            host, port = await ghost.start()
            await ghost.aclose()
            with pytest.raises(ServiceError, match="unreachable"):
                await client.join(f"{host}:{port}")
            return router.snapshot()

        stats = fleet(scenario)
        assert stats["joins"] == 0
        assert stats["live_shards"] == 2


class TestLeave:
    def test_leave_hands_the_key_space_to_survivors(self):
        async def scenario(client, router, servers, addresses):
            reference = {}
            for seed in range(2000, 2012):
                reference[seed] = await client.estimate(
                    ["A"], gallery=gallery_payload(seed)
                )
            victim = reference[2000]["shard"]
            summary = await client.leave(victim)
            again = await client.estimate(["A"], gallery=gallery_payload(2000))
            return reference, victim, summary, again, router.snapshot()

        reference, victim, summary, again, stats = fleet(scenario)
        assert summary["shard"] == victim
        assert summary["handoff"]["entries"] >= 1
        assert summary["live_shards"] == 1
        # The retired shard is forgotten, not marked down.
        assert victim not in stats["shards"]
        assert stats["leaves"] == 1
        # Its galleries answer warm from the new owner, with parity.
        assert again["shard"] != victim
        assert again["cached"] is True
        assert_parity(again, reference[2000])

    def test_leave_refuses_the_last_shard_and_unknown_names(self):
        async def scenario(client, router, servers, addresses):
            with pytest.raises(ServiceError, match="not part of the fleet"):
                await client.leave("127.0.0.1:1")
            await client.leave(f"{addresses[0][0]}:{addresses[0][1]}")
            with pytest.raises(ServiceError, match="last healthy shard"):
                await client.leave(f"{addresses[1][0]}:{addresses[1][1]}")
            return router.snapshot()

        stats = fleet(scenario)
        assert stats["live_shards"] == 1
        assert stats["leaves"] == 1

    def test_health_loop_does_not_resurrect_a_left_shard(self):
        async def scenario():
            servers = [
                EstimationServer(batch_window=0.01) for _ in range(2)
            ]
            addresses = [await server.start() for server in servers]
            router = ShardRouter(addresses, health_interval=0.05)
            address = await router.start()
            client = await ServiceClient.connect(*address)
            try:
                name = f"{addresses[0][0]}:{addresses[0][1]}"
                await client.leave(name)
                # The left shard's server is alive and pingable; give
                # the health loop several ticks to (wrongly) notice it.
                await asyncio.sleep(0.25)
                return name, router.snapshot()
            finally:
                await client.aclose()
                await router.aclose()
                for server in servers:
                    await server.aclose()

        name, stats = asyncio.run(scenario())
        assert name not in stats["shards"]
        assert stats["live_shards"] == 1

    def test_router_verbs_are_rejected_by_a_plain_server(self):
        async def scenario():
            server = EstimationServer(batch_window=0.0)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="unknown op"):
                    await client.join("127.0.0.1:1")
                return await client.ping()
            finally:
                await client.aclose()
                await server.aclose()

        assert asyncio.run(scenario())["pong"] is True


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
class TestReplication:
    def test_shard_death_fails_over_to_a_warm_replica(self):
        async def scenario(client, router, servers, addresses):
            first = await client.estimate([names()[0]], gallery=GALLERY)
            # The replica is shipped asynchronously; wait for it.
            deadline = asyncio.get_running_loop().time() + 5
            while router._replica_tasks:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            victim = next(
                index
                for index, address in enumerate(addresses)
                if f"{address[0]}:{address[1]}" == first["shard"]
            )
            await servers[victim].aclose()
            second = await client.estimate([names()[0]], gallery=GALLERY)
            return first, second, router.snapshot()

        first, second, stats = fleet(scenario)
        assert stats["replications"] == 1
        assert second["shard"] != first["shard"]
        # The failover read hits the replica — no cold re-solve.
        assert second["cached"] is True
        assert_parity(second, first)

    def test_replication_zero_disables_the_copies(self):
        async def scenario(client, router, servers, addresses):
            await client.estimate([names()[0]], gallery=GALLERY)
            while router._replica_tasks:
                await asyncio.sleep(0.01)
            return router.snapshot()

        stats = fleet(scenario, replication=0)
        assert stats["replications"] == 0

    def test_rejects_bad_elasticity_configuration(self):
        with pytest.raises(ServiceError, match="batch_window"):
            ShardRouter([("h", 1)], batch_window=-0.1)
        with pytest.raises(ServiceError, match="replication"):
            ShardRouter([("h", 1)], replication=-1)
        with pytest.raises(ServiceError, match="handoff_limit"):
            ShardRouter([("h", 1)], handoff_limit=-1)
        with pytest.raises(ServiceError, match="max_batch"):
            ShardRouter([("h", 1)], max_batch=0)


# ----------------------------------------------------------------------
# The stale-rejoin regression (the headline fix)
# ----------------------------------------------------------------------
class TestInvalidateQueuedForDownShards:
    def test_missed_invalidate_replays_before_rejoin(self):
        """A shard partitioned away during an ``invalidate`` broadcast
        keeps its warm cache; on the pre-fix router the health loop's
        ``_mark_up`` put it straight back on the ring and it served the
        stale cache.  Now the missed invalidation is queued by epoch
        and replayed *before* ring re-entry."""

        async def scenario(client, router, servers, addresses):
            first = await client.estimate([names()[0]], gallery=GALLERY)
            warm = await client.estimate([names()[0]], gallery=GALLERY)
            home = router._shards[first["shard"]]
            # Network partition: the router loses the shard; the shard
            # itself stays alive, warm cache intact.
            router._mark_down(home)
            broadcast = await client.invalidate(GALLERY)
            queued = broadcast["shards"][home.name]
            # The partition heals: the probe path (what the health
            # loop runs) resurrects the shard — after the replay.
            assert await router._probe(home)
            after = await client.estimate([names()[0]], gallery=GALLERY)
            return warm, queued, home.name, after, router.snapshot()

        warm, queued, home, after, stats = fleet(scenario)
        assert warm["cached"] is True  # the cache really was warm
        assert queued["queued"] is True
        # The resurrected home shard serves again — but *fresh*: the
        # replayed invalidation emptied its cache.  On the pre-fix
        # router this answer comes back cached=True (stale).
        assert after["shard"] == home
        assert after["cached"] is False
        assert stats["invalidations_replayed"] == 1
        assert stats["stale_risk"] == 0
        assert stats["shard_up"] == 1

    def test_unreplayable_shard_stays_off_the_ring(self):
        """If the invalidation replay itself fails, the shard must not
        rejoin — serving nothing beats serving stale answers."""

        async def scenario(client, router, servers, addresses):
            first = await client.estimate([names()[0]], gallery=GALLERY)
            home = router._shards[first["shard"]]
            router._mark_down(home)
            await client.invalidate(GALLERY)
            victim = next(
                index
                for index, address in enumerate(addresses)
                if f"{address[0]}:{address[1]}" == home.name
            )
            # The shard truly dies now: ping fails, replay impossible.
            await servers[victim].aclose()
            assert not await router._probe(home)
            return home.name, router.snapshot()

        home, stats = fleet(scenario)
        assert stats["shards"][home] is False
        assert stats["live_shards"] == 1
        assert stats["shard_up"] == 0


# ----------------------------------------------------------------------
# The failover-recompute regression
# ----------------------------------------------------------------------
class TestFailoverRecompute:
    def test_retry_skips_a_shard_marked_down_mid_request(self):
        """The home shard resets the connection, and *while that
        request was in flight* a probe marked the second-preference
        shard down.  The pre-fix router retried against the captured
        preference list — burning its one retry on the known-dead
        shard.  Candidates are now recomputed per attempt."""

        async def scenario(client, router, servers, addresses):
            label = SPEC.label()
            order = router._ring.nodes_for(label)
            shard1, shard2, shard3 = (
                router._shards[name] for name in order
            )
            # The second-preference shard's server is really gone, so a
            # wasted retry against it cannot accidentally succeed.
            victim = next(
                index
                for index, address in enumerate(addresses)
                if f"{address[0]}:{address[1]}" == shard2.name
            )
            await servers[victim].aclose()

            class Trap:
                """Home-shard client: dies mid-request, and the death
                coincides with a probe declaring shard2 down."""

                async def estimate(self, *args, **kwargs):
                    router._mark_down(shard2)
                    raise ServiceConnectionError(
                        "connection reset mid-request"
                    )

                async def aclose(self):
                    pass

            shard1.client = Trap()
            result = await client.estimate([names()[0]], gallery=GALLERY)
            return result, shard3.name, router.snapshot()

        result, third, stats = fleet(scenario, shards=3, max_retries=1)
        # One retry allowed, and it reaches the healthy third shard —
        # the pre-fix router spent it on shard2 and failed the query.
        assert result["shard"] == third
        assert result["periods"]
        assert stats["retries"] == 1
        assert stats["errors"] == 0


# ----------------------------------------------------------------------
# Router micro-batching
# ----------------------------------------------------------------------
class TestRouterMicroBatching:
    def test_concurrent_queries_coalesce_into_framed_hops(self):
        async def scenario(client, router, servers, addresses):
            plan = [
                (name, f"trace-{copy}-{name}")
                for name in names()
                for copy in range(3)
            ]
            results = await asyncio.gather(
                *[
                    client.estimate([name], gallery=GALLERY, trace=trace)
                    for name, trace in plan
                ]
            )
            return plan, results, router.snapshot()

        plan, results, stats = fleet(scenario, batch_window=0.05)
        assert stats["batched_queries"] == len(plan)
        assert stats["batches"] >= 1
        # Dedup: 12 client questions are only 4 distinct queries.
        assert stats["forwarded"] < len(plan)
        for (name, trace), result in zip(plan, results):
            assert result["use_case"] == [name]
            assert result["periods"]
            assert result["trace"] == trace  # per-member echo
            assert "shard" in result

    def test_batched_answers_match_unbatched(self):
        def ask(batch_window):
            async def scenario(client, router, servers, addresses):
                return await asyncio.gather(
                    *[
                        client.estimate([name], gallery=GALLERY)
                        for name in names()
                    ]
                )

            return fleet(scenario, batch_window=batch_window)

        unbatched = ask(0.0)
        batched = ask(0.02)
        for a, b in zip(unbatched, batched):
            assert a["use_case"] == b["use_case"]
            assert_parity(b, a)

    def test_estimate_batch_through_the_router(self):
        async def scenario(client, router, servers, addresses):
            batch = await client.estimate_batch(
                [[name] for name in names()], gallery=GALLERY
            )
            return batch, router.snapshot()

        batch, stats = fleet(scenario)
        results = batch["results"]
        assert len(results) == len(names())
        shards = {member["shard"] for member in results}
        assert len(shards) == 1  # one gallery, one shard, one hop
        assert stats["batches"] == 1
        assert stats["forwarded"] == len(names())
        for member, name in zip(results, names()):
            assert member["use_case"] == [name]
            assert member["periods"]

    def test_batched_failover_survives_a_shard_death(self):
        async def scenario(client, router, servers, addresses):
            reference = await asyncio.gather(
                *[
                    client.estimate([name], gallery=GALLERY)
                    for name in names()
                ]
            )
            home = reference[0]["shard"]
            victim = next(
                index
                for index, address in enumerate(addresses)
                if f"{address[0]}:{address[1]}" == home
            )
            await servers[victim].aclose()
            results = await asyncio.gather(
                *[
                    client.estimate([name], gallery=GALLERY)
                    for name in names()
                ]
            )
            return reference, home, results, router.snapshot()

        reference, home, results, stats = fleet(scenario, batch_window=0.02)
        for expected, result in zip(reference, results):
            assert result["shard"] != home
            assert_parity(result, expected)
        assert stats["shard_down"] == 1
        assert stats["errors"] == 0


# ----------------------------------------------------------------------
# Elasticity under load (join + leave mid-run, churn harness)
# ----------------------------------------------------------------------
class TestElasticityUnderLoad:
    def test_join_and_leave_mid_load_lose_no_query(self):
        """A shard joins and another leaves while four clients stream
        queries: zero errors, and every answer matches the stable-fleet
        reference at <= 1e-9."""

        async def scenario():
            servers = [
                EstimationServer(batch_window=0.005) for _ in range(3)
            ]
            addresses = [await server.start() for server in servers]
            router = ShardRouter(addresses[:2], health_interval=0.1)
            address = await router.start()
            admin = await ServiceClient.connect(*address)
            clients = [
                await ServiceClient.connect(*address) for _ in range(4)
            ]
            galleries = [gallery_payload(seed) for seed in range(2000, 2006)]
            try:
                reference = {}
                for gallery in galleries:
                    for name in names():
                        result = await admin.estimate([name], gallery=gallery)
                        reference[(gallery["seed"], name)] = result

                answers = []
                errors = []

                async def run_client(index, client):
                    for step in range(25):
                        gallery = galleries[(index + step) % len(galleries)]
                        name = names()[step % len(names())]
                        try:
                            result = await client.estimate(
                                [name], gallery=gallery
                            )
                        except ServiceError as error:
                            errors.append(str(error))
                            continue
                        answers.append(((gallery["seed"], name), result))
                        await asyncio.sleep(0.004)

                async def churn():
                    await asyncio.sleep(0.03)
                    joined = await admin.join(
                        f"{addresses[2][0]}:{addresses[2][1]}"
                    )
                    await asyncio.sleep(0.05)
                    left = await admin.leave(
                        f"{addresses[0][0]}:{addresses[0][1]}"
                    )
                    return joined, left

                outcome = await asyncio.gather(
                    *[
                        run_client(index, client)
                        for index, client in enumerate(clients)
                    ],
                    churn(),
                )
                joined, left = outcome[-1]
                return (
                    reference,
                    answers,
                    errors,
                    joined,
                    left,
                    router.snapshot(),
                )
            finally:
                for client in clients:
                    await client.aclose()
                await admin.aclose()
                await router.aclose()
                for server in servers:
                    await server.aclose()

        reference, answers, errors, joined, left, stats = asyncio.run(
            scenario()
        )
        assert errors == []
        assert len(answers) == 4 * 25  # zero lost queries
        for key, result in answers:
            assert_parity(result, reference[key])
        assert joined["live_shards"] == 3
        assert left["live_shards"] == 2
        assert stats["joins"] == 1
        assert stats["leaves"] == 1
        assert stats["stale_risk"] == 0

    def test_service_load_churn_harness(self):
        """The ``--churn`` load scenario drives join / invalidate /
        kill / leave mid-run and must come back clean: every query
        answered, zero stale risk."""
        report = run_load(
            LoadConfig(
                clients=4,
                queries_per_client=8,
                shards=2,
                churn=True,
                router_batch_window=0.002,
                gallery=GallerySpec(application_count=4),
            )
        )
        assert report.errors == 0
        assert report.queries == 4 * 8
        assert report.router is not None
        assert report.router["stale_risk"] == 0
        assert [event["event"] for event in report.churn_events] == [
            "join",
            "invalidate",
            "kill",
            "leave",
        ]
        assert report.router["joins"] == 1
        assert report.router["leaves"] == 1
        payload = report.to_json()
        assert payload["router"]["stale_risk"] == 0
        assert len(payload["churn_events"]) == 4

    def test_churn_requires_a_fleet(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="churn"):
            LoadConfig(shards=1, churn=True)
