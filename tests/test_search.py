"""Tests of the :mod:`repro.search` placement layer.

Covered here: the search-space axes and candidate coding, the shared
feasibility rule and its public :func:`evaluate_feasibility` face, the
quality-assignment enumeration extracted from the runtime manager, the
batched candidate evaluator's parity with the per-candidate scalar
estimator, every strategy's contract on small galleries (exhaustive
matches brute-force enumeration; greedy/local search find feasible
configurations whenever exhaustive does), and the determinism
guarantee: the same seed yields a byte-identical
:class:`~repro.search.result.PlacementResult` JSON document.
"""

from __future__ import annotations

import json

import pytest

from repro.core.estimator import ProbabilisticEstimator
from repro.platform.mapping import Mapping, index_mapping
from repro.exceptions import AnalysisError
from repro.experiments.setup import paper_benchmark_suite
from repro.search import (
    Candidate,
    CandidateEvaluator,
    Constraint,
    Objective,
    PlacementResult,
    QualityAssignmentProblem,
    SearchSpace,
    StrategyOptions,
    check_feasibility,
    derive_targets,
    evaluate_feasibility,
    place,
    run_strategy,
    search_assignment,
)
from repro.search.objective import rank_key, violation_total


def small_space(count: int = 3, **kwargs) -> SearchSpace:
    suite = paper_benchmark_suite(application_count=count)
    defaults = dict(model="wrr", weight_choices=(1, 2))
    defaults.update(kwargs)
    return SearchSpace(list(suite.graphs), platform=suite.platform, **defaults)


# ----------------------------------------------------------------------
# SearchSpace
# ----------------------------------------------------------------------
class TestSearchSpace:
    def test_size_counts_every_axis_combination(self):
        space = small_space(3)
        # 3 mappings x (2 weights)^3 applications.
        assert space.size == 3 * 2 ** 3
        assert len(list(space.candidates())) == space.size

    def test_candidate_keys_are_unique_and_stable(self):
        space = small_space(3)
        keys = [candidate.key for candidate in space.candidates()]
        assert len(set(keys)) == space.size
        assert keys == [candidate.key for candidate in space.candidates()]

    def test_decode_round_trips_every_index_tuple(self):
        space = small_space(2)
        for indices in space.index_tuples():
            candidate = space.decode(indices)
            assert isinstance(candidate, Candidate)
            mapping = space.mapping_of(candidate)
            assert isinstance(mapping, Mapping)
            model = space.model_of(candidate)
            assert model.startswith("wrr")

    def test_weight_axis_requires_a_weighted_model(self):
        with pytest.raises(AnalysisError, match="weight"):
            small_space(2, model="second_order", weight_choices=(1, 2))

    def test_priority_axis_expands_the_space(self):
        space = small_space(2, weight_choices=None, priority_levels=(0.0, 1.0))
        # 3 mappings x (2 priorities)^2 applications.
        assert space.size == 3 * 2 ** 2

    def test_unknown_mapping_is_rejected(self):
        with pytest.raises(AnalysisError, match="mapping"):
            small_space(2, mappings=("index", "zigzag"))

    def test_invalid_model_spec_fails_eagerly(self):
        with pytest.raises(AnalysisError):
            small_space(2, model="wrr:Z=2", weight_choices=None)

    def test_neighbors_differ_in_exactly_one_dimension(self):
        space = small_space(3)
        start = space.default_indices()
        for neighbor in space.neighbors(start):
            assert sum(a != b for a, b in zip(start, neighbor)) == 1

    def test_mutate_and_crossover_stay_in_bounds(self):
        import random

        space = small_space(3)
        rng = random.Random(7)
        sizes = [len(dimension.choices) for dimension in space.dimensions]
        a = space.random_indices(rng)
        b = space.random_indices(rng)
        for indices in (space.mutate(a, rng), space.crossover(a, b, rng)):
            assert all(0 <= i < n for i, n in zip(indices, sizes))


# ----------------------------------------------------------------------
# Objective / feasibility rule
# ----------------------------------------------------------------------
class TestObjectiveAndFeasibility:
    def test_objective_values(self):
        periods = {"A": 10.0, "B": 30.0}
        assert Objective("total_period").value(periods) == 40.0
        assert Objective("makespan").value(periods) == 30.0
        assert Objective("feasible").value(periods) == 0.0

    def test_unknown_objective_is_rejected(self):
        with pytest.raises(AnalysisError, match="objective"):
            Objective("latency")

    def test_constraint_rejects_nonpositive_targets(self):
        with pytest.raises(AnalysisError, match="target"):
            Constraint({"A": 0.0})

    def test_check_feasibility_tolerates_float_noise(self):
        feasible, violations = check_feasibility(
            {"A": 100.0 * (1 + 1e-15)}, {"A": 100.0}
        )
        assert feasible and violations == {}

    def test_check_feasibility_reports_relative_violations(self):
        feasible, violations = check_feasibility(
            {"A": 150.0, "B": 90.0}, {"A": 100.0, "B": 100.0}
        )
        assert not feasible
        assert violations == {"A": pytest.approx(0.5)}
        assert violation_total(violations) == pytest.approx(0.5)

    def test_none_targets_are_unconstrained(self):
        feasible, violations = check_feasibility(
            {"A": 1e9}, {"A": None}
        )
        assert feasible and violations == {}

    def test_rank_prefers_feasible_then_objective_then_key(self):
        better = rank_key(True, 10.0, {}, "a")
        worse = rank_key(True, 20.0, {}, "a")
        infeasible = rank_key(False, 5.0, {"A": 0.1}, "a")
        assert better < worse < infeasible
        tie_a = rank_key(True, 10.0, {}, "a")
        tie_b = rank_key(True, 10.0, {}, "b")
        assert tie_a < tie_b

    def test_evaluate_feasibility_matches_the_estimator(self):
        suite = paper_benchmark_suite(application_count=2)
        graphs = list(suite.graphs)
        mapping = index_mapping(graphs, suite.platform)
        estimator = ProbabilisticEstimator(
            graphs, mapping=mapping, waiting_model="second_order"
        )
        periods = estimator.estimate().periods
        generous = {name: value * 2 for name, value in periods.items()}
        strict = {name: value / 2 for name, value in periods.items()}
        report = evaluate_feasibility(graphs, mapping, generous)
        assert report.feasible and bool(report)
        for name, value in report.periods.items():
            assert value == pytest.approx(periods[name], rel=1e-9)
        report = evaluate_feasibility(graphs, mapping, strict)
        assert not report.feasible
        assert set(report.violations) == set(periods)
        payload = report.to_json()
        assert set(payload) == {"feasible", "periods", "violations"}


# ----------------------------------------------------------------------
# Quality-assignment search (extracted from the runtime manager)
# ----------------------------------------------------------------------
class TestAssignmentSearch:
    def problem(self):
        return QualityAssignmentProblem(
            applications=("A", "B", "N"),
            levels={
                "A": ("high", "mid", "low"),
                "B": ("high", "low"),
                "N": ("high", "low"),
            },
            priorities={"A": 2.0, "B": 1.0},
            newcomer="N",
        )

    def test_newcomer_must_come_last(self):
        with pytest.raises(AnalysisError, match="newcomer"):
            QualityAssignmentProblem(
                applications=("N", "A"),
                levels={"N": ("high",), "A": ("high",)},
                priorities={"A": 1.0},
                newcomer="N",
            )

    def test_exhaustive_prefers_minimal_total_downgrade(self):
        problem = self.problem()
        # Everything feasible -> everyone stays at the top level.
        result = search_assignment(problem, lambda assignment: True)
        assert result == {"A": "high", "B": "high", "N": "high"}

    def test_exhaustive_downgrades_newcomer_first_on_ties(self):
        problem = self.problem()

        def is_feasible(assignment):
            return sum(
                problem.levels[app].index(level)
                for app, level in assignment.items()
            ) >= 1

        result = search_assignment(problem, is_feasible)
        # One step total; the newcomer absorbs it.
        assert result == {"A": "high", "B": "high", "N": "low"}

    def test_greedy_walks_newcomer_then_lowest_priority(self):
        problem = self.problem()
        calls = []

        def is_feasible(assignment):
            calls.append(dict(assignment))
            return assignment["B"] == "low"

        result = search_assignment(problem, is_feasible, search="greedy")
        assert result["B"] == "low"
        # The first probe is everyone at the top level.
        assert calls[0] == {"A": "high", "B": "high", "N": "high"}

    def test_returns_none_when_nothing_is_feasible(self):
        problem = self.problem()
        assert search_assignment(problem, lambda assignment: False) is None
        assert (
            search_assignment(problem, lambda assignment: False, search="greedy")
            is None
        )

    def test_exhaustive_falls_back_to_greedy_above_the_cap(self):
        problem = self.problem()
        result = search_assignment(
            problem, lambda assignment: True, max_combinations=2
        )
        assert result == {"A": "high", "B": "high", "N": "high"}


# ----------------------------------------------------------------------
# Batched evaluator parity with the scalar estimator
# ----------------------------------------------------------------------
class TestEvaluatorParity:
    @pytest.mark.parametrize("count", [2, 3])
    def test_batched_periods_match_per_candidate_estimates(self, count):
        space = small_space(count)
        evaluator = CandidateEvaluator(space, objective=Objective("total_period"))
        candidates = list(space.candidates())
        evaluated = evaluator.evaluate(candidates)
        assert len(evaluated) == space.size
        for item in evaluated:
            estimator = ProbabilisticEstimator(
                list(space.graphs),
                mapping=space.mapping_of(item.candidate),
                waiting_model=space.model_of(item.candidate),
            )
            expected = estimator.estimate().periods
            for name, value in item.periods.items():
                assert value == pytest.approx(expected[name], rel=1e-9)

    def test_evaluate_one_matches_the_batch(self):
        space = small_space(2)
        evaluator = CandidateEvaluator(space)
        candidate = next(iter(space.candidates()))
        single = evaluator.evaluate_one(candidate)
        batch = evaluator.evaluate([candidate])[0]
        assert single.periods == batch.periods
        assert single.rank == batch.rank


# ----------------------------------------------------------------------
# Strategy contracts
# ----------------------------------------------------------------------
class TestStrategies:
    def brute_force_best(self, space, evaluator):
        """Reference winner: evaluate the whole space, order by rank."""
        evaluated = evaluator.evaluate(list(space.candidates()))
        return min(evaluated, key=lambda item: item.rank)

    @pytest.mark.parametrize("count", [2, 3, 4, 5])
    def test_exhaustive_matches_brute_force(self, count):
        space = small_space(count)
        targets = derive_targets(
            list(space.graphs), slack=6.0
        )
        evaluator = CandidateEvaluator(
            space,
            objective=Objective("total_period"),
            constraint=Constraint(targets),
        )
        reference = self.brute_force_best(space, evaluator)
        outcome = run_strategy("exhaustive", space, evaluator, StrategyOptions())
        assert outcome.best is not None
        assert outcome.best.candidate.key == reference.candidate.key
        assert outcome.best.objective_value == pytest.approx(
            reference.objective_value, rel=1e-9
        )
        assert outcome.evaluated == space.size

    @pytest.mark.parametrize("count", [2, 3, 4, 5])
    @pytest.mark.parametrize("slack", [2.5, 4.5, 6.0])
    def test_all_strategies_agree_on_feasibility(self, count, slack):
        space = small_space(count)
        targets = derive_targets(list(space.graphs), slack=slack)
        constraint = Constraint(targets)
        verdicts = {}
        for strategy in ("exhaustive", "greedy", "local_search", "evolutionary"):
            evaluator = CandidateEvaluator(
                space,
                objective=Objective("total_period"),
                constraint=constraint,
            )
            outcome = run_strategy(
                strategy, space, evaluator, StrategyOptions(seed=0)
            )
            assert outcome.best is not None
            verdicts[strategy] = outcome.best.feasible
        assert len(set(verdicts.values())) == 1, verdicts

    def test_exhaustive_rejects_oversized_spaces(self):
        space = small_space(3)
        evaluator = CandidateEvaluator(space)
        with pytest.raises(AnalysisError, match="exhaustive cap"):
            run_strategy(
                "exhaustive", space, evaluator, StrategyOptions(max_candidates=4)
            )

    def test_unknown_strategy_is_rejected(self):
        space = small_space(2)
        evaluator = CandidateEvaluator(space)
        with pytest.raises(AnalysisError, match="strategy"):
            run_strategy("annealing", space, evaluator, StrategyOptions())


# ----------------------------------------------------------------------
# place() and determinism
# ----------------------------------------------------------------------
class TestPlace:
    def run(self, count=3, **kwargs):
        suite = paper_benchmark_suite(application_count=count)
        defaults = dict(
            platform=suite.platform,
            slack=4.5,
            strategy="greedy",
            model="wrr",
            seed=0,
        )
        defaults.update(kwargs)
        return place(list(suite.graphs), **defaults)

    def test_place_returns_a_serializable_result(self):
        result = self.run()
        assert isinstance(result, PlacementResult)
        payload = json.loads(result.to_json_str())
        assert payload["strategy"] == "greedy"
        assert payload["feasible"] is True
        assert set(payload["best"]["periods"]) == set(result.applications)
        round_tripped = PlacementResult.from_json(payload)
        assert round_tripped.to_json_str() == result.to_json_str()

    def test_trace_records_the_search_walk(self):
        result = self.run(strategy="exhaustive")
        events = {entry.event for entry in result.trace}
        assert "improve" in events
        assert result.evaluated == result.space["size"]

    @pytest.mark.parametrize("strategy", ["local_search", "evolutionary"])
    def test_same_seed_is_byte_identical(self, strategy):
        first = self.run(strategy=strategy, seed=42)
        second = self.run(strategy=strategy, seed=42)
        assert first.to_json_str() == second.to_json_str()

    def test_different_seeds_may_explore_differently(self):
        # Not a strict requirement on the winner, but the runs must be
        # self-consistent: each seed reproduces its own trace.
        a1 = self.run(strategy="local_search", seed=1)
        a2 = self.run(strategy="local_search", seed=1)
        assert a1.to_json_str() == a2.to_json_str()

    def test_explicit_targets_override_slack(self):
        suite = paper_benchmark_suite(application_count=2)
        loose = {name: 1e9 for name in (g.name for g in suite.graphs)}
        result = place(
            list(suite.graphs),
            platform=suite.platform,
            targets=loose,
            strategy="greedy",
        )
        assert result.feasible
        assert result.targets == loose

    def test_unknown_target_application_is_rejected(self):
        suite = paper_benchmark_suite(application_count=2)
        with pytest.raises(AnalysisError, match="target"):
            place(
                list(suite.graphs),
                platform=suite.platform,
                targets={"Zed": 100.0},
            )

    def test_slack_must_exceed_one(self):
        suite = paper_benchmark_suite(application_count=2)
        with pytest.raises(AnalysisError, match="slack"):
            place(list(suite.graphs), platform=suite.platform, slack=1.0)

    def test_greedy_is_feasible_whenever_exhaustive_is(self):
        exhaustive = self.run(count=4, strategy="exhaustive")
        greedy = self.run(count=4, strategy="greedy")
        assert exhaustive.feasible
        assert greedy.feasible == exhaustive.feasible
        # The spread mapping with unit weights wins this gallery.
        assert exhaustive.best is not None

    def test_makespan_objective_is_supported(self):
        result = self.run(objective="makespan")
        assert result.objective == "makespan"
        assert result.best is not None
        assert result.best.objective_value == pytest.approx(
            max(result.best.periods.values()), rel=1e-12
        )
