"""Differential testing of the simulation-engine flavours.

The ``numpy`` (SoA) and ``jit`` stepping loops are *re-implementations*
of the reference ``python`` loop, and the contract is byte-identity —
not a tolerance band: same traces, same metrics, same waiting
statistics, same utilization, same event counts, and the same errors on
the same inputs.  Hypothesis drives seeded paper-style galleries
through every arbitration policy (with seeded priorities and weights)
and through stochastic execution times; pinned tests cover the error
paths (starvation inside a horizon, deadlock before the target) and
the tracker state the flavours must leave behind even when a run
aborts.

The JIT kernel is plain Python over numpy arrays underneath the
``njit`` wrappers, so its logic is exercised *interpreted* here even
when numba is not installed; the compiled axis runs only with the
``jit`` packaging extra present.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import numpy_available
from repro.core.distributions import DistributionTimeModel, UniformTime
from repro.exceptions import AnalysisError, DeadlockError
from repro.experiments.setup import paper_benchmark_suite
from repro.simulation.engine import SimulationConfig, Simulator
from repro.simulation.fastcore import run_fast
from repro.simulation.jit import jit_available, run_jit

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

POLICIES = (
    "fcfs",
    "round_robin",
    "weighted_round_robin",
    "priority",
    "priority_preemptive",
)


def _assert_identical(reference, fast):
    """Byte-identity of two SimulationResults (``==``, not approx)."""
    assert fast.end_time == reference.end_time
    assert fast.events_processed == reference.events_processed
    assert fast.metrics == reference.metrics
    assert fast.processor_utilization == reference.processor_utilization
    assert fast.waiting == reference.waiting
    assert fast.trace == reference.trace


def _scenario(gallery_seed, subset_mask, policy, draw_seed):
    """One runnable scenario from drawn integers.

    The gallery generator guarantees consistent live graphs, so every
    drawn scenario simulates; priorities and weights come from a
    seeded stream like the conformance batch's.
    """
    import random

    suite = paper_benchmark_suite(seed=gallery_seed, application_count=4)
    names = list(suite.application_names)
    chosen = [n for i, n in enumerate(names) if subset_mask & (1 << i)]
    if len(chosen) < 2:
        chosen = names[:2]
    rng = random.Random(draw_seed)
    mapping = suite.mapping.with_priorities(
        {name: rng.randint(0, 2) for name in chosen}
    )
    params = None
    if policy == "weighted_round_robin":
        params = {
            "weights": {name: rng.randint(1, 3) for name in chosen}
        }
    graphs = [suite.graph(name) for name in chosen]
    return graphs, mapping, params


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    gallery_seed=st.integers(0, 40),
    subset_mask=st.integers(1, 15),
    policy=st.sampled_from(POLICIES),
    record_trace=st.booleans(),
    target=st.sampled_from((20, 45)),
    draw_seed=st.integers(0, 1_000),
)
def test_numpy_flavour_is_byte_identical(
    gallery_seed, subset_mask, policy, record_trace, target, draw_seed
):
    graphs, mapping, params = _scenario(
        gallery_seed, subset_mask, policy, draw_seed
    )
    config = SimulationConfig(
        target_iterations=target,
        arbitration=policy,
        arbitration_params=params,
        record_trace=record_trace,
    )

    def run(backend):
        simulator = Simulator(
            graphs, mapping=mapping, config=config, backend=backend
        )
        try:
            return simulator.run(), None
        except (AnalysisError, DeadlockError) as error:
            return None, (type(error), str(error))

    reference, ref_error = run("python")
    fast, fast_error = run("numpy")
    assert fast_error == ref_error
    if reference is not None:
        _assert_identical(reference, fast)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    gallery_seed=st.integers(0, 20),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 100),
)
def test_stochastic_time_models_stay_identical(
    gallery_seed, policy, seed
):
    """Both loops must draw the same execution-time samples in the
    same order — the RNG stream is part of the contract."""
    graphs, mapping, params = _scenario(gallery_seed, 3, policy, seed)
    distributions = {
        (graph.name, actor.name): UniformTime(
            0.7 * actor.execution_time, 1.3 * actor.execution_time
        )
        for graph in graphs
        for actor in graph.actors
    }
    config = SimulationConfig(
        target_iterations=25,
        arbitration=policy,
        arbitration_params=params,
        seed=seed,
        time_model=DistributionTimeModel(distributions),
    )
    reference = Simulator(
        graphs, mapping=mapping, config=config, backend="python"
    ).run()
    fast = Simulator(
        graphs, mapping=mapping, config=config, backend="numpy"
    ).run()
    _assert_identical(reference, fast)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    gallery_seed=st.integers(0, 40),
    subset_mask=st.integers(1, 15),
    policy=st.sampled_from(POLICIES),
    draw_seed=st.integers(0, 1_000),
)
def test_jit_kernel_interpreted_is_byte_identical(
    gallery_seed, subset_mask, policy, draw_seed
):
    """The JIT kernel's logic, run uncompiled over numpy arrays."""
    graphs, mapping, params = _scenario(
        gallery_seed, subset_mask, policy, draw_seed
    )
    config = SimulationConfig(
        target_iterations=30,
        arbitration=policy,
        arbitration_params=params,
    )
    reference = Simulator(
        graphs, mapping=mapping, config=config, backend="python"
    ).run()
    simulator = Simulator(
        graphs, mapping=mapping, config=config, backend="numpy"
    )
    result = run_jit(simulator, _force_interpreted=True)
    assert result is not None, "JIT kernel overflowed fixed buffers"
    _assert_identical(reference, result)


@pytest.mark.skipif(
    not jit_available(), reason="numba (the jit extra) not installed"
)
def test_jit_compiled_is_byte_identical():
    suite = paper_benchmark_suite(seed=7, application_count=3)
    graphs = list(suite.graphs)
    config = SimulationConfig(target_iterations=40)
    reference = Simulator(
        graphs, mapping=suite.mapping, config=config, backend="python"
    ).run()
    simulator = Simulator(
        graphs, mapping=suite.mapping, config=config, backend="numpy"
    )
    result = run_jit(simulator)
    assert result is not None
    _assert_identical(reference, result)


class TestErrorAndTrackerParity:
    """Aborted runs must leave the same observable state behind."""

    def _starving_setup(self):
        from repro.platform.mapping import modulo_mapping
        from repro.platform.platform import Platform

        from repro.generation.random_sdf import (
            GeneratorConfig,
            random_sdf_graph,
        )

        graphs = [
            random_sdf_graph(
                name,
                seed=seed,
                config=GeneratorConfig(actor_count_range=(3, 3)),
            )
            for name, seed in (("X", 1), ("Y", 2), ("Z", 3))
        ]
        mapping = modulo_mapping(
            graphs, Platform.homogeneous(1)
        ).with_priorities({"X": 2, "Y": 2, "Z": 0})
        return graphs, mapping

    def test_horizon_starvation_raises_identically(self):
        graphs, mapping = self._starving_setup()
        config = SimulationConfig(
            target_iterations=None,
            horizon=2_000.0,
            arbitration="priority",
        )
        outcomes = {}
        for backend in ("python", "numpy"):
            simulator = Simulator(
                graphs, mapping=mapping, config=config, backend=backend
            )
            try:
                simulator.run()
                outcomes[backend] = None
            except (AnalysisError, DeadlockError) as error:
                outcomes[backend] = (type(error), str(error))
            # The per-application trackers are part of the observable
            # surface even after an abort (starvation diagnostics read
            # them), so the fast loop must leave the same state.
            outcomes[backend + "/trackers"] = {
                app: list(tracker.completion_times)
                for app, tracker in simulator._trackers.items()
            }
        assert outcomes["python"] == outcomes["numpy"]
        assert (
            outcomes["python/trackers"] == outcomes["numpy/trackers"]
        )

    def test_deadlock_before_target_raises_identically(self):
        graphs, mapping = self._starving_setup()
        config = SimulationConfig(
            target_iterations=50,
            horizon=2_000.0,
            arbitration="priority",
        )
        errors = {}
        for backend in ("python", "numpy"):
            with pytest.raises((AnalysisError, DeadlockError)) as info:
                Simulator(
                    graphs,
                    mapping=mapping,
                    config=config,
                    backend=backend,
                ).run()
            errors[backend] = (type(info.value), str(info.value))
        assert errors["python"] == errors["numpy"]


def test_engine_stats_report_the_flavour_that_ran():
    suite = paper_benchmark_suite(seed=3, application_count=2)
    graphs = list(suite.graphs)
    config = SimulationConfig(target_iterations=20)
    for backend, flavour in (("python", "python"), ("numpy", "numpy")):
        simulator = Simulator(
            graphs, mapping=suite.mapping, config=config, backend=backend
        )
        assert simulator.stats() is None
        simulator.run()
        stats = simulator.stats()
        assert stats is not None
        assert stats.flavour == flavour
        assert stats.events_dispatched > 0
        assert set(stats.phase_seconds) == {"setup", "step", "collect"}


def test_run_fast_flavour_override_tags_stats():
    suite = paper_benchmark_suite(seed=3, application_count=2)
    simulator = Simulator(
        list(suite.graphs),
        mapping=suite.mapping,
        config=SimulationConfig(target_iterations=20),
        backend="numpy",
    )
    run_fast(simulator, flavour="numpy")
    assert simulator.stats().flavour == "numpy"
