"""Shared fixtures: the paper's graphs and small benchmark suites."""

from __future__ import annotations

import pytest

from repro.experiments.setup import BenchmarkSuite, paper_benchmark_suite
from repro.generation.gallery import paper_two_apps
from repro.sdf.builder import GraphBuilder
from repro.sdf.graph import SDFGraph


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "regenerate tests/goldens/*.json from the current code "
            "instead of comparing against them (review the diff before "
            "committing!)"
        ),
    )


@pytest.fixture(scope="session")
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def app_a() -> SDFGraph:
    """Application A of the paper's Figure 2 (Per = 300 in isolation)."""
    return paper_two_apps()[0]


@pytest.fixture
def app_b() -> SDFGraph:
    """Application B of the paper's Figure 2 (Per = 300 in isolation)."""
    return paper_two_apps()[1]


@pytest.fixture
def two_apps(app_a: SDFGraph, app_b: SDFGraph) -> tuple:
    return app_a, app_b


@pytest.fixture
def simple_chain() -> SDFGraph:
    """Minimal two-actor ring: src(10) -> dst(20) -> src, one token."""
    return (
        GraphBuilder("chain")
        .actor("src", 10)
        .actor("dst", 20)
        .channel("src", "dst")
        .channel("dst", "src", initial_tokens=1)
        .build()
    )


@pytest.fixture(scope="session")
def small_suite() -> BenchmarkSuite:
    """Four-application suite for integration tests (fast)."""
    return paper_benchmark_suite(application_count=4)


@pytest.fixture(scope="session")
def full_suite() -> BenchmarkSuite:
    """The paper-scale ten-application suite (session-cached)."""
    return paper_benchmark_suite()
