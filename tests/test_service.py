"""Tests of the estimation service: protocol, pool, cache, server.

The async server tests each spin a real TCP server on an ephemeral
port inside ``asyncio.run`` — no event-loop plugins — and talk to it
through the public client, so what is asserted is the wire behaviour:
concurrent-client parity against direct estimation (<= 1e-9 relative),
cross-request dedup, cache hit/invalidation semantics, overload
shedding under every QoS policy, and graceful shutdown.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import ServiceError
from repro.experiments.service_load import (
    LATENCY_BUCKETS,
    LoadConfig,
    _client_plan,
    run_load,
)
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.usecase import UseCase, all_use_cases
from repro.runtime.service import GallerySpec, ResultStore
from repro.sdf.analysis import AnalysisMethod
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, estimate_once
from repro.service.pool import EnginePool
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    decode_message,
    encode_message,
    parse_estimate,
    parse_gallery,
)
from repro.service.server import EstimationServer

GALLERY = {"kind": "paper", "seed": 2007, "applications": 4}
SPEC = GallerySpec(kind="paper", seed=2007, application_count=4)


def names():
    return SPEC.application_names()


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        payload = {"id": 3, "op": "ping", "nested": {"a": [1, 2]}}
        assert decode_message(encode_message(payload)) == payload

    def test_encode_is_one_line(self):
        assert encode_message({"op": "ping"}).count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServiceError, match="undecodable"):
            decode_message(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            decode_message(b"[1, 2]\n")

    def test_decode_rejects_oversized(self):
        with pytest.raises(ServiceError, match="exceeds"):
            decode_message(b"x" * (MAX_MESSAGE_BYTES + 1))

    def test_parse_gallery_defaults(self):
        spec = parse_gallery({})
        assert spec.kind == "paper"
        assert spec.application_count == 8

    def test_parse_gallery_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown gallery"):
            parse_gallery({"flavor": "spicy"})

    def test_parse_gallery_rejects_non_object(self):
        with pytest.raises(ServiceError, match="gallery"):
            parse_gallery("paper")

    def test_parse_estimate_key_matches_result_store(self):
        query = parse_estimate(
            {
                "gallery": GALLERY,
                "use_case": list(names()[:2]),
                "model": "exact",
                "method": "mcr",
            }
        )
        assert query.key == ResultStore.key(
            SPEC,
            UseCase(tuple(names()[:2])),
            "exact",
            AnalysisMethod.MCR,
        )

    def test_parse_estimate_rejects_unknown_application(self):
        with pytest.raises(ServiceError, match="outside gallery"):
            parse_estimate({"gallery": GALLERY, "use_case": ["nope"]})

    def test_parse_estimate_rejects_empty_use_case(self):
        with pytest.raises(ServiceError, match="non-empty"):
            parse_estimate({"gallery": GALLERY, "use_case": []})

    def test_parse_estimate_rejects_bad_method(self):
        with pytest.raises(ServiceError, match="unknown analysis"):
            parse_estimate(
                {
                    "gallery": GALLERY,
                    "use_case": [names()[0]],
                    "method": "tarot",
                }
            )

    def test_degraded_query_changes_only_the_model(self):
        query = parse_estimate({"gallery": GALLERY, "use_case": [names()[0]]})
        cheap = query.degraded("composability")
        assert cheap.model == "composability"
        assert cheap.use_case == query.use_case
        assert cheap.group != query.group


# ----------------------------------------------------------------------
# Pool
# ----------------------------------------------------------------------
class TestEnginePool:
    def test_estimators_share_engines_per_method(self):
        pool = EnginePool()
        first = pool.estimator(SPEC, "second_order", AnalysisMethod.MCR)
        second = pool.estimator(SPEC, "exact", AnalysisMethod.MCR)
        assert first is not second
        assert first.engines is second.engines
        assert pool.stats.gallery_builds == 1
        assert pool.stats.estimator_builds == 2

    def test_repeated_lookup_is_cached(self):
        pool = EnginePool()
        first = pool.estimator(SPEC, "second_order", AnalysisMethod.MCR)
        again = pool.estimator(SPEC, "second_order", AnalysisMethod.MCR)
        assert first is again
        assert pool.stats.estimator_builds == 1

    def test_lru_eviction(self):
        pool = EnginePool(max_galleries=2)
        specs = [GallerySpec(application_count=count) for count in (2, 3, 4)]
        for spec in specs:
            pool.estimator(spec, "second_order", AnalysisMethod.MCR)
        assert len(pool) == 2
        assert pool.stats.gallery_evictions == 1
        snapshot = pool.snapshot()
        assert specs[0].label() not in snapshot["galleries"]

    def test_invalidate(self):
        pool = EnginePool()
        pool.estimator(SPEC, "second_order", AnalysisMethod.MCR)
        assert pool.invalidate(SPEC) is True
        assert pool.invalidate(SPEC) is False
        assert len(pool) == 0

    def test_rejects_bad_bound(self):
        with pytest.raises(ServiceError):
            EnginePool(max_galleries=0)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestResultCache:
    def key(self, index, gallery="g"):
        return (gallery, f"uc{index}", "second_order", "mcr")

    def test_hit_and_miss_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get(self.key(0)) is None
        cache.put(self.key(0), {"value": 1})
        assert cache.get(self.key(0)) == {"value": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_prefers_stale_entries(self):
        cache = ResultCache(max_entries=2)
        cache.put(self.key(0), {"value": 0})
        cache.put(self.key(1), {"value": 1})
        assert cache.get(self.key(0)) is not None  # refresh 0
        cache.put(self.key(2), {"value": 2})  # evicts 1
        assert cache.get(self.key(1)) is None
        assert cache.get(self.key(0)) is not None
        assert cache.stats.evictions == 1

    def test_invalidate_gallery_is_selective(self):
        cache = ResultCache()
        cache.put(self.key(0, "left"), {})
        cache.put(self.key(1, "left"), {})
        cache.put(self.key(0, "right"), {})
        assert cache.invalidate_gallery("left") == 2
        assert len(cache) == 1
        assert cache.get(self.key(0, "right")) is not None

    def test_zero_entries_disables_storage(self):
        cache = ResultCache(max_entries=0)
        cache.put(self.key(0), {"value": 1})
        assert len(cache) == 0
        assert cache.get(self.key(0)) is None

    def test_rejects_negative_bound(self):
        with pytest.raises(ServiceError):
            ResultCache(max_entries=-1)


# ----------------------------------------------------------------------
# Server behaviour over real sockets
# ----------------------------------------------------------------------
def serve(coroutine_factory, **server_kwargs):
    """Run one async scenario against a fresh TCP server."""

    async def scenario():
        server = EstimationServer(**server_kwargs)
        host, port = await server.start()
        try:
            return await coroutine_factory(server, host, port)
        finally:
            await server.aclose()

    return asyncio.run(scenario())


class TestServer:
    def test_concurrent_clients_match_direct_estimation(self):
        """Many clients, one micro-batch, <= 1e-9 vs the scalar path."""
        use_cases = list(all_use_cases(names()))

        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(5)]
            try:
                results = await asyncio.gather(
                    *[
                        clients[index % len(clients)].estimate(
                            use_case.applications, gallery=GALLERY
                        )
                        for index, use_case in enumerate(use_cases)
                    ]
                )
            finally:
                for client in clients:
                    await client.aclose()
            return results, server.snapshot()

        results, stats = serve(scenario, batch_window=0.01)

        suite = paper_benchmark_suite(application_count=4)
        reference = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="second_order",
            backend="python",
        )
        for use_case, served in zip(use_cases, results):
            direct = reference.estimate(use_case)
            assert served["use_case"] == list(use_case.applications)
            for app, period in direct.periods.items():
                assert served["periods"][app] == pytest.approx(period, rel=1e-9)
            for app, period in direct.isolation_periods.items():
                assert served["isolation"][app] == pytest.approx(period, rel=1e-9)
        # All 15 questions arrived concurrently: far fewer batches
        # than queries, and every query solved exactly once.
        assert stats["estimate_requests"] == len(use_cases)
        assert stats["batches"] < len(use_cases)
        assert stats["solved_queries"] == len(use_cases)

    def test_identical_queries_deduplicate_inside_a_batch(self):
        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(6)]
            try:
                results = await asyncio.gather(
                    *[
                        client.estimate(
                            [names()[0], names()[1]], gallery=GALLERY
                        )
                        for client in clients
                    ]
                )
            finally:
                for client in clients:
                    await client.aclose()
            return results, server.snapshot()

        results, stats = serve(scenario, batch_window=0.05, cache=ResultCache(0))
        assert stats["solved_queries"] == 1
        assert stats["batched_queries"] == 6
        first = results[0]["periods"]
        assert all(result["periods"] == first for result in results)

    def test_cache_hits_and_gallery_invalidation(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                first = await client.estimate([names()[0]], gallery=GALLERY)
                second = await client.estimate([names()[0]], gallery=GALLERY)
                dropped = await client.invalidate(GALLERY)
                third = await client.estimate([names()[0]], gallery=GALLERY)
            finally:
                await client.aclose()
            return first, second, dropped, third, server.snapshot()

        first, second, dropped, third, stats = serve(scenario)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["periods"] == first["periods"]
        assert dropped["pool_dropped"] is True
        assert dropped["cache_dropped"] == 1
        assert third["cached"] is False  # graph may have changed
        assert third["periods"] == first["periods"]
        assert stats["pool"]["gallery_builds"] == 2  # rebuilt once

    def test_cached_entries_never_reach_the_solver(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                for _ in range(4):
                    await client.estimate([names()[1]], gallery=GALLERY)
            finally:
                await client.aclose()
            return server.snapshot()

        stats = serve(scenario)
        assert stats["solved_queries"] == 1
        assert stats["cache"]["hits"] == 3

    def test_overload_reject_sheds_newcomers(self):
        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(5)]
            try:
                outcomes = await asyncio.gather(
                    *[
                        client.estimate(
                            [names()[index % 4]], gallery=GALLERY
                        )
                        for index, client in enumerate(clients)
                    ],
                    return_exceptions=True,
                )
            finally:
                for client in clients:
                    await client.aclose()
            return outcomes, server.snapshot()

        outcomes, stats = serve(
            scenario,
            max_pending=1,
            batch_window=0.2,
            shed_policy="reject",
        )
        served = [o for o in outcomes if isinstance(o, dict)]
        shed = [o for o in outcomes if isinstance(o, ServiceError)]
        assert len(served) == 1
        assert len(shed) == 4
        assert all("overloaded" in str(error) for error in shed)
        assert stats["shed"] == 4

    def test_overload_evict_drops_the_oldest_pending(self):
        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(4)]
            try:
                outcomes = await asyncio.gather(
                    *[
                        client.estimate(
                            [names()[index % 4]], gallery=GALLERY
                        )
                        for index, client in enumerate(clients)
                    ],
                    return_exceptions=True,
                )
            finally:
                for client in clients:
                    await client.aclose()
            return outcomes, server.snapshot()

        outcomes, stats = serve(
            scenario,
            max_pending=1,
            batch_window=0.2,
            shed_policy="evict",
        )
        served = [o for o in outcomes if isinstance(o, dict)]
        evicted = [o for o in outcomes if isinstance(o, ServiceError)]
        assert len(served) == 1
        assert len(evicted) == 3
        assert all("evicted" in str(error) for error in evicted)
        assert stats["evicted"] == 3
        assert stats["shed"] == 0

    def test_overload_downgrade_serves_a_cheaper_model(self):
        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(4)]
            try:
                results = await asyncio.gather(
                    *[
                        client.estimate(
                            list(names()), gallery=GALLERY
                        )
                        for client in clients
                    ]
                )
            finally:
                for client in clients:
                    await client.aclose()
            return results, server.snapshot()

        results, stats = serve(
            scenario,
            max_pending=1,
            batch_window=0.2,
            shed_policy="downgrade",
            cache=ResultCache(0),
        )
        degraded = [r for r in results if r["degraded"] is not None]
        full = [r for r in results if r["degraded"] is None]
        assert len(full) == 1
        assert len(degraded) == 3
        assert stats["degraded"] == 3
        assert all(r["model"] == "composability" for r in degraded)
        assert all(r["degraded"] == "second_order" for r in degraded)
        # Degraded answers are real composability estimates.
        suite = paper_benchmark_suite(application_count=4)
        reference = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="composability",
            backend="python",
        ).estimate(UseCase(names()))
        for result in degraded:
            for app, period in reference.periods.items():
                assert result["periods"][app] == pytest.approx(period, rel=1e-9)

    def test_overload_downgrade_still_bounds_the_queue(self):
        """A flood already at the degraded model cannot grow the queue
        forever: with nothing cheaper to serve, the bound rejects."""

        async def scenario(server, host, port):
            clients = [await ServiceClient.connect(host, port) for _ in range(4)]
            try:
                outcomes = await asyncio.gather(
                    *[
                        client.estimate(
                            [names()[index % 4]],
                            gallery=GALLERY,
                            model="composability",
                        )
                        for index, client in enumerate(clients)
                    ],
                    return_exceptions=True,
                )
            finally:
                for client in clients:
                    await client.aclose()
            return outcomes, server.snapshot()

        outcomes, stats = serve(
            scenario,
            max_pending=1,
            batch_window=0.2,
            shed_policy="downgrade",
            cache=ResultCache(0),
        )
        served = [o for o in outcomes if isinstance(o, dict)]
        shed = [o for o in outcomes if isinstance(o, ServiceError)]
        assert len(served) == 1
        assert len(shed) == 3
        assert all("already the degraded model" in str(e) for e in shed)
        assert stats["shed"] == 3
        assert stats["degraded"] == 0

    def test_fire_and_forget_shutdown_still_stops_the_server(self):
        """A client that sends shutdown and vanishes without reading
        the acknowledgement must still stop the server."""

        async def scenario():
            server = EstimationServer()
            host, port = await server.start()
            waiter = asyncio.ensure_future(server.wait_shutdown())
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"id": 1, "op": "shutdown"}\n')
            await writer.drain()
            writer.close()  # gone before the response is read
            await asyncio.wait_for(waiter, timeout=5)
            await server.aclose()

        asyncio.run(scenario())

    def test_stats_while_a_cold_gallery_is_solving(self):
        """The stats op is answered (pool view serialized onto the
        solver thread) even while a batch is building a gallery."""

        async def scenario(server, host, port):
            first = await ServiceClient.connect(host, port)
            second = await ServiceClient.connect(host, port)
            try:
                estimate = asyncio.ensure_future(
                    first.estimate(list(names()), gallery=GALLERY)
                )
                snapshots = []
                for _ in range(20):
                    snapshots.append(await second.stats())
                result = await estimate
            finally:
                await first.aclose()
                await second.aclose()
            return result, snapshots

        result, snapshots = serve(scenario, batch_window=0.01)
        assert result["periods"]
        assert all("pool" in snapshot for snapshot in snapshots)

    def test_solver_errors_answer_the_query_not_the_connection(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="waiting model"):
                    await client.estimate(
                        [names()[0]], gallery=GALLERY, model="psychic"
                    )
                # The connection (and server) survived the failure.
                healthy = await client.estimate([names()[0]], gallery=GALLERY)
            finally:
                await client.aclose()
            return healthy

        healthy = serve(scenario)
        assert healthy["periods"]

    def test_unknown_op_and_malformed_line_are_reported(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"id": 9, "op": "dance"}\n')
                writer.write(b"not json at all\n")
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            return [first, second]

        # Malformed lines are answered inline by the read loop while
        # valid requests run as tasks, so the two responses may arrive
        # in either order — match them by id.
        responses = {r["id"]: r for r in serve(scenario)}
        assert responses[9]["ok"] is False
        assert "unknown op" in responses[9]["error"]
        assert responses[None]["ok"] is False
        assert "undecodable" in responses[None]["error"]

    def test_ping_stats_and_estimate_once(self):
        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                pong = await client.ping()
                once = await estimate_once((host, port), [names()[2]], gallery=GALLERY)
                stats = await client.stats()
            finally:
                await client.aclose()
            return pong, once, stats

        pong, once, stats = serve(scenario)
        assert pong["pong"] is True
        assert once["periods"]
        assert stats["requests"] >= 3
        assert stats["shed_policy"] == "reject"

    def test_graceful_shutdown_drains_pending_queries(self):
        async def scenario():
            server = EstimationServer(batch_window=0.1)
            host, port = await server.start()
            clients = [await ServiceClient.connect(host, port) for _ in range(3)]
            tasks = [
                asyncio.ensure_future(
                    client.estimate(
                        [names()[index]], gallery=GALLERY
                    )
                )
                for index, client in enumerate(clients)
            ]
            await asyncio.sleep(0.02)  # queries are enqueued, unsolved
            await server.aclose()
            results = await asyncio.gather(*tasks)
            for client in clients:
                await client.aclose()
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return results, server

        results, server = asyncio.run(scenario())
        assert len(results) == 3
        for result in results:
            assert result["periods"]
        assert not server._pending

    def test_shutdown_op_releases_wait_shutdown(self):
        async def scenario():
            server = EstimationServer()
            host, port = await server.start()
            waiter = asyncio.ensure_future(server.wait_shutdown())
            client = await ServiceClient.connect(host, port)
            try:
                answer = await client.estimate([names()[0]], gallery=GALLERY)
                stopping = await client.shutdown()
                await asyncio.wait_for(waiter, timeout=5)
            finally:
                await client.aclose()
                await server.aclose()
            return answer, stopping

        answer, stopping = asyncio.run(scenario())
        assert answer["periods"]
        assert stopping == {"stopping": True}

    def test_submit_after_close_is_refused(self):
        async def scenario():
            server = EstimationServer()
            await server.start()
            await server.aclose()
            from repro.service.protocol import parse_estimate

            query = parse_estimate({"gallery": GALLERY, "use_case": [names()[0]]})
            with pytest.raises(ServiceError, match="shutting down"):
                await server._submit(query)

        asyncio.run(scenario())

    def test_one_client_can_pipeline_concurrent_queries(self):
        use_cases = list(all_use_cases(names()))[:8]

        async def scenario(server, host, port):
            client = await ServiceClient.connect(host, port)
            try:
                results = await asyncio.gather(
                    *[
                        client.estimate(
                            use_case.applications, gallery=GALLERY
                        )
                        for use_case in use_cases
                    ]
                )
            finally:
                await client.aclose()
            return results, server.snapshot()

        results, stats = serve(scenario, batch_window=0.05, cache=ResultCache(0))
        assert len(results) == len(use_cases)
        assert stats["batches"] < len(use_cases)
        for use_case, result in zip(use_cases, results):
            assert result["use_case"] == list(use_case.applications)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServiceError):
            EstimationServer(batch_window=-1)
        with pytest.raises(ServiceError):
            EstimationServer(max_batch=0)
        with pytest.raises(ServiceError):
            EstimationServer(max_pending=0)


# ----------------------------------------------------------------------
# CLI: the stdio framing end to end
# ----------------------------------------------------------------------
class TestServeCLI:
    def run_stdio(self, requests):
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--stdio",
                "--batch-window",
                "1",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        stdin = "\n".join(json.dumps(r) for r in requests) + "\n"
        out, err = process.communicate(stdin, timeout=120)
        assert process.returncode == 0, err
        return [json.loads(line) for line in out.splitlines()]

    def test_stdio_session(self):
        responses = self.run_stdio(
            [
                {"id": 1, "op": "ping"},
                {
                    "id": 2,
                    "op": "estimate",
                    "gallery": GALLERY,
                    "use_case": list(names()[:2]),
                },
                {"id": 3, "op": "shutdown"},
            ]
        )
        by_id = {response["id"]: response for response in responses}
        assert by_id[1]["result"]["pong"] is True
        assert by_id[2]["ok"] is True
        assert set(by_id[2]["result"]["periods"]) == set(names()[:2])
        assert by_id[3]["result"] == {"stopping": True}


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestServiceLoad:
    def test_client_plans_are_seeded_and_distinct(self):
        config = LoadConfig(clients=2, queries_per_client=6)
        assert _client_plan(config, 0) == _client_plan(config, 0)
        assert _client_plan(config, 0) != _client_plan(config, 1)
        replay = LoadConfig(clients=2, queries_per_client=6)
        assert _client_plan(config, 1) == _client_plan(replay, 1)

    def test_latency_histogram_quantiles(self):
        # The report's percentiles come from the registry histogram now;
        # nearest-rank off the log buckets, clamped to observed extremes.
        from repro.telemetry import Histogram

        histogram = Histogram(LATENCY_BUCKETS)
        for value in (0.004, 0.001, 0.003, 0.002):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.quantile(0.0) == pytest.approx(0.001)
        assert histogram.quantile(1.0) == pytest.approx(0.004)
        assert histogram.quantile(0.5) <= histogram.quantile(0.99)
        with pytest.raises(Exception):
            histogram.quantile(1.5)

    def test_run_load_end_to_end(self):
        report = run_load(
            LoadConfig(
                clients=3,
                queries_per_client=5,
                gallery=GallerySpec(application_count=3),
                batch_window=0.001,
            )
        )
        assert report.queries == 15
        assert report.errors == 0
        assert report.queries_per_second > 0
        assert report.latency_p99_ms >= report.latency_p50_ms
        rendered = report.render()
        assert "queries/sec" in rendered

    def test_all_error_run_reports_instead_of_crashing(self):
        report = run_load(
            LoadConfig(
                clients=2,
                queries_per_client=3,
                gallery=GallerySpec(application_count=2),
                model="not-a-model",
            )
        )
        assert report.queries == 0
        assert report.errors == 6
        assert report.latency_p50_ms == 0.0
        assert "errors" in report.render()

    def test_config_validation(self):
        with pytest.raises(Exception):
            LoadConfig(clients=0)
        with pytest.raises(Exception):
            LoadConfig(queries_per_client=0)
