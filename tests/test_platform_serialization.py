"""Platform/mapping serialization round-trips."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.platform.mapping import index_mapping
from repro.platform.platform import Platform, Processor
from repro.platform.serialization import (
    mapping_from_dict,
    mapping_from_json,
    mapping_to_dict,
    mapping_to_json,
    platform_from_dict,
    platform_to_dict,
)


class TestPlatformRoundTrip:
    def test_homogeneous(self):
        platform = Platform.homogeneous(3)
        rebuilt = platform_from_dict(platform_to_dict(platform))
        assert rebuilt.processor_names == platform.processor_names

    def test_heterogeneous_types_survive(self):
        platform = Platform(
            [Processor("risc0", "risc"), Processor("dsp0", "dsp")]
        )
        rebuilt = platform_from_dict(platform_to_dict(platform))
        assert rebuilt.processor("dsp0").processor_type == "dsp"

    def test_missing_key(self):
        with pytest.raises(MappingError):
            platform_from_dict({})


class TestMappingRoundTrip:
    def test_bindings_survive(self, two_apps):
        mapping = index_mapping(list(two_apps))
        rebuilt = mapping_from_json(mapping_to_json(mapping))
        for graph in two_apps:
            for actor in graph.actor_names:
                assert rebuilt.processor_of(
                    graph.name, actor
                ) == mapping.processor_of(graph.name, actor)

    def test_rebuilt_mapping_validates(self, two_apps):
        mapping = index_mapping(list(two_apps))
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        rebuilt.validate_against(list(two_apps))

    def test_rebuilt_mapping_drives_estimation(self, two_apps):
        from repro.core.estimator import estimate_use_case

        mapping = index_mapping(list(two_apps))
        rebuilt = mapping_from_json(mapping_to_json(mapping))
        original = estimate_use_case(list(two_apps), mapping=mapping)
        replayed = estimate_use_case(list(two_apps), mapping=rebuilt)
        assert original.periods == pytest.approx(replayed.periods)

    def test_missing_key(self):
        with pytest.raises(MappingError):
            mapping_from_dict({"bindings": {}})


class TestPriorities:
    def test_priorities_round_trip(self, two_apps):
        mapping = index_mapping(list(two_apps)).with_priorities(
            {"A": 2, "B": {"b0": 1}}
        )
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt.priorities() == mapping.priorities()
        assert rebuilt.priority_of("A", "a0") == 2.0
        assert rebuilt.priority_of("B", "b0") == 1.0
        assert rebuilt.priority_of("B", "b1") == 0.0

    def test_priorityless_mapping_document_is_unchanged(self, two_apps):
        mapping = index_mapping(list(two_apps))
        document = mapping_to_dict(mapping)
        assert "priorities" not in document

    def test_priority_of_defaults_to_zero(self, two_apps):
        mapping = index_mapping(list(two_apps))
        assert mapping.priority_of("A", "a0") == 0.0

    def test_unbound_priority_targets_rejected(self, two_apps):
        mapping = index_mapping(list(two_apps))
        with pytest.raises(MappingError):
            mapping.with_priorities({"Z": 1})
        with pytest.raises(MappingError):
            mapping.with_priorities({"A": {"nope": 1}})
