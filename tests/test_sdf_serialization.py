"""Graph serialization round-trip tests."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.sdf.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    graphs_from_json,
    graphs_to_json,
)


class TestRoundTrip:
    def test_dict_round_trip(self, app_a):
        rebuilt = graph_from_dict(graph_to_dict(app_a))
        assert rebuilt.name == app_a.name
        assert rebuilt.actor_names == app_a.actor_names
        assert len(rebuilt.channels) == len(app_a.channels)
        for original, copy in zip(app_a.channels, rebuilt.channels):
            assert original.production_rate == copy.production_rate
            assert original.consumption_rate == copy.consumption_rate
            assert original.initial_tokens == copy.initial_tokens

    def test_json_round_trip_preserves_analysis(self, app_a):
        from repro.sdf.analysis import period

        rebuilt = graph_from_json(graph_to_json(app_a))
        assert period(rebuilt) == pytest.approx(period(app_a))

    def test_multi_graph_round_trip(self, two_apps):
        rebuilt = graphs_from_json(graphs_to_json(list(two_apps)))
        assert [g.name for g in rebuilt] == ["A", "B"]

    def test_defaults_fill_in(self):
        graph = graph_from_dict(
            {
                "name": "G",
                "actors": [{"name": "a", "execution_time": 5}],
                "channels": [{"source": "a", "target": "a",
                              "initial_tokens": 1}],
            }
        )
        channel = graph.channels[0]
        assert channel.production_rate == 1
        assert channel.consumption_rate == 1

    def test_missing_key_raises_graph_error(self):
        with pytest.raises(GraphError):
            graph_from_dict({"name": "G", "actors": []})

    def test_random_graph_round_trip(self):
        from repro.generation.random_sdf import random_sdf_graph
        from repro.sdf.analysis import period

        graph = random_sdf_graph("R", seed=42)
        rebuilt = graph_from_json(graph_to_json(graph))
        assert period(rebuilt) == pytest.approx(period(graph))
