"""Byte-level determinism across backends and across worker counts.

The backend layer accelerates estimation; it must not perturb anything
the system *records*:

* :class:`~repro.generation.workload.WorkloadGenerator` traces are pure
  seeded randomness — identical bytes whatever ``REPRO_BACKEND`` says;
* the runtime manager's decision log is produced by the scalar
  admission path by design (see
  :func:`repro.core.blocking.build_profiles`), so its JSON is
  byte-identical across backends;
* a :class:`~repro.runtime.service.SweepService` sweep stores the same
  records whether misses run inline (``jobs=1``) or fan out over
  worker processes (``jobs=4``) — same keys, same bytes (only the
  append order may differ, hence the sorted comparison);
* across *backends* the store keys coincide exactly and the stored
  periods agree to the 1e-9 parity contract (the bytes of the floats
  may legitimately differ in the last bits).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.backend import numpy_available
from repro.experiments.setup import paper_benchmark_suite
from repro.generation.workload import WorkloadConfig, WorkloadGenerator
from repro.runtime.events import trace_to_json
from repro.runtime.log import log_to_json
from repro.runtime.manager import ResourceManager, gallery_from_graphs
from repro.runtime.service import GallerySpec, ResultStore, SweepService

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

GALLERY = GallerySpec(kind="paper", seed=7, application_count=4)


def _workload_trace_json(monkeypatch, backend: str) -> str:
    monkeypatch.setenv("REPRO_BACKEND", backend)
    generator = WorkloadGenerator(
        ["A", "B", "C"],
        config=WorkloadConfig(
            mean_interarrival=30.0, mean_holding=200.0
        ),
    )
    trace = generator.generate(seed=42, events=500)
    return trace_to_json(trace)


def test_workload_traces_are_byte_identical_across_backends(
    monkeypatch,
):
    scalar = _workload_trace_json(monkeypatch, "python")
    vector = _workload_trace_json(monkeypatch, "numpy")
    assert scalar.encode() == vector.encode()


def _runtime_log_json(monkeypatch, backend: str) -> str:
    monkeypatch.setenv("REPRO_BACKEND", backend)
    suite = paper_benchmark_suite(application_count=4)
    specs = gallery_from_graphs(list(suite.graphs), slack=1.5)
    generator = WorkloadGenerator(
        [spec.name for spec in specs],
        quality_levels={
            spec.name: spec.ladder.level_names for spec in specs
        },
        config=WorkloadConfig(
            mean_interarrival=40.0, mean_holding=250.0
        ),
    )
    trace = generator.generate(seed=99, events=400)
    manager = ResourceManager(
        specs, mapping=suite.mapping, policy="downgrade"
    )
    log = manager.replay(trace)
    return log_to_json(log)


def _canonical_log(serialized: str) -> bytes:
    """Log JSON with wall-clock fields nulled.

    ``elapsed_seconds``/``decision_seconds`` are measured wall time and
    differ even between two runs of the *same* configuration; every
    decision, period, utilization and downgrade must match to the byte.
    """
    data = json.loads(serialized)
    data["elapsed_seconds"] = None
    for record in data["records"]:
        record["decision_seconds"] = None
    return json.dumps(data, sort_keys=True).encode()


def test_runtime_logs_are_byte_identical_across_backends(monkeypatch):
    scalar = _runtime_log_json(monkeypatch, "python")
    vector = _runtime_log_json(monkeypatch, "numpy")
    assert _canonical_log(scalar) == _canonical_log(vector)


def _sorted_store_lines(path) -> list:
    return sorted(
        line
        for line in path.read_text().splitlines()
        if line.strip()
    )


def _store_keys(path) -> list:
    return sorted(
        json.dumps(json.loads(line)["key"], sort_keys=True)
        for line in path.read_text().splitlines()
        if line.strip()
    )


class TestJobsDeterminism:
    def test_store_is_byte_identical_across_worker_counts(
        self, tmp_path
    ):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("needs >= 2 CPUs for a meaningful pool")
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = SweepService(
            store=ResultStore(serial_path), jobs=1
        ).sweep(GALLERY)
        parallel = SweepService(
            store=ResultStore(parallel_path), jobs=4
        ).sweep(GALLERY)
        assert serial.use_case_count == parallel.use_case_count
        assert _sorted_store_lines(serial_path) == _sorted_store_lines(
            parallel_path
        )

    def test_sweep_results_ignore_worker_count(self, tmp_path):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("needs >= 2 CPUs for a meaningful pool")
        serial = SweepService(jobs=1).sweep(GALLERY)
        parallel = SweepService(jobs=4).sweep(GALLERY)
        for one, many in zip(serial.results, parallel.results):
            assert one.use_case == many.use_case
            assert one.periods == many.periods
            assert one.isolation == many.isolation


class TestBackendStoreKeys:
    def test_store_keys_coincide_across_backends(self, tmp_path):
        scalar_path = tmp_path / "scalar.jsonl"
        vector_path = tmp_path / "vector.jsonl"
        scalar = SweepService(
            store=ResultStore(scalar_path), backend="python"
        ).sweep(GALLERY)
        vector = SweepService(
            store=ResultStore(vector_path), backend="numpy"
        ).sweep(GALLERY)
        assert _store_keys(scalar_path) == _store_keys(vector_path)
        for one, two in zip(scalar.results, vector.results):
            assert one.use_case == two.use_case
            for app, period in one.periods.items():
                assert two.periods[app] == pytest.approx(
                    period, rel=1e-9
                )
