"""Trace invariant checker and waiting-model protocol conformance."""

from __future__ import annotations

import pytest

from repro.core.approximation import OrderMWaitingModel
from repro.core.composability import CompositionWaitingModel
from repro.core.exact import ExactWaitingModel
from repro.core.waiting import WaitingModel, make_waiting_model
from repro.simulation.trace import (
    TraceEntry,
    assert_mutual_exclusion,
    format_gantt,
)
from repro.wcrt.round_robin import WorstCaseRRWaitingModel
from repro.wcrt.tdma import TDMAWaitingModel


class TestMutualExclusionChecker:
    def test_accepts_sequential_firings(self):
        trace = [
            TraceEntry("p0", "A", "a", 0.0, 10.0),
            TraceEntry("p0", "B", "b", 10.0, 20.0),
        ]
        assert_mutual_exclusion(trace)

    def test_accepts_parallel_on_distinct_processors(self):
        trace = [
            TraceEntry("p0", "A", "a", 0.0, 10.0),
            TraceEntry("p1", "B", "b", 5.0, 15.0),
        ]
        assert_mutual_exclusion(trace)

    def test_rejects_overlap_on_one_processor(self):
        trace = [
            TraceEntry("p0", "A", "a", 0.0, 10.0),
            TraceEntry("p0", "B", "b", 9.0, 15.0),
        ]
        with pytest.raises(AssertionError):
            assert_mutual_exclusion(trace)

    def test_label(self):
        entry = TraceEntry("p0", "A", "a0", 0.0, 1.0)
        assert entry.label == "A.a0"


class TestGanttRendering:
    def test_respects_time_limit(self):
        trace = [
            TraceEntry("p0", "A", "a", 0.0, 10.0),
            TraceEntry("p0", "B", "b", 500.0, 510.0),
        ]
        text = format_gantt(trace, time_limit=100.0)
        assert "A.a"[0] in text
        assert "B.b" not in text

    def test_lane_per_processor(self):
        trace = [
            TraceEntry("p0", "A", "a", 0.0, 10.0),
            TraceEntry("p1", "A", "b", 0.0, 10.0),
        ]
        text = format_gantt(trace)
        assert text.count("|") >= 6  # three rows with two bars each


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "model",
        [
            ExactWaitingModel(),
            OrderMWaitingModel(2),
            OrderMWaitingModel(4),
            CompositionWaitingModel(),
            CompositionWaitingModel(incremental=True),
            WorstCaseRRWaitingModel(),
            TDMAWaitingModel(),
        ],
    )
    def test_runtime_checkable_protocol(self, model):
        assert isinstance(model, WaitingModel)
        assert isinstance(model.name, str)
        assert isinstance(model.complexity, str)

    def test_factory_spec_names_are_case_insensitive(self):
        assert make_waiting_model("EXACT").name == "exact"
        assert make_waiting_model(" Second_Order ").name == "order-2"

    @pytest.mark.parametrize(
        "spec,expected_zero",
        [
            ("exact", True),
            ("second_order", True),
            ("composability", True),
            ("worst_case", True),
            ("tdma", True),
        ],
    )
    def test_all_models_agree_waiting_is_zero_without_others(
        self, spec, expected_zero
    ):
        from repro.core.blocking import build_profile

        model = make_waiting_model(spec)
        own = build_profile("A", "x", tau=10, repetitions=1, period=100)
        assert model.waiting_time(own, []) == 0.0
