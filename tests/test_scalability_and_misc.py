"""Scalability experiment module and structural odds-and-ends."""

from __future__ import annotations

import pytest

from repro.experiments.scalability import run_scalability
from repro.sdf.analysis import period
from repro.sdf.builder import GraphBuilder
from repro.sdf.hsdf import to_hsdf


class TestScalabilityExperiment:
    def test_points_and_rendering(self):
        result = run_scalability(
            application_counts=(2, 3),
            simulation_iterations=20,
            repeats=1,
        )
        assert [p.applications for p in result.points] == [2, 3]
        assert result.points[0].use_case_count == 4
        assert result.points[1].use_case_count == 8
        for point in result.points:
            assert point.simulation_ms > 0
            for method in result.methods:
                assert point.estimation_ms[method] > 0
        text = result.render()
        assert "Scalability" in text
        assert "2^3" in text

    def test_suites_are_prefix_consistent(self):
        from repro.experiments.setup import paper_benchmark_suite

        small = paper_benchmark_suite(application_count=3)
        large = paper_benchmark_suite(application_count=5)
        for a, b in zip(small.graphs, large.graphs[:3]):
            assert a.name == b.name
            assert a.execution_times() == b.execution_times()


class TestParallelChannels:
    """Two channels between the same actor pair are legal SDF."""

    def _graph(self, tokens_fast=1, tokens_slow=3):
        return (
            GraphBuilder("par")
            .actor("a", 10)
            .actor("b", 20)
            .channel("a", "b", name="data")
            .channel("b", "a", initial_tokens=tokens_fast, name="credit1")
            .channel("b", "a", initial_tokens=tokens_slow, name="credit2")
            .build()
        )

    def test_period_bound_by_tightest_parallel_channel(self):
        graph = self._graph(tokens_fast=1, tokens_slow=3)
        # credit1 (1 token) forces full serialization: 30 per iteration.
        assert period(graph) == pytest.approx(30.0)

    def test_loosening_the_tight_channel_pipelines(self):
        graph = self._graph(tokens_fast=2, tokens_slow=3)
        # Both credit channels now allow 2 in flight; b (20) binds.
        assert period(graph) == pytest.approx(20.0)

    def test_hsdf_keeps_min_delay_edge(self):
        graph = self._graph(tokens_fast=1, tokens_slow=3)
        hsdf = to_hsdf(graph)
        back_edges = [
            e
            for e in hsdf.edges
            if e.source == ("b", 0) and e.target == ("a", 0)
        ]
        assert len(back_edges) == 1
        assert back_edges[0].delay == 1

    def test_statespace_agrees(self):
        from repro.sdf.statespace import self_timed_period

        for fast, slow in ((1, 3), (2, 3), (2, 2)):
            graph = self._graph(fast, slow)
            assert self_timed_period(graph) == pytest.approx(
                period(graph)
            )


class TestPublicAPI:
    def test_top_level_all_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_sdf_all_importable(self):
        import repro.sdf as sdf

        for name in sdf.__all__:
            assert hasattr(sdf, name), name

    def test_core_all_importable(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
