"""Elementary symmetric polynomial tests."""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.symmetric import (
    elementary_symmetric,
    elementary_symmetric_all,
    leave_one_out,
)
from repro.exceptions import AnalysisError


def naive_elementary(values, order):
    if order == 0:
        return 1.0
    return sum(
        math.prod(combo)
        for combo in itertools.combinations(values, order)
    )


class TestElementarySymmetric:
    def test_small_case(self):
        values = [0.5, 0.25, 0.2]
        assert elementary_symmetric(values, 0) == 1.0
        assert elementary_symmetric(values, 1) == pytest.approx(0.95)
        assert elementary_symmetric(values, 2) == pytest.approx(
            0.5 * 0.25 + 0.5 * 0.2 + 0.25 * 0.2
        )
        assert elementary_symmetric(values, 3) == pytest.approx(
            0.5 * 0.25 * 0.2
        )

    def test_order_above_length_is_zero(self):
        assert elementary_symmetric([0.1, 0.2], 3) == 0.0

    def test_empty_values(self):
        assert elementary_symmetric_all([]) == [1.0]

    def test_truncation(self):
        values = [0.1, 0.2, 0.3, 0.4]
        truncated = elementary_symmetric_all(values, max_order=2)
        assert len(truncated) == 3
        full = elementary_symmetric_all(values)
        assert truncated == pytest.approx(full[:3])

    def test_negative_order_rejected(self):
        with pytest.raises(AnalysisError):
            elementary_symmetric([0.1], -1)

    @given(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=0, max_size=8
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_enumeration(self, values):
        coefficients = elementary_symmetric_all(values)
        for order, coefficient in enumerate(coefficients):
            assert coefficient == pytest.approx(
                naive_elementary(values, order), abs=1e-9
            )

    @given(
        st.lists(
            st.floats(0.01, 1.0, allow_nan=False), min_size=1, max_size=8
        ),
        st.permutations(range(8)),
    )
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariance(self, values, permutation):
        shuffled = [
            values[i % len(values)] for i in permutation[: len(values)]
        ]
        # Same multiset (possibly reordered with duplicates trimmed to
        # same length) must give identical polynomials.
        shuffled = sorted(values)
        assert elementary_symmetric_all(shuffled) == pytest.approx(
            elementary_symmetric_all(values)
        )


class TestLeaveOneOut:
    def test_matches_direct_computation(self):
        values = [0.5, 0.25, 0.2, 0.35]
        full = elementary_symmetric_all(values)
        for i, excluded in enumerate(values):
            rest = values[:i] + values[i + 1:]
            expected = elementary_symmetric_all(rest)
            derived = leave_one_out(full, excluded, max_order=len(rest))
            assert derived == pytest.approx(expected, abs=1e-9)

    def test_truncated_leave_one_out(self):
        values = [0.1, 0.4, 0.3, 0.6, 0.2]
        full = elementary_symmetric_all(values, max_order=3)
        rest = values[1:]
        derived = leave_one_out(full, values[0], max_order=3)
        expected = elementary_symmetric_all(rest, max_order=3)
        assert derived == pytest.approx(expected, abs=1e-9)

    def test_beyond_available_order_rejected(self):
        full = elementary_symmetric_all([0.1, 0.2], max_order=1)
        with pytest.raises(AnalysisError):
            leave_one_out(full, 0.1, max_order=2)

    @given(
        st.lists(
            st.floats(0.01, 0.95, allow_nan=False), min_size=2, max_size=8
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_leave_one_out(self, values):
        full = elementary_symmetric_all(values)
        rest = values[1:]
        derived = leave_one_out(full, values[0], max_order=len(rest))
        expected = elementary_symmetric_all(rest)
        assert derived == pytest.approx(expected, abs=1e-7)
