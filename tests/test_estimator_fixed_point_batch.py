"""Batched fixed-point refinement vs. the scalar reference loop.

``estimate_many(..., iterations > 1)`` on a vectorized backend iterates
the *whole* use-case batch with a per-row convergence mask: converged
rows freeze (keeping their final pass's waiting/response values),
active rows keep refining.  The contract is the library-wide backend
parity band (<= 1e-9 relative, like ``tests/test_backend_parity.py``),
plus *exact* agreement on the per-row iteration counts — the mask must
freeze precisely the rows the scalar loop's early break would stop —
and the same errors on the same inputs.  Third-party batch kernels
that cannot consume per-row probabilities (no ``batch_rowwise`` flag)
must fall back to the scalar loop instead of getting wrong shapes.
"""

from __future__ import annotations

import itertools

import pytest

from repro.backend import numpy_available
from repro.core.estimator import ProbabilisticEstimator
from repro.core.waiting import supports_batch, supports_rowwise_batch
from repro.exceptions import AnalysisError
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.usecase import UseCase

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

TOLERANCE = 1e-9

MODELS = (
    "exact",
    "second_order",
    "composability",
    "composability_incremental",
    "priority_preemptive",
    "worst_case",
    "wrr:A=2",
    "tdma",
)


@pytest.fixture(scope="module")
def suite():
    return paper_benchmark_suite(seed=11, application_count=4)


@pytest.fixture(scope="module")
def use_cases(suite):
    names = [g.name for g in suite.graphs]
    return [
        UseCase(combination)
        for size in range(1, len(names) + 1)
        for combination in itertools.combinations(names, size)
    ]


def _estimator(suite, model, backend):
    return ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model=model,
        backend=backend,
    )


def _assert_parity(scalar_results, batched_results):
    for scalar, batched in zip(scalar_results, batched_results):
        assert scalar.use_case == batched.use_case
        assert scalar.iterations_used == batched.iterations_used, (
            scalar.use_case
        )
        for app, period in scalar.periods.items():
            assert (
                abs(batched.periods[app] - period)
                <= TOLERANCE * max(1.0, abs(period))
            ), (scalar.use_case, app)
        for key, waiting in scalar.waiting_times.items():
            assert (
                abs(batched.waiting_times[key] - waiting)
                <= TOLERANCE * max(1.0, abs(waiting))
            ), (scalar.use_case, key)
        for key, response in scalar.response_times.items():
            assert (
                abs(batched.response_times[key] - response)
                <= TOLERANCE * max(1.0, abs(response))
            ), (scalar.use_case, key)


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("iterations", (2, 5))
def test_batched_refinement_matches_scalar(
    suite, use_cases, model, iterations
):
    scalar = _estimator(suite, model, "python").estimate_many(
        use_cases, iterations=iterations
    )
    batched = _estimator(suite, model, "numpy").estimate_many(
        use_cases, iterations=iterations
    )
    _assert_parity(scalar, batched)


def test_iteration_capped_rows_report_the_cap(suite, use_cases):
    """``tolerance=0`` keeps contended rows active to the cap while
    contention-free rows still converge (their period is exactly the
    isolation period every pass) — the mask must split the batch the
    same way the scalar early break does."""
    iterations = 4
    scalar = _estimator(suite, "second_order", "python").estimate_many(
        use_cases, iterations=iterations, tolerance=0.0
    )
    batched = _estimator(suite, "second_order", "numpy").estimate_many(
        use_cases, iterations=iterations, tolerance=0.0
    )
    _assert_parity(scalar, batched)
    counts = [result.iterations_used for result in batched]
    singleton = [
        result.iterations_used
        for result in batched
        if len(list(result.use_case)) == 1
    ]
    # Isolated applications re-produce their isolation period exactly.
    assert singleton and all(count == 2 for count in singleton)
    # The gallery's contended rows keep moving at zero tolerance.
    assert max(counts) == iterations


def test_loose_tolerance_freezes_every_row(suite, use_cases):
    batched = _estimator(suite, "second_order", "numpy").estimate_many(
        use_cases, iterations=6, tolerance=0.5
    )
    assert all(result.iterations_used == 2 for result in batched)


def test_mixed_convergence_matches_scalar_per_row(suite, use_cases):
    """Default tolerance, enough passes that rows converge at
    different iterations — exact per-row agreement."""
    scalar = _estimator(suite, "exact", "python").estimate_many(
        use_cases, iterations=6
    )
    batched = _estimator(suite, "exact", "numpy").estimate_many(
        use_cases, iterations=6
    )
    assert [r.iterations_used for r in scalar] == [
        r.iterations_used for r in batched
    ]


class _NegativeModel:
    """A broken model: negative waiting whenever there is contention.

    Implements the full batch protocol (``batch_rowwise`` included) so
    the estimator's negative-waiting guard is reached on both paths.
    """

    name = "negative-test"
    complexity = "O(1)"
    batch_rowwise = True

    def waiting_time(self, own, others):
        return -1.0 if others else 0.0

    def waiting_times_batch(self, vectors, inc, own_active, xp):
        contenders = inc.sum(axis=2)
        return xp.where(contenders > 0, -1.0, 0.0)


def test_negative_waiting_error_message_parity(suite):
    full = [UseCase(tuple(g.name for g in suite.graphs))]
    errors = {}
    for backend in ("python", "numpy"):
        estimator = _estimator(suite, _NegativeModel(), backend)
        with pytest.raises(AnalysisError) as info:
            estimator.estimate_many(full, iterations=3)
        errors[backend] = str(info.value)
    assert errors["python"] == errors["numpy"]
    assert "returned negative waiting" in errors["python"]


def test_row_probability_over_one_matches_scalar_message(suite):
    """The batched per-row Definition 4 must reject utilization > 1
    with the scalar :func:`blocking_probability` message format."""
    estimator = _estimator(suite, "second_order", "numpy")
    xp = estimator.backend.xp
    structure = estimator._batch_structure_for()
    processor = structure.processors[0]
    periods = xp.ones((1, len(structure.app_columns)))
    with pytest.raises(AnalysisError) as info:
        estimator._row_probabilities(processor, periods, xp)
    message = str(info.value)
    assert "exceeds 1: actor busy time tau*q=" in message
    assert "exceeds period 1" in message


class _OneDimensionalBatchModel:
    """A third-party kernel that only understands shared ``(n,)``
    probability vectors — no ``batch_rowwise`` opt-in."""

    name = "one-dim-batch"
    complexity = "O(n)"

    def waiting_time(self, own, others):
        return sum(other.tau for other in others)

    def waiting_times_batch(self, vectors, inc, own_active, xp):
        taus = xp.asarray(vectors.tau, dtype=float)
        return inc @ taus


def test_one_dimensional_batch_model_falls_back_for_refinement(
    suite, use_cases
):
    model = _OneDimensionalBatchModel()
    assert supports_batch(model)
    assert not supports_rowwise_batch(model)
    batched = _estimator(suite, model, "numpy")
    # Single-pass estimates may batch; refinement must not.
    assert batched._can_batch(1)
    assert not batched._can_batch(2)
    scalar = _estimator(suite, model, "python").estimate_many(
        use_cases[:6], iterations=3
    )
    fallback = batched.estimate_many(use_cases[:6], iterations=3)
    _assert_parity(scalar, fallback)


def test_builtins_declare_rowwise_batch():
    from repro.core.waiting import make_waiting_model

    for spec in MODELS:
        model = make_waiting_model(spec)
        assert supports_rowwise_batch(model), spec
