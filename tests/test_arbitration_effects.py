"""Arbitration-policy semantics: fairness and starvation.

Unit-level counterpart of the arbitration ablation bench: a crafted
three-application system in which two high-priority applications can
keep a shared processor permanently busy.  FCFS and round-robin serve
everyone; static priority starves the third application — the reason
fair arbitration is a prerequisite for the paper's analysis.
"""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError, DeadlockError
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.sdf.builder import GraphBuilder
from repro.simulation.engine import SimulationConfig, Simulator


def _greedy_app(name: str, shared_actor: str, helper: str):
    """Two-actor ring that re-requests the shared processor instantly.

    Two tokens circulate, and the helper actor is fast, so a fresh
    firing of the shared actor is ready the moment the previous one
    completes.
    """
    return (
        GraphBuilder(name)
        .actor(shared_actor, 10)
        .actor(helper, 1)
        .channel(shared_actor, helper)
        .channel(helper, shared_actor, initial_tokens=2)
        .build()
    )


@pytest.fixture
def contended_trio():
    x = _greedy_app("X", "x", "xh")
    y = _greedy_app("Y", "y", "yh")
    z = _greedy_app("Z", "z", "zh")
    platform = Platform.homogeneous(4)
    mapping = Mapping(
        platform,
        {
            "X": {"x": "proc0", "xh": "proc1"},
            "Y": {"y": "proc0", "yh": "proc2"},
            "Z": {"z": "proc0", "zh": "proc3"},
        },
    )
    return [x, y, z], mapping


class TestFairPoliciesServeEveryone:
    @pytest.mark.parametrize("policy", ["fcfs", "round_robin"])
    def test_all_applications_progress(self, contended_trio, policy):
        graphs, mapping = contended_trio
        result = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=30, arbitration=policy
            ),
        ).run()
        for name in ("X", "Y", "Z"):
            assert result.metrics[name].iterations >= 30

    def test_fcfs_shares_roughly_equally(self, contended_trio):
        graphs, mapping = contended_trio
        result = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(target_iterations=50),
        ).run()
        periods = [result.period_of(n) for n in ("X", "Y", "Z")]
        assert max(periods) / min(periods) < 1.2


class TestPriorityStarvation:
    def test_lowest_priority_application_starves(self, contended_trio):
        graphs, mapping = contended_trio
        with pytest.raises((AnalysisError, DeadlockError)):
            # Z never accumulates enough iterations inside the horizon:
            # X and Y always have a request queued when proc0 frees.
            Simulator(
                graphs,
                mapping=mapping,
                config=SimulationConfig(
                    target_iterations=None,
                    horizon=5_000.0,
                    arbitration="priority",
                ),
            ).run()

    def test_favoured_applications_run_at_full_speed(self, contended_trio):
        graphs, mapping = contended_trio
        simulator = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(
                target_iterations=None,
                horizon=5_000.0,
                arbitration="priority",
            ),
        )
        try:
            simulator.run()
        except (AnalysisError, DeadlockError):
            pass
        # X and Y split proc0 between them: ~2 * 10 per iteration each.
        x_done = simulator._trackers["X"].completion_times
        z_done = simulator._trackers["Z"].completion_times
        assert len(x_done) > 10 * max(1, len(z_done))
