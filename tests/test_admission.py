"""Run-time admission controller tests."""

from __future__ import annotations

import pytest

from repro.admission.controller import AdmissionController
from repro.exceptions import AdmissionError
from repro.platform.mapping import index_mapping
from repro.sdf.analysis import period


@pytest.fixture
def controller(two_apps):
    return AdmissionController(index_mapping(list(two_apps)))


class TestAdmission:
    def test_first_app_admitted_at_isolation_period(
        self, controller, app_a
    ):
        decision = controller.request_admission(app_a, max_period=350)
        assert decision.admitted
        assert decision.estimated_periods["A"] == pytest.approx(300.0)
        assert controller.admitted_applications == ("A",)

    def test_second_app_sees_contention(self, controller, two_apps):
        a, b = two_apps
        controller.request_admission(a)
        decision = controller.request_admission(b)
        assert decision.admitted
        # Both apps now estimated at the paper's contended ~358.33.
        assert decision.estimated_periods["A"] == pytest.approx(1075 / 3)
        assert decision.estimated_periods["B"] == pytest.approx(1075 / 3)

    def test_rejection_when_candidate_requirement_too_tight(
        self, controller, two_apps
    ):
        a, b = two_apps
        controller.request_admission(a)
        decision = controller.request_admission(b, max_period=310)
        assert not decision.admitted
        assert "B" in decision.reason
        # Rejection rolls back: B is not admitted.
        assert controller.admitted_applications == ("A",)

    def test_rejection_protects_resident_app(self, controller, two_apps):
        a, b = two_apps
        controller.request_admission(a, max_period=320)
        decision = controller.request_admission(b)
        assert not decision.admitted
        assert "A" in decision.reason

    def test_double_admission_rejected(self, controller, app_a):
        controller.request_admission(app_a)
        with pytest.raises(AdmissionError):
            controller.request_admission(app_a)

    def test_estimated_period_query(self, controller, two_apps):
        a, b = two_apps
        controller.request_admission(a)
        controller.request_admission(b)
        assert controller.estimated_period("A") == pytest.approx(1075 / 3)

    def test_unknown_app_queries_raise(self, controller):
        with pytest.raises(AdmissionError):
            controller.estimated_period("A")
        with pytest.raises(AdmissionError):
            controller.withdraw("A")


class TestWithdrawal:
    def test_withdraw_restores_isolation(self, controller, two_apps):
        a, b = two_apps
        controller.request_admission(a)
        controller.request_admission(b)
        controller.withdraw("B")
        assert controller.admitted_applications == ("A",)
        assert controller.estimated_period("A") == pytest.approx(
            300.0, rel=1e-6
        )

    def test_withdraw_then_readmit(self, controller, two_apps):
        a, b = two_apps
        controller.request_admission(a)
        controller.request_admission(b)
        controller.withdraw("B")
        decision = controller.request_admission(b)
        assert decision.admitted

    def test_aggregates_return_to_empty(self, controller, two_apps):
        a, b = two_apps
        controller.request_admission(a)
        controller.request_admission(b)
        controller.withdraw("A")
        controller.withdraw("B")
        for processor in ("proc0", "proc1", "proc2"):
            aggregate = controller.aggregate_of(processor)
            assert aggregate.probability == pytest.approx(0.0, abs=1e-9)
            assert aggregate.waiting_product == pytest.approx(
                0.0, abs=1e-9
            )


class TestDriftAndRebuild:
    def test_rebuild_matches_fresh_composition(self, two_apps):
        a, b = two_apps
        controller = AdmissionController(index_mapping([a, b]))
        # Churn: admit/withdraw cycles accumulate (x)-operator drift.
        for _ in range(5):
            controller.request_admission(a)
            controller.request_admission(b)
            controller.withdraw("A")
            controller.withdraw("B")
        controller.request_admission(a)
        controller.request_admission(b)
        drifted = {
            p: controller.aggregate_of(p) for p in ("proc0", "proc1")
        }
        controller.rebuild()
        for processor, aggregate in drifted.items():
            rebuilt = controller.aggregate_of(processor)
            assert aggregate.probability == pytest.approx(
                rebuilt.probability, abs=1e-6
            )
            assert aggregate.waiting_product == pytest.approx(
                rebuilt.waiting_product, abs=1e-4
            )

    def test_admission_matches_batch_estimator(self, two_apps):
        """Incremental admission = the batch composability estimator."""
        from repro.core.estimator import ProbabilisticEstimator

        a, b = two_apps
        controller = AdmissionController(index_mapping([a, b]))
        controller.request_admission(a)
        controller.request_admission(b)
        batch = ProbabilisticEstimator(
            [a, b], waiting_model="composability"
        ).estimate()
        assert controller.estimated_period("A") == pytest.approx(
            batch.periods["A"], rel=1e-6
        )
        assert controller.estimated_period("B") == pytest.approx(
            batch.periods["B"], rel=1e-6
        )

    def test_mapping_validation(self, two_apps, app_a):
        controller = AdmissionController(index_mapping([two_apps[1]]))
        with pytest.raises(Exception):
            controller.request_admission(app_a)


class TestAutoRebuild:
    def churn(self, controller, two_apps, cycles):
        a, b = two_apps
        performed = 0
        while performed < cycles:
            controller.request_admission(a)
            controller.request_admission(b)
            controller.withdraw("A")
            controller.withdraw("B")
            performed += 4

    def test_counters_track_cycles(self, two_apps):
        controller = AdmissionController(index_mapping(list(two_apps)))
        self.churn(controller, two_apps, 8)
        assert controller.total_cycles == 8
        assert controller.cycles_since_rebuild == 8
        assert controller.rebuild_count == 0
        controller.rebuild()
        assert controller.cycles_since_rebuild == 0
        assert controller.total_cycles == 8
        assert controller.rebuild_count == 1

    def test_interval_triggers_rebuild(self, two_apps):
        controller = AdmissionController(
            index_mapping(list(two_apps)), rebuild_interval=3
        )
        self.churn(controller, two_apps, 8)  # 8 cycles -> 2 rebuilds
        assert controller.total_cycles == 8
        assert controller.rebuild_count == 2
        assert controller.cycles_since_rebuild == 2

    def test_interval_one_keeps_aggregates_exact(self, two_apps):
        a, b = two_apps
        auto = AdmissionController(
            index_mapping([a, b]), rebuild_interval=1
        )
        manual = AdmissionController(index_mapping([a, b]))
        for _ in range(5):
            for controller in (auto, manual):
                controller.request_admission(a)
                controller.request_admission(b)
                controller.withdraw("A")
                controller.withdraw("B")
        auto.request_admission(a)
        auto.request_admission(b)
        manual.request_admission(a)
        manual.request_admission(b)
        manual.rebuild()
        for processor in ("proc0", "proc1", "proc2"):
            assert auto.aggregate_of(processor) == manual.aggregate_of(
                processor
            )

    def test_bad_interval_rejected(self, two_apps):
        with pytest.raises(AdmissionError):
            AdmissionController(
                index_mapping(list(two_apps)), rebuild_interval=0
            )


class TestEngineBackedController:
    def test_engine_estimates_match_cold_controller(self, two_apps):
        from repro.analysis_engine import build_engines

        a, b = two_apps
        cold = AdmissionController(index_mapping([a, b]))
        warm = AdmissionController(
            index_mapping([a, b]),
            engines=build_engines([a, b]),
        )
        for controller in (cold, warm):
            controller.request_admission(a)
            controller.request_admission(b)
        for app in ("A", "B"):
            assert warm.estimated_period(app) == pytest.approx(
                cold.estimated_period(app), rel=1e-9
            )

    def test_engine_serves_scaled_variant_graphs(self, two_apps):
        from repro.analysis_engine import build_engines

        a, b = two_apps
        half = a.with_execution_times(
            {
                actor.name: actor.execution_time * 0.5
                for actor in a.actors
            }
        )
        engines = build_engines([a, b])
        warm = AdmissionController(
            index_mapping([a, b]), engines=engines
        )
        decision = warm.request_admission(half)
        assert decision.admitted
        # The engine answers for the variant: isolation period halves.
        assert decision.estimated_periods["A"] == pytest.approx(150.0)
        cold = AdmissionController(index_mapping([a, b]))
        cold_decision = cold.request_admission(half)
        assert decision.estimated_periods["A"] == pytest.approx(
            cold_decision.estimated_periods["A"], rel=1e-9
        )

    def test_admit_unchecked_bypasses_requirements(self, two_apps):
        a, b = two_apps
        controller = AdmissionController(index_mapping([a, b]))
        controller.request_admission(a, max_period=320)
        # Checked admission refuses (A would exceed 320)...
        assert not controller.request_admission(b).admitted
        # ...the unchecked path commits regardless.
        controller.admit_unchecked(b, max_period=500)
        assert controller.admitted_applications == ("A", "B")
        assert controller.required_period_of("B") == 500
        with pytest.raises(AdmissionError):
            controller.admit_unchecked(b)
