"""Validation of waiting-time claims against observed queueing delays.

The engine records, per actor, the time between each processor request
and its grant.  That makes two of the paper's claims directly testable:

* the non-preemptive round-robin WCRT bound (ref. [6]) is *sound*: no
  observed delay under round-robin arbitration ever exceeds it;
* the probabilistic estimate targets the *expected* delay: across a
  contended system the estimated waiting mass sits near the observed
  mass (it cannot be sound per-sample, which is exactly why the paper
  aims at soft real-time).
"""

from __future__ import annotations

import pytest

from repro.core.estimator import ProbabilisticEstimator
from repro.experiments.setup import paper_benchmark_suite
from repro.platform.usecase import UseCase
from repro.simulation.engine import SimulationConfig, Simulator


@pytest.fixture(scope="module")
def contended_run():
    suite = paper_benchmark_suite(application_count=5)
    result = Simulator(
        list(suite.graphs),
        mapping=suite.mapping,
        config=SimulationConfig(target_iterations=150),
    ).run()
    return suite, result


class TestObservedWaiting:
    def test_waiting_recorded_for_every_actor(self, contended_run):
        suite, result = contended_run
        for graph in suite.graphs:
            for actor in graph.actors:
                key = (graph.name, actor.name)
                assert key in result.waiting
                assert result.waiting[key].samples > 0

    def test_isolated_app_never_waits(self, app_a):
        result = Simulator(
            [app_a],
            config=SimulationConfig(target_iterations=30),
        ).run()
        for statistics in result.waiting.values():
            assert statistics.maximum == pytest.approx(0.0, abs=1e-9)

    def test_contention_produces_waiting(self, contended_run):
        suite, result = contended_run
        total_mean = sum(s.mean for s in result.waiting.values())
        assert total_mean > 0


class TestWorstCaseSoundness:
    def test_round_robin_delays_never_exceed_wcrt_bound(self):
        """Ref. [6] soundness: observed waiting <= sum of others' taus."""
        suite = paper_benchmark_suite(application_count=5)
        result = Simulator(
            list(suite.graphs),
            mapping=suite.mapping,
            config=SimulationConfig(
                target_iterations=100, arbitration="round_robin"
            ),
        ).run()
        taus = {
            (g.name, a.name): a.execution_time
            for g in suite.graphs
            for a in g.actors
        }
        for processor in suite.platform.processor_names:
            residents = suite.mapping.actors_on(
                processor, [g.name for g in suite.graphs]
            )
            for app, actor in residents:
                bound = sum(
                    taus[other]
                    for other in residents
                    if other != (app, actor)
                )
                observed = result.waiting.get((app, actor))
                if observed is None:
                    continue
                assert observed.maximum <= bound + 1e-6, (
                    app,
                    actor,
                    observed.maximum,
                    bound,
                )

    def test_fcfs_delays_can_exceed_probabilistic_estimate(
        self, contended_run
    ):
        """The estimate is an *expectation*, not a bound: somewhere in a
        contended system the observed maximum exceeds the estimated
        mean.  (This is the soft-RT caveat the paper states.)"""
        suite, result = contended_run
        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="exact",
        )
        estimate = estimator.estimate(UseCase(suite.application_names))
        exceeded = 0
        for key, statistics in result.waiting.items():
            if statistics.maximum > estimate.waiting_times[key] + 1e-9:
                exceeded += 1
        assert exceeded > 0


class TestEstimatedVsObservedMass:
    def test_total_waiting_mass_in_band(self, contended_run):
        """Aggregate estimated waiting stays within a factor of ~3 of
        the observed aggregate (per-actor errors are larger — resource
        contention couples the supposedly independent arrivals, as the
        paper concedes in Section 3.1)."""
        suite, result = contended_run
        estimator = ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model="exact",
        )
        estimate = estimator.estimate(UseCase(suite.application_names))
        observed_total = sum(s.mean for s in result.waiting.values())
        estimated_total = sum(estimate.waiting_times.values())
        ratio = estimated_total / observed_total
        assert 1 / 3 < ratio < 3, (estimated_total, observed_total)
