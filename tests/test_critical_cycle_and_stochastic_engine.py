"""Critical-cycle diagnostics and stochastic-engine behaviour."""

from __future__ import annotations

import pytest

from repro.core.distributions import (
    DistributionTimeModel,
    FixedTime,
    UniformTime,
)
from repro.sdf.analysis import critical_cycle, period
from repro.sdf.builder import GraphBuilder
from repro.simulation.engine import SimulationConfig, simulate


class TestCriticalCycle:
    def test_paper_graph_cycle_is_the_ring(self, app_a):
        cycle = critical_cycle(app_a)
        assert cycle.ratio == pytest.approx(300.0)
        assert set(cycle.actors) == {"a0", "a1", "a2"}

    def test_bottleneck_actor_cycle(self):
        graph = (
            GraphBuilder("g")
            .actor("fast", 1)
            .actor("slow", 50)
            .cycle("fast", "slow", initial_tokens_on_back_edge=3)
            .build()
        )
        # Three tokens pipeline the ring; the slow actor's sequencing
        # self-cycle binds the period at 50.
        cycle = critical_cycle(graph)
        assert cycle.ratio == pytest.approx(50.0)
        assert cycle.actors == ("slow",)

    def test_ratio_equals_period(self):
        from repro.generation.random_sdf import random_sdf_graph

        for seed in (2, 7):
            graph = random_sdf_graph("G", seed=seed)
            assert critical_cycle(graph).ratio == pytest.approx(
                period(graph)
            )

    def test_firings_are_valid_actor_copies(self, app_a):
        from repro.sdf.repetition import repetition_vector

        q = repetition_vector(app_a)
        for actor, copy in critical_cycle(app_a).firings:
            assert actor in app_a
            assert 0 <= copy < q[actor]


class TestStochasticEngine:
    def _model(self, graphs, spread=0.3):
        distributions = {}
        for graph in graphs:
            for actor in graph.actors:
                nominal = actor.execution_time
                distributions[(graph.name, actor.name)] = UniformTime(
                    (1 - spread) * nominal, (1 + spread) * nominal
                )
        return DistributionTimeModel(distributions)

    def test_same_seed_reproduces(self, two_apps):
        model = self._model(list(two_apps))
        results = [
            simulate(
                list(two_apps),
                config=SimulationConfig(
                    target_iterations=40, time_model=model, seed=11
                ),
            )
            for _ in range(2)
        ]
        assert results[0].period_of("A") == results[1].period_of("A")
        assert results[0].events_processed == results[1].events_processed

    def test_different_seeds_differ(self, two_apps):
        model = self._model(list(two_apps))
        a = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=40, time_model=model, seed=1
            ),
        )
        b = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=40, time_model=model, seed=2
            ),
        )
        assert a.period_of("A") != b.period_of("A")

    def test_fixed_distributions_match_deterministic_run(self, two_apps):
        model = DistributionTimeModel(
            {
                (g.name, a.name): FixedTime(a.execution_time)
                for g in two_apps
                for a in g.actors
            }
        )
        stochastic = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=40, time_model=model
            ),
        )
        deterministic = simulate(
            list(two_apps),
            config=SimulationConfig(target_iterations=40),
        )
        assert stochastic.period_of("A") == pytest.approx(
            deterministic.period_of("A")
        )

    def test_mean_period_tracks_deterministic_period(self, two_apps):
        """With modest jitter the mean contended period stays near the
        deterministic one (the system averages over phases)."""
        model = self._model(list(two_apps), spread=0.2)
        stochastic = simulate(
            list(two_apps),
            config=SimulationConfig(
                target_iterations=300, time_model=model, seed=5
            ),
        )
        assert stochastic.period_of("A") == pytest.approx(300.0, rel=0.1)

    def test_bad_time_model_rejected(self, two_apps):
        from repro.exceptions import AnalysisError
        from repro.simulation.engine import TimeModel

        class NegativeTime(TimeModel):
            def sample(self, application, actor, nominal, rng):
                return -1.0

        with pytest.raises(AnalysisError):
            simulate(
                list(two_apps),
                config=SimulationConfig(
                    target_iterations=10, time_model=NegativeTime()
                ),
            )
